"""Tests for table schemas and column types."""

from __future__ import annotations

import pytest

from repro.errors import StorageError, ValidationError
from repro.storage.schema import Column, ColumnType, TableSchema


def make_schema(**kwargs) -> TableSchema:
    defaults = dict(
        name="items",
        columns=[
            Column("id", ColumnType.STRING, nullable=False),
            Column("count", ColumnType.INTEGER, default=0),
            Column("price", ColumnType.FLOAT),
            Column("active", ColumnType.BOOLEAN, default=False),
            Column("payload", ColumnType.JSON),
        ],
        primary_key="id",
    )
    defaults.update(kwargs)
    return TableSchema(**defaults)


class TestColumnType:
    def test_string_accepts_strings_only(self):
        assert ColumnType.STRING.validate("x") == "x"
        with pytest.raises(ValidationError):
            ColumnType.STRING.validate(5)

    def test_integer_rejects_bool_and_float(self):
        assert ColumnType.INTEGER.validate(5) == 5
        with pytest.raises(ValidationError):
            ColumnType.INTEGER.validate(True)
        with pytest.raises(ValidationError):
            ColumnType.INTEGER.validate(5.5)

    def test_float_coerces_int(self):
        assert ColumnType.FLOAT.validate(5) == 5.0
        assert isinstance(ColumnType.FLOAT.validate(5), float)

    def test_boolean_strict(self):
        assert ColumnType.BOOLEAN.validate(True) is True
        with pytest.raises(ValidationError):
            ColumnType.BOOLEAN.validate(1)

    def test_json_accepts_nested_containers(self):
        value = {"a": [1, {"b": None}], "c": "text"}
        assert ColumnType.JSON.validate(value) == value

    def test_json_rejects_non_string_keys_and_objects(self):
        with pytest.raises(ValidationError):
            ColumnType.JSON.validate({1: "x"})
        with pytest.raises(ValidationError):
            ColumnType.JSON.validate({"x": object()})

    def test_none_passes_through(self):
        assert ColumnType.STRING.validate(None) is None


class TestTableSchema:
    def test_rejects_duplicate_columns(self):
        with pytest.raises(StorageError):
            TableSchema("t", [Column("a", ColumnType.STRING),
                              Column("a", ColumnType.STRING)], primary_key="a")

    def test_rejects_unknown_primary_key(self):
        with pytest.raises(StorageError):
            TableSchema("t", [Column("a", ColumnType.STRING)], primary_key="b")

    def test_rejects_unknown_index_column(self):
        with pytest.raises(StorageError):
            make_schema(indexes=["missing"])

    def test_normalise_fills_defaults(self):
        schema = make_schema()
        row = schema.normalise_row({"id": "a"})
        assert row["count"] == 0
        assert row["active"] is False
        assert row["price"] is None

    def test_normalise_rejects_unknown_columns(self):
        with pytest.raises(StorageError):
            make_schema().normalise_row({"id": "a", "bogus": 1})

    def test_normalise_rejects_missing_non_nullable(self):
        schema = TableSchema(
            "t",
            [Column("id", ColumnType.STRING, nullable=False),
             Column("name", ColumnType.STRING, nullable=False)],
            primary_key="id",
        )
        with pytest.raises(StorageError):
            schema.normalise_row({"id": "a"})

    def test_normalise_validates_types(self):
        with pytest.raises(StorageError):
            make_schema().normalise_row({"id": "a", "count": "not-a-number"})

    def test_column_lookup(self):
        schema = make_schema()
        assert schema.column("count").type is ColumnType.INTEGER
        with pytest.raises(StorageError):
            schema.column("missing")

    def test_column_names_order_preserved(self):
        assert make_schema().column_names[:2] == ["id", "count"]
