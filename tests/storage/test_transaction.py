"""Tests for transactions: commit, rollback and error behaviour."""

from __future__ import annotations

import pytest

from repro.errors import NotFoundError, TransactionError
from repro.storage.database import Database, simple_schema


@pytest.fixture
def database() -> Database:
    db = Database()
    db.create_table(simple_schema("items", string_columns=["name"], json_columns=["data"]))
    return db


class TestCommit:
    def test_committed_changes_visible(self, database):
        with database.transaction() as txn:
            txn.insert("items", {"id": "a", "name": "first"})
            txn.update("items", "a", {"name": "renamed"})
        assert database.get("items", "a")["name"] == "renamed"

    def test_commit_without_operations_is_fine(self, database):
        with database.transaction():
            pass
        assert database.count("items") == 0

    def test_explicit_commit(self, database):
        txn = database.transaction()
        txn.insert("items", {"id": "a", "name": "x"})
        txn.commit()
        assert database.count("items") == 1


class TestRollback:
    def test_exception_rolls_back_all_operations(self, database):
        database.insert("items", {"id": "existing", "name": "before"})
        with pytest.raises(RuntimeError):
            with database.transaction() as txn:
                txn.insert("items", {"id": "a", "name": "x"})
                txn.update("items", "existing", {"name": "after"})
                txn.delete("items", "existing")
                raise RuntimeError("boom")
        assert database.get_or_none("items", "a") is None
        assert database.get("items", "existing")["name"] == "before"

    def test_explicit_rollback(self, database):
        txn = database.transaction()
        txn.insert("items", {"id": "a", "name": "x"})
        txn.rollback()
        assert database.count("items") == 0

    def test_rollback_restores_deleted_rows(self, database):
        database.insert("items", {"id": "a", "name": "keep", "data": {"k": 1}})
        txn = database.transaction()
        txn.delete("items", "a")
        txn.rollback()
        assert database.get("items", "a")["data"] == {"k": 1}

    def test_rollback_after_commit_is_noop(self, database):
        txn = database.transaction()
        txn.insert("items", {"id": "a", "name": "x"})
        txn.commit()
        txn.rollback()
        assert database.count("items") == 1


class TestUsageErrors:
    def test_operations_after_commit_rejected(self, database):
        txn = database.transaction()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("items", {"id": "a", "name": "x"})

    def test_update_of_missing_row_raises_inside_transaction(self, database):
        with pytest.raises(NotFoundError):
            with database.transaction() as txn:
                txn.update("items", "missing", {"name": "x"})
        assert database.count("items") == 0
