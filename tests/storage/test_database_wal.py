"""Tests for the database façade, write-ahead log and crash recovery."""

from __future__ import annotations

import json

import pytest

from repro.errors import StorageError
from repro.storage.database import Database, simple_schema
from repro.storage.query import eq
from repro.storage.wal import WriteAheadLog


def make_tables(db: Database) -> None:
    db.ensure_table(simple_schema("jobs", string_columns=["status"], json_columns=["params"]))
    db.ensure_table(simple_schema("results", string_columns=["job_id"]))


class TestDatabaseFacade:
    def test_create_and_drop_table(self):
        db = Database()
        make_tables(db)
        assert db.table_names() == ["jobs", "results"]
        db.drop_table("results")
        assert db.table_names() == ["jobs"]
        with pytest.raises(StorageError):
            db.drop_table("results")

    def test_duplicate_table_creation_rejected(self):
        db = Database()
        schema = simple_schema("jobs")
        db.create_table(schema)
        with pytest.raises(StorageError):
            db.create_table(schema)
        # ensure_table tolerates existing tables
        db.ensure_table(schema)

    def test_unknown_table_access_raises(self):
        with pytest.raises(StorageError):
            Database().table("missing")

    def test_crud_helpers(self):
        db = Database()
        make_tables(db)
        db.insert("jobs", {"id": "j1", "status": "scheduled", "params": {"t": 1}})
        db.update("jobs", "j1", {"status": "running"})
        assert db.get("jobs", "j1")["status"] == "running"
        assert db.count("jobs", eq("status", "running")) == 1
        db.delete("jobs", "j1")
        assert db.get_or_none("jobs", "j1") is None


class TestDurability:
    def test_recover_replays_wal(self, tmp_path):
        directory = tmp_path / "meta"
        db = Database(directory)
        make_tables(db)
        db.insert("jobs", {"id": "j1", "status": "scheduled"})
        db.insert("jobs", {"id": "j2", "status": "running"})
        db.update("jobs", "j1", {"status": "finished"})
        db.delete("jobs", "j2")
        db.close()

        recovered = Database(directory)
        make_tables(recovered)
        replayed = recovered.recover()
        assert replayed >= 4
        assert recovered.get("jobs", "j1")["status"] == "finished"
        assert recovered.get_or_none("jobs", "j2") is None

    def test_checkpoint_then_recover(self, tmp_path):
        directory = tmp_path / "meta"
        db = Database(directory)
        make_tables(db)
        db.insert("jobs", {"id": "j1", "status": "scheduled"})
        db.checkpoint()
        db.insert("jobs", {"id": "j2", "status": "scheduled"})
        db.close()

        recovered = Database(directory)
        make_tables(recovered)
        recovered.recover()
        assert recovered.count("jobs") == 2

    def test_transaction_commit_is_logged(self, tmp_path):
        directory = tmp_path / "meta"
        db = Database(directory)
        make_tables(db)
        with db.transaction() as txn:
            txn.insert("jobs", {"id": "j1", "status": "scheduled"})
            txn.insert("results", {"id": "r1", "job_id": "j1"})
        db.close()

        recovered = Database(directory)
        make_tables(recovered)
        recovered.recover()
        assert recovered.count("jobs") == 1
        assert recovered.count("results") == 1

    def test_torn_final_record_is_tolerated(self, tmp_path):
        directory = tmp_path / "meta"
        db = Database(directory)
        make_tables(db)
        db.insert("jobs", {"id": "j1", "status": "scheduled"})
        db.close()
        wal_path = directory / "wal.jsonl"
        with wal_path.open("a", encoding="utf-8") as handle:
            handle.write('{"commit": [{"op": "insert", "table"')  # torn write

        recovered = Database(directory)
        make_tables(recovered)
        recovered.recover()
        assert recovered.count("jobs") == 1

    def test_corrupt_middle_record_raises(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append({"commit": []})
        log.close()
        wal_path = tmp_path / "wal.jsonl"
        content = wal_path.read_text().splitlines()
        wal_path.write_text("not-json\n" + "\n".join(content) + "\n")
        with pytest.raises(StorageError):
            list(WriteAheadLog(tmp_path).replay())


class TestWriteAheadLog:
    def test_append_and_replay(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append({"n": 1})
        log.append({"n": 2})
        assert [record["n"] for record in log.replay()] == [1, 2]

    def test_snapshot_truncates_log(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append({"n": 1})
        log.write_snapshot({"tables": {}})
        assert list(log.replay()) == []
        assert log.read_snapshot() == {"tables": {}}

    def test_snapshot_is_valid_json_on_disk(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.write_snapshot({"tables": {"jobs": []}})
        raw = (tmp_path / "snapshot.json").read_text()
        assert json.loads(raw) == {"tables": {"jobs": []}}
