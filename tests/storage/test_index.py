"""Tests for the hash and ordered secondary index structures."""

from __future__ import annotations

import pytest

from repro.errors import ConflictError
from repro.storage.index import HashIndex, OrderedIndex


class TestHashIndex:
    def test_insert_and_lookup(self):
        index = HashIndex("status")
        index.insert("scheduled", "a")
        index.insert("scheduled", "b")
        assert index.lookup("scheduled") == {"a", "b"}
        assert index.lookup("running") == set()

    def test_remove(self):
        index = HashIndex("status")
        index.insert("x", "a")
        index.remove("x", "a")
        assert index.lookup("x") == set()
        index.remove("x", "a")  # removing twice is a no-op

    def test_unique_violation(self):
        index = HashIndex("username", unique=True)
        index.insert("alice", "u1")
        with pytest.raises(ConflictError):
            index.insert("alice", "u2")

    def test_unique_same_row_reinsert_allowed(self):
        index = HashIndex("username", unique=True)
        index.insert("alice", "u1")
        index.insert("alice", "u1")
        assert index.lookup("alice") == {"u1"}

    def test_unhashable_values_are_normalised(self):
        index = HashIndex("payload")
        index.insert({"a": [1, 2]}, "r1")
        assert index.lookup({"a": [1, 2]}) == {"r1"}

    def test_len_counts_entries(self):
        index = HashIndex("x")
        index.insert(1, "a")
        index.insert(1, "b")
        index.insert(2, "c")
        assert len(index) == 3


class TestOrderedIndex:
    def test_range_scan_inclusive(self):
        index = OrderedIndex("priority")
        for value in [5, 1, 3, 2, 4]:
            index.insert(value, f"row-{value}")
        assert list(index.range(2, 4)) == ["row-2", "row-3", "row-4"]

    def test_range_open_ended(self):
        index = OrderedIndex("priority")
        for value in range(5):
            index.insert(value, f"row-{value}")
        assert list(index.range(low=3)) == ["row-3", "row-4"]
        assert list(index.range(high=1)) == ["row-0", "row-1"]

    def test_exclusive_bounds(self):
        index = OrderedIndex("priority")
        for value in range(5):
            index.insert(value, f"row-{value}")
        assert list(index.range(1, 3, include_low=False, include_high=False)) == ["row-2"]

    def test_remove(self):
        index = OrderedIndex("priority")
        index.insert(1, "a")
        index.insert(2, "b")
        index.remove(1, "a")
        assert list(index.range()) == ["b"]
        assert len(index) == 1

    def test_null_values_not_indexed(self):
        index = OrderedIndex("priority")
        index.insert(None, "a")
        assert len(index) == 0
