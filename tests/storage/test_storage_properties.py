"""Property-based tests of the embedded relational store."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.database import Database, simple_schema
from repro.storage.index import OrderedIndex
from repro.storage.query import and_, eq, gt, lte
from repro.storage.schema import Column, ColumnType, TableSchema
from repro.storage.table import Table

keys = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
values = st.integers(min_value=-1000, max_value=1000)


def fresh_table() -> Table:
    return Table(TableSchema(
        name="t",
        columns=[Column("id", ColumnType.STRING, nullable=False),
                 Column("value", ColumnType.INTEGER),
                 Column("tag", ColumnType.STRING)],
        primary_key="id",
        indexes=["value", "tag"],
    ))


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(keys, values, min_size=0, max_size=30))
def test_table_matches_dict_semantics(data):
    """Inserting a dict's items then selecting must reproduce the dict."""
    table = fresh_table()
    for key, value in data.items():
        table.insert({"id": key, "value": value, "tag": f"t{value % 3}"})
    assert len(table) == len(data)
    for key, value in data.items():
        assert table.get(key)["value"] == value
    # Predicate results agree with a Python-level filter.
    threshold = 0
    expected = {key for key, value in data.items() if value > threshold}
    actual = {row["id"] for row in table.select(gt("value", threshold))}
    assert actual == expected


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(keys, values), min_size=1, max_size=40))
def test_index_consistency_after_updates_and_deletes(operations):
    """Secondary index lookups always agree with a full scan."""
    table = fresh_table()
    live: dict[str, int] = {}
    for key, value in operations:
        if key in live:
            if value % 5 == 0:
                table.delete(key)
                del live[key]
            else:
                table.update(key, {"value": value})
                live[key] = value
        else:
            table.insert({"id": key, "value": value, "tag": "x"})
            live[key] = value
    for key, value in live.items():
        via_index = {row["id"] for row in table.select(eq("value", value))}
        assert key in via_index
        assert all(live[row_id] == value for row_id in via_index)


@settings(max_examples=50, deadline=None)
@given(st.lists(values, min_size=0, max_size=60))
def test_ordered_index_range_equals_sorted_filter(numbers):
    index = OrderedIndex("n")
    for position, number in enumerate(numbers):
        index.insert(number, f"row-{position}")
    low, high = -100, 100
    expected = sorted(
        (number, f"row-{position}")
        for position, number in enumerate(numbers)
        if low <= number <= high
    )
    actual = list(index.range(low, high))
    assert actual == [row for _, row in expected]


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(keys, values, min_size=1, max_size=20), st.integers(0, 3))
def test_recovery_reproduces_state(tmp_path_factory, data, checkpoint_every):
    """Recovering from snapshot + WAL yields exactly the pre-crash state."""
    directory = tmp_path_factory.mktemp("wal")
    db = Database(directory)
    schema = simple_schema("items", string_columns=["tag"], json_columns=[])
    db.create_table(schema)
    for position, (key, value) in enumerate(sorted(data.items())):
        db.insert("items", {"id": key, "tag": str(value)})
        if checkpoint_every and position % (checkpoint_every + 1) == 0:
            db.checkpoint()
    db.close()

    recovered = Database(directory)
    recovered.create_table(schema)
    recovered.recover()
    assert {row["id"]: row["tag"] for row in recovered.select("items")} == {
        key: str(value) for key, value in data.items()
    }


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(keys, values), min_size=1, max_size=25))
def test_predicate_composition(pairs):
    """and_/lte/gt behave like the equivalent Python filters."""
    table = fresh_table()
    seen = set()
    for key, value in pairs:
        if key in seen:
            continue
        seen.add(key)
        table.insert({"id": key, "value": value, "tag": "x"})
    rows = table.select(and_(gt("value", -10), lte("value", 10)))
    expected = {key for key, value in dict(pairs).items()
                if key in seen and -10 < dict(pairs)[key] <= 10}
    # Build expected from the actual stored values (first insert wins).
    stored = {row["id"]: row["value"] for row in table.select()}
    expected = {key for key, value in stored.items() if -10 < value <= 10}
    assert {row["id"] for row in rows} == expected
