"""Tests for the heap table: CRUD, predicates, indexes, uniqueness."""

from __future__ import annotations

import pytest

from repro.errors import ConflictError, NotFoundError, StorageError
from repro.storage.query import and_, eq, gt, gte, in_, lt, lte, ne, or_
from repro.storage.schema import Column, ColumnType, TableSchema
from repro.storage.table import Table


@pytest.fixture
def table() -> Table:
    schema = TableSchema(
        name="jobs",
        columns=[
            Column("id", ColumnType.STRING, nullable=False),
            Column("status", ColumnType.STRING),
            Column("priority", ColumnType.INTEGER, default=0),
            Column("owner", ColumnType.STRING),
            Column("payload", ColumnType.JSON),
        ],
        primary_key="id",
        indexes=["status", "priority"],
        unique=["owner"],
    )
    return Table(schema)


def populate(table: Table, count: int = 5) -> None:
    for index in range(count):
        table.insert({
            "id": f"job-{index}",
            "status": "scheduled" if index % 2 == 0 else "running",
            "priority": index,
            "owner": f"user-{index}",
            "payload": {"n": index},
        })


class TestInsertAndGet:
    def test_insert_returns_normalised_row(self, table):
        row = table.insert({"id": "a", "status": "scheduled"})
        assert row["priority"] == 0

    def test_duplicate_primary_key_rejected(self, table):
        table.insert({"id": "a"})
        with pytest.raises(ConflictError):
            table.insert({"id": "a"})

    def test_missing_primary_key_rejected(self, table):
        with pytest.raises(StorageError):
            table.insert({"status": "scheduled"})

    def test_get_returns_copy(self, table):
        table.insert({"id": "a", "payload": {"x": 1}})
        fetched = table.get("a")
        fetched["payload"]["x"] = 999
        assert table.get("a")["payload"]["x"] == 1

    def test_get_missing_raises(self, table):
        with pytest.raises(NotFoundError):
            table.get("missing")

    def test_get_or_none(self, table):
        assert table.get_or_none("missing") is None

    def test_unique_constraint_enforced(self, table):
        table.insert({"id": "a", "owner": "alice"})
        with pytest.raises(ConflictError):
            table.insert({"id": "b", "owner": "alice"})

    def test_unique_allows_null(self, table):
        table.insert({"id": "a", "owner": None})
        table.insert({"id": "b", "owner": None})
        assert len(table) == 2


class TestUpdateAndDelete:
    def test_update_changes_columns(self, table):
        table.insert({"id": "a", "status": "scheduled"})
        updated = table.update("a", {"status": "running"})
        assert updated["status"] == "running"

    def test_update_cannot_change_primary_key(self, table):
        table.insert({"id": "a"})
        with pytest.raises(StorageError):
            table.update("a", {"id": "b"})

    def test_update_missing_raises(self, table):
        with pytest.raises(NotFoundError):
            table.update("missing", {"status": "x"})

    def test_update_maintains_indexes(self, table):
        populate(table)
        table.update("job-0", {"status": "finished"})
        finished = table.select(eq("status", "finished"))
        assert [row["id"] for row in finished] == ["job-0"]
        assert all(row["id"] != "job-0" for row in table.select(eq("status", "scheduled")))

    def test_update_unique_conflict_detected(self, table):
        table.insert({"id": "a", "owner": "alice"})
        table.insert({"id": "b", "owner": "bob"})
        with pytest.raises(ConflictError):
            table.update("b", {"owner": "alice"})

    def test_update_same_unique_value_allowed(self, table):
        table.insert({"id": "a", "owner": "alice"})
        table.update("a", {"owner": "alice", "status": "x"})

    def test_delete_removes_row_and_index_entries(self, table):
        populate(table)
        table.delete("job-0")
        assert "job-0" not in table
        assert all(row["id"] != "job-0" for row in table.select(eq("status", "scheduled")))

    def test_delete_missing_raises(self, table):
        with pytest.raises(NotFoundError):
            table.delete("missing")

    def test_update_where_and_delete_where(self, table):
        populate(table, 6)
        updated = table.update_where(eq("status", "running"), {"status": "aborted"})
        assert len(updated) == 3
        removed = table.delete_where(eq("status", "aborted"))
        assert removed == 3
        assert len(table) == 3


class TestSelect:
    def test_select_all(self, table):
        populate(table, 4)
        assert len(table.select()) == 4

    def test_select_equality_uses_index(self, table):
        populate(table, 10)
        rows = table.select(eq("status", "running"))
        assert all(row["status"] == "running" for row in rows)
        assert len(rows) == 5

    def test_select_by_primary_key_predicate(self, table):
        populate(table)
        rows = table.select(eq("id", "job-3"))
        assert len(rows) == 1 and rows[0]["id"] == "job-3"

    def test_comparison_predicates(self, table):
        populate(table, 6)
        assert len(table.select(gt("priority", 3))) == 2
        assert len(table.select(gte("priority", 3))) == 3
        assert len(table.select(lt("priority", 2))) == 2
        assert len(table.select(lte("priority", 2))) == 3
        assert len(table.select(ne("priority", 0))) == 5

    def test_in_and_logical_predicates(self, table):
        populate(table, 6)
        rows = table.select(in_("priority", [1, 2, 3]))
        assert len(rows) == 3
        rows = table.select(and_(eq("status", "scheduled"), gt("priority", 1)))
        assert {row["id"] for row in rows} == {"job-2", "job-4"}
        rows = table.select(or_(eq("priority", 0), eq("priority", 5)))
        assert len(rows) == 2

    def test_order_by_and_limit(self, table):
        populate(table, 5)
        rows = table.select(order_by="priority", descending=True, limit=2)
        assert [row["priority"] for row in rows] == [4, 3]

    def test_select_one_and_count(self, table):
        populate(table, 5)
        assert table.select_one(eq("id", "job-1"))["priority"] == 1
        assert table.select_one(eq("id", "nope")) is None
        assert table.count(eq("status", "scheduled")) == 3
        assert table.count() == 5

    def test_null_comparison_semantics(self, table):
        table.insert({"id": "a", "status": None, "priority": 1})
        assert table.select(eq("status", None))
        assert not table.select(gt("status", "a"))
