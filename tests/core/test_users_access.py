"""Tests for user management, sessions and project-level access control."""

from __future__ import annotations

import pytest

from repro.core.access import AccessControl
from repro.core.enums import Role
from repro.core.users import hash_password, verify_password
from repro.errors import AuthenticationError, ConflictError, NotFoundError, PermissionDeniedError


class TestPasswordHashing:
    def test_hash_and_verify(self):
        stored = hash_password("secret")
        assert verify_password("secret", stored)
        assert not verify_password("wrong", stored)

    def test_hashes_are_salted(self):
        assert hash_password("secret") != hash_password("secret")

    def test_malformed_hash_rejected(self):
        assert not verify_password("secret", "plaintext")


class TestUserService:
    def test_create_and_get(self, control):
        user = control.users.create_user("alice", "pw", Role.USER)
        assert control.users.get_user(user.id).username == "alice"
        assert control.users.get_by_username("alice").id == user.id

    def test_duplicate_username_rejected(self, control):
        control.users.create_user("alice", "pw")
        with pytest.raises(ConflictError):
            control.users.create_user("alice", "other")

    def test_admin_created_by_default(self, control):
        admin = control.users.get_by_username("admin")
        assert admin.role is Role.ADMIN

    def test_unknown_user_raises(self, control):
        with pytest.raises(NotFoundError):
            control.users.get_by_username("ghost")

    def test_change_role_and_password(self, control):
        user = control.users.create_user("bob", "pw")
        control.users.change_role(user.id, Role.READONLY)
        assert control.users.get_user(user.id).role is Role.READONLY
        control.users.change_password(user.id, "new")
        control.users.login("bob", "new")
        with pytest.raises(AuthenticationError):
            control.users.login("bob", "pw")

    def test_list_users_sorted(self, control):
        control.users.create_user("zoe", "pw")
        control.users.create_user("bob", "pw")
        names = [user.username for user in control.users.list_users()]
        assert names == sorted(names)


class TestSessions:
    def test_login_and_validate(self, control):
        token = control.users.login("admin", "admin")
        assert control.users.validate_token(token).username == "admin"

    def test_wrong_password_rejected(self, control):
        with pytest.raises(AuthenticationError):
            control.users.login("admin", "wrong")
        with pytest.raises(AuthenticationError):
            control.users.login("ghost", "whatever")

    def test_invalid_token_rejected(self, control):
        with pytest.raises(AuthenticationError):
            control.users.validate_token("bogus")

    def test_logout_invalidates_token(self, control):
        token = control.users.login("admin", "admin")
        control.users.logout(token)
        with pytest.raises(AuthenticationError):
            control.users.validate_token(token)

    def test_tokens_expire(self, control, clock):
        token = control.users.login("admin", "admin")
        clock.advance(9 * 3600)
        with pytest.raises(AuthenticationError):
            control.users.validate_token(token)

    def test_active_session_count(self, control, clock):
        control.users.login("admin", "admin")
        control.users.login("admin", "admin")
        assert control.users.active_sessions() == 2
        clock.advance(9 * 3600)
        assert control.users.active_sessions() == 0


class TestAccessControl:
    @pytest.fixture
    def users(self, control):
        return {
            "owner": control.users.create_user("owner", "pw"),
            "member": control.users.create_user("member", "pw"),
            "outsider": control.users.create_user("outsider", "pw"),
            "readonly": control.users.create_user("ro", "pw", Role.READONLY),
            "admin": control.users.get_by_username("admin"),
        }

    @pytest.fixture
    def project(self, control, users):
        project = control.projects.create("secret project", users["owner"])
        control.projects.add_member(project.id, users["member"])
        control.projects.add_member(project.id, users["readonly"])
        return control.projects.get(project.id)

    def test_members_and_owner_can_view(self, users, project):
        assert AccessControl.can_view(users["owner"], project)
        assert AccessControl.can_view(users["member"], project)
        assert AccessControl.can_view(users["admin"], project)
        assert not AccessControl.can_view(users["outsider"], project)

    def test_readonly_member_cannot_modify(self, users, project):
        assert AccessControl.can_view(users["readonly"], project)
        assert not AccessControl.can_modify(users["readonly"], project)

    def test_only_owner_and_admin_administer(self, users, project):
        assert AccessControl.can_administer(users["owner"], project)
        assert AccessControl.can_administer(users["admin"], project)
        assert not AccessControl.can_administer(users["member"], project)

    def test_enforcement_helpers_raise(self, users, project):
        with pytest.raises(PermissionDeniedError):
            AccessControl.require_view(users["outsider"], project)
        with pytest.raises(PermissionDeniedError):
            AccessControl.require_modify(users["readonly"], project)
        with pytest.raises(PermissionDeniedError):
            AccessControl.require_administer(users["member"], project)
        AccessControl.require_modify(users["member"], project)  # must not raise
