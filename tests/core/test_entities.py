"""Tests for entity dataclasses: row round-trips and enum handling."""

from __future__ import annotations

from repro.core.entities import (
    Deployment,
    Evaluation,
    Event,
    Experiment,
    Job,
    LogEntry,
    Project,
    Result,
    System,
    User,
)
from repro.core.enums import EvaluationStatus, EventType, JobStatus, Role


class TestRowRoundTrips:
    def test_user(self):
        user = User(id="u1", username="alice", password_hash="x$y", role=Role.ADMIN,
                    created_at=1.5)
        row = user.to_row()
        assert row["role"] == "admin"
        assert User.from_row(row) == user

    def test_project(self):
        project = Project(id="p1", name="demo", owner_id="u1", members=["u1", "u2"],
                          archived=True, created_at=2.0)
        assert Project.from_row(project.to_row()) == project

    def test_system(self):
        system = System(id="s1", name="db", parameters=[{"name": "x", "kind": "value"}],
                        result_config={"metrics": ["m"]})
        assert System.from_row(system.to_row()) == system

    def test_deployment(self):
        deployment = Deployment(id="d1", system_id="s1", name="node",
                                environment={"ram": 4}, version="2", active=False)
        assert Deployment.from_row(deployment.to_row()) == deployment

    def test_experiment(self):
        experiment = Experiment(id="e1", project_id="p1", system_id="s1", name="exp",
                                parameters={"threads": [1, 2]})
        assert Experiment.from_row(experiment.to_row()) == experiment

    def test_evaluation(self):
        evaluation = Evaluation(id="ev1", experiment_id="e1", name="run",
                                status=EvaluationStatus.RUNNING,
                                deployment_ids=["d1"], finished_at=None)
        restored = Evaluation.from_row(evaluation.to_row())
        assert restored == evaluation
        assert restored.status is EvaluationStatus.RUNNING

    def test_job(self):
        job = Job(id="j1", evaluation_id="ev1", system_id="s1",
                  parameters={"threads": 2}, status=JobStatus.FAILED,
                  deployment_id="d1", progress=40, attempts=2, max_attempts=3,
                  error="boom", started_at=1.0, finished_at=2.0, last_heartbeat=1.5)
        restored = Job.from_row(job.to_row())
        assert restored == job
        assert restored.status is JobStatus.FAILED

    def test_result(self):
        result = Result(id="r1", job_id="j1", data={"v": 1}, metrics={"m": 2.0},
                        archive_path="/tmp/a.zip", uploaded_at=3.0)
        assert Result.from_row(result.to_row()) == result

    def test_event_and_log_entry(self):
        event = Event(id="ev", entity_type="job", entity_id="j1",
                      event_type=EventType.PROGRESS, message="50%", timestamp=1.0)
        assert Event.from_row(event.to_row()) == event
        entry = LogEntry(id="l1", job_id="j1", sequence=3, content="line", timestamp=1.0)
        assert LogEntry.from_row(entry.to_row()) == entry


class TestEnumBehaviour:
    def test_job_status_terminal_and_active_flags(self):
        assert JobStatus.FINISHED.is_terminal and JobStatus.ABORTED.is_terminal
        assert not JobStatus.FAILED.is_terminal  # failed jobs can be re-scheduled
        assert JobStatus.SCHEDULED.is_active and JobStatus.RUNNING.is_active
        assert not JobStatus.FINISHED.is_active

    def test_row_defaults_tolerate_missing_optionals(self):
        row = Job(id="j", evaluation_id="e", system_id="s").to_row()
        row["progress"] = None
        row["attempts"] = None
        row["max_attempts"] = None
        restored = Job.from_row(row)
        assert restored.progress == 0 and restored.max_attempts == 1
