"""Tests for result storage, logs, events and project archiving."""

from __future__ import annotations

import pytest

from repro.core.control import ChronosControl
from repro.errors import NotFoundError, ValidationError
from repro.util.clock import SimulatedClock


@pytest.fixture
def finished_job(control, admin, sleep_system):
    project = control.projects.create("proj", admin)
    experiment = control.experiments.create(project.id, sleep_system.id, "exp",
                                            parameters={"work_units": [1]})
    evaluation, jobs = control.evaluations.create(experiment.id)
    deployment = control.deployments.register(sleep_system.id, "node-1")
    claimed = control.claim_next_job(sleep_system.id, deployment.id)
    return project, experiment, evaluation, claimed


class TestResults:
    def test_store_and_fetch(self, control, finished_job):
        *_, job = finished_job
        result = control.results.store(job.id, {"throughput": 100.0},
                                       metrics={"execution_seconds": 1.5})
        fetched = control.results.for_job(job.id)
        assert fetched.id == result.id
        assert fetched.data["throughput"] == 100.0
        assert fetched.metrics["execution_seconds"] == 1.5

    def test_result_data_must_be_object(self, control, finished_job):
        *_, job = finished_job
        with pytest.raises(ValidationError):
            control.results.store(job.id, ["not", "an", "object"])

    def test_missing_result_raises(self, control, finished_job):
        *_, job = finished_job
        with pytest.raises(NotFoundError):
            control.results.for_job(job.id)
        assert control.results.for_job_or_none(job.id) is None

    def test_latest_result_wins(self, control, finished_job, clock):
        *_, job = finished_job
        control.results.store(job.id, {"v": 1})
        clock.advance(10)
        control.results.store(job.id, {"v": 2})
        assert control.results.for_job(job.id).data["v"] == 2

    def test_for_jobs_skips_missing(self, control, finished_job):
        *_, job = finished_job
        control.results.store(job.id, {"v": 1})
        results = control.results.for_jobs([job.id, "job-does-not-exist"])
        assert len(results) == 1

    def test_zip_archive_written_when_directory_configured(self, tmp_path):
        control = ChronosControl(data_directory=tmp_path, clock=SimulatedClock())
        admin = control.users.get_by_username("admin")
        from repro.agents.testing import register_sleep_system

        system = register_sleep_system(control, owner_id=admin.id)
        project = control.projects.create("p", admin)
        experiment = control.experiments.create(project.id, system.id, "e",
                                                parameters={"work_units": [1]})
        _, jobs = control.evaluations.create(experiment.id)
        deployment = control.deployments.register(system.id, "node-1")
        job = control.claim_next_job(system.id, deployment.id)
        result = control.results.store(job.id, {"v": 1},
                                       extra_files={"raw.txt": "line1\nline2"})
        assert result.archive_path is not None
        files = control.results.read_archive(result)
        assert files["raw.txt"].startswith("line1")
        assert "result.json" in files

    def test_report_success_stores_result_and_finishes_job(self, control, finished_job):
        *_, job = finished_job
        finished, result = control.report_success(job.id, {"v": 1}, metrics={"m": 2.0})
        assert finished.status.value == "finished"
        assert result.metrics["m"] == 2.0


class TestLogs:
    def test_append_and_full_text(self, control, finished_job):
        *_, job = finished_job
        control.logs.append(job.id, "first line")
        control.logs.append(job.id, "second line")
        assert control.logs.full_text(job.id) == "first line\nsecond line"
        entries = control.logs.entries(job.id)
        assert [entry.sequence for entry in entries] == [1, 2]

    def test_logs_are_per_job(self, control, finished_job):
        *_, job = finished_job
        control.logs.append(job.id, "mine")
        assert control.logs.full_text("other-job") == ""

    def test_report_progress_appends_log(self, control, finished_job):
        *_, job = finished_job
        control.report_progress(job.id, 30, log_output="working")
        assert "working" in control.logs.full_text(job.id)
        assert control.jobs.get(job.id).progress == 30


class TestEvents:
    def test_timeline_is_chronological(self, control, finished_job, clock):
        *_, job = finished_job
        clock.advance(5)
        control.events.record("job", job.id, list(control.events.timeline("job", job.id))[0].event_type,
                              "manual entry")
        events = control.events.timeline("job", job.id)
        assert events == sorted(events, key=lambda e: (e.timestamp, e.id))

    def test_count_by_entity_type(self, control, finished_job):
        assert control.events.count("job") > 0
        assert control.events.count("nonexistent-type") == 0


class TestArchiveService:
    def test_experiment_bundle_contains_everything(self, control, finished_job):
        project, experiment, evaluation, job = finished_job
        control.logs.append(job.id, "some output")
        control.report_success(job.id, {"throughput": 10})
        bundle = control.archive.experiment_bundle(experiment.id)
        assert bundle["experiment"]["id"] == experiment.id
        assert len(bundle["evaluations"]) == 1
        job_entry = bundle["evaluations"][0]["jobs"][0]
        assert job_entry["result"]["data"]["throughput"] == 10
        assert "some output" in job_entry["log"]

    def test_archive_project_writes_zip_and_flags_project(self, control, finished_job, tmp_path):
        project, *_ , job = finished_job
        control.report_success(job.id, {"v": 1})
        path = control.archive.archive_project(project.id, tmp_path)
        assert path.exists()
        assert control.projects.get(project.id).archived
        bundle = control.archive.load_bundle(path)
        assert bundle["project"]["id"] == project.id
        assert bundle["experiments"]
