"""Tests for experiments, evaluation creation and status derivation."""

from __future__ import annotations

import pytest

from repro.core.enums import EvaluationStatus, JobStatus
from repro.errors import StateError, ValidationError


@pytest.fixture
def project(control, admin):
    return control.projects.create("proj", admin)


@pytest.fixture
def experiment(control, project, sleep_system):
    return control.experiments.create(
        project_id=project.id, system_id=sleep_system.id, name="exp",
        parameters={"work_units": [1, 2, 3]},
    )


class TestExperiments:
    def test_create_validates_parameters(self, control, project, sleep_system):
        with pytest.raises(ValidationError):
            control.experiments.create(project.id, sleep_system.id, "bad",
                                       parameters={"unknown_param": 1})

    def test_space_size_and_parameter_sets(self, control, experiment):
        assert control.experiments.space_size(experiment.id) == 3
        sets = control.experiments.job_parameter_sets(experiment.id)
        assert [s["work_units"] for s in sets] == [1, 2, 3]
        assert all(s["payload"] == "" for s in sets)

    def test_list_by_project(self, control, project, experiment):
        assert [e.id for e in control.experiments.list(project_id=project.id)] == [experiment.id]
        assert control.experiments.list(project_id="other") == []

    def test_update_parameters_revalidates(self, control, experiment):
        control.experiments.update_parameters(experiment.id, {"work_units": [5]})
        assert control.experiments.space_size(experiment.id) == 1
        with pytest.raises(ValidationError):
            control.experiments.update_parameters(experiment.id, {"nope": 1})

    def test_archive_excluded_from_active_listing(self, control, project, experiment):
        control.experiments.archive(experiment.id)
        assert control.experiments.list(project_id=project.id,
                                        include_archived=False) == []

    def test_delete(self, control, experiment):
        control.experiments.delete(experiment.id)
        assert control.experiments.list() == []


class TestEvaluationCreation:
    def test_one_job_per_parameter_combination(self, control, experiment):
        evaluation, jobs = control.evaluations.create(experiment.id)
        assert len(jobs) == 3
        assert {job.parameters["work_units"] for job in jobs} == {1, 2, 3}
        assert all(job.status is JobStatus.SCHEDULED for job in jobs)
        assert evaluation.status is EvaluationStatus.CREATED

    def test_archived_experiment_cannot_be_evaluated(self, control, experiment):
        control.experiments.archive(experiment.id)
        with pytest.raises(StateError):
            control.evaluations.create(experiment.id)

    def test_deployment_ids_recorded(self, control, experiment, sleep_system):
        deployment = control.deployments.register(sleep_system.id, "node-1")
        evaluation, _ = control.evaluations.create(experiment.id,
                                                   deployment_ids=[deployment.id])
        assert control.evaluations.get(evaluation.id).deployment_ids == [deployment.id]

    def test_max_attempts_forwarded_to_jobs(self, control, experiment):
        _, jobs = control.evaluations.create(experiment.id, max_attempts=5)
        assert all(job.max_attempts == 5 for job in jobs)

    def test_list_by_experiment(self, control, experiment):
        first, _ = control.evaluations.create(experiment.id)
        second, _ = control.evaluations.create(experiment.id)
        listed = control.evaluations.list(experiment_id=experiment.id)
        assert {e.id for e in listed} == {first.id, second.id}


class TestEvaluationStatus:
    def test_progress_aggregation(self, control, experiment, sleep_system):
        deployment = control.deployments.register(sleep_system.id, "node-1")
        evaluation, jobs = control.evaluations.create(experiment.id)
        claimed = control.claim_next_job(sleep_system.id, deployment.id)
        control.report_progress(claimed.id, 50)
        progress = control.evaluations.progress(evaluation.id)
        assert progress["jobs"] == 3
        assert progress["counts"]["running"] == 1
        assert progress["status"] == EvaluationStatus.RUNNING.value

    def test_status_finished_when_all_jobs_finish(self, control, experiment, sleep_system):
        deployment = control.deployments.register(sleep_system.id, "node-1")
        evaluation, jobs = control.evaluations.create(experiment.id)
        for _ in jobs:
            claimed = control.claim_next_job(sleep_system.id, deployment.id)
            control.report_success(claimed.id, {"ok": True})
        assert control.evaluations.get(evaluation.id).status is EvaluationStatus.FINISHED
        assert control.evaluations.get(evaluation.id).finished_at is not None
        assert control.evaluations.is_complete(evaluation.id)

    def test_status_failed_when_any_job_exhausts_attempts(self, control, experiment, sleep_system):
        deployment = control.deployments.register(sleep_system.id, "node-1")
        evaluation, jobs = control.evaluations.create(experiment.id, max_attempts=1)
        claimed = control.claim_next_job(sleep_system.id, deployment.id)
        control.report_failure(claimed.id, "boom")
        # remaining jobs finish fine
        while True:
            claimed = control.claim_next_job(sleep_system.id, deployment.id)
            if claimed is None:
                break
            control.report_success(claimed.id, {"ok": True})
        assert control.evaluations.get(evaluation.id).status is EvaluationStatus.FAILED

    def test_abort_evaluation_aborts_active_jobs(self, control, experiment):
        evaluation, jobs = control.evaluations.create(experiment.id)
        aborted = control.evaluations.abort(evaluation.id)
        assert aborted.status is EvaluationStatus.ABORTED
        assert all(job.status is JobStatus.ABORTED
                   for job in control.evaluations.jobs(evaluation.id))
