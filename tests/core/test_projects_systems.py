"""Tests for project, system and deployment management."""

from __future__ import annotations

import json

import pytest

from repro.core.enums import DiagramKind
from repro.core.parameters import checkbox, interval, value
from repro.core.systems import diagram_spec, result_config
from repro.errors import ConflictError, NotFoundError, StateError, ValidationError


class TestProjects:
    def test_create_and_get(self, control, admin):
        project = control.projects.create("demo", admin, description="d")
        fetched = control.projects.get(project.id)
        assert fetched.name == "demo"
        assert fetched.owner_id == admin.id
        assert admin.id in fetched.members

    def test_create_requires_name(self, control, admin):
        with pytest.raises(ValidationError):
            control.projects.create("   ", admin)

    def test_list_filters_by_visibility(self, control, admin):
        other = control.users.create_user("other", "pw")
        control.projects.create("mine", admin)
        control.projects.create("theirs", other)
        visible_to_other = control.projects.list(user=other)
        assert [project.name for project in visible_to_other] == ["theirs"]
        # admins see everything
        assert len(control.projects.list(user=admin)) == 2

    def test_membership_management(self, control, admin):
        member = control.users.create_user("member", "pw")
        project = control.projects.create("demo", admin)
        control.projects.add_member(project.id, member)
        assert member.id in control.projects.get(project.id).members
        control.projects.remove_member(project.id, member)
        assert member.id not in control.projects.get(project.id).members

    def test_owner_cannot_be_removed(self, control, admin):
        project = control.projects.create("demo", admin)
        with pytest.raises(StateError):
            control.projects.remove_member(project.id, admin)

    def test_archive_makes_project_read_only(self, control, admin):
        project = control.projects.create("demo", admin)
        control.projects.archive(project.id)
        assert control.projects.get(project.id).archived
        with pytest.raises(StateError):
            control.projects.ensure_not_archived(project.id)
        control.projects.unarchive(project.id)
        control.projects.ensure_not_archived(project.id)

    def test_update_and_delete(self, control, admin):
        project = control.projects.create("demo", admin)
        control.projects.update(project.id, name="renamed", description="new")
        assert control.projects.get(project.id).name == "renamed"
        control.projects.delete(project.id)
        with pytest.raises(NotFoundError):
            control.projects.get(project.id)

    def test_find_by_name(self, control, admin):
        control.projects.create("demo", admin)
        assert control.projects.find_by_name("demo") is not None
        assert control.projects.find_by_name("nope") is None

    def test_creation_recorded_on_timeline(self, control, admin):
        project = control.projects.create("demo", admin)
        events = control.events.timeline("project", project.id)
        assert events and events[0].event_type.value == "created"


class TestSystems:
    PARAMETERS = [checkbox("engine", ["a", "b"]), interval("threads"),
                  value("records", default=10)]

    def test_register_and_get(self, control, admin):
        system = control.systems.register("db", self.PARAMETERS,
                                          result_config(["throughput"]),
                                          owner_id=admin.id)
        assert control.systems.get(system.id).name == "db"
        assert control.systems.get_by_name("db").id == system.id
        assert control.systems.metrics(system.id) == ["throughput"]

    def test_duplicate_name_rejected(self, control):
        control.systems.register("db", self.PARAMETERS)
        with pytest.raises(ConflictError):
            control.systems.register("db", [])

    def test_parameter_definitions_round_trip(self, control):
        system = control.systems.register("db", self.PARAMETERS)
        definitions = control.systems.parameter_definitions(system.id)
        assert [d.name for d in definitions] == ["engine", "threads", "records"]
        assert definitions[0].options == ("a", "b")

    def test_diagram_specs(self, control):
        config = result_config(["tp"], [diagram_spec(DiagramKind.LINE, "t", "x", "y", "g")])
        system = control.systems.register("db", self.PARAMETERS, config)
        diagrams = control.systems.diagrams(system.id)
        assert diagrams[0]["kind"] == "line" and diagrams[0]["group_field"] == "g"

    def test_update_parameters_and_result_config(self, control):
        system = control.systems.register("db", self.PARAMETERS)
        control.systems.update_parameters(system.id, [value("only")])
        assert len(control.systems.parameter_definitions(system.id)) == 1
        control.systems.update_result_config(system.id, result_config(["latency"]))
        assert control.systems.metrics(system.id) == ["latency"]

    def test_register_from_bundle(self, control, tmp_path):
        bundle = tmp_path / "my-system"
        bundle.mkdir()
        (bundle / "system.json").write_text(json.dumps({
            "name": "bundled",
            "description": "from disk",
            "parameters": [{"name": "size", "kind": "interval"}],
            "result_config": {"metrics": ["m"], "diagrams": []},
        }))
        system = control.systems.register_from_bundle(bundle)
        assert system.name == "bundled"
        assert control.systems.parameter_definitions(system.id)[0].name == "size"

    def test_register_from_bundle_missing_manifest(self, control, tmp_path):
        with pytest.raises(ValidationError):
            control.systems.register_from_bundle(tmp_path)

    def test_delete(self, control):
        system = control.systems.register("db", self.PARAMETERS)
        control.systems.delete(system.id)
        with pytest.raises(NotFoundError):
            control.systems.get(system.id)


class TestDeployments:
    def test_register_and_list(self, control, sleep_system):
        first = control.deployments.register(sleep_system.id, "node-1",
                                             environment={"ram": 16}, version="1.0")
        control.deployments.register(sleep_system.id, "node-2")
        assert len(control.deployments.list(system_id=sleep_system.id)) == 2
        assert control.deployments.get(first.id).environment == {"ram": 16}

    def test_activation_toggling(self, control, sleep_system):
        deployment = control.deployments.register(sleep_system.id, "node-1")
        control.deployments.deactivate(deployment.id)
        assert control.deployments.active_for_system(sleep_system.id) == []
        assert len(control.deployments.list(system_id=sleep_system.id,
                                            active_only=True)) == 0
        control.deployments.activate(deployment.id)
        assert len(control.deployments.active_for_system(sleep_system.id)) == 1

    def test_update_environment_and_delete(self, control, sleep_system):
        deployment = control.deployments.register(sleep_system.id, "node-1")
        control.deployments.update_environment(deployment.id, {"ram": 64})
        assert control.deployments.get(deployment.id).environment["ram"] == 64
        control.deployments.delete(deployment.id)
        with pytest.raises(NotFoundError):
            control.deployments.get(deployment.id)

    def test_name_required(self, control, sleep_system):
        with pytest.raises(ValidationError):
            control.deployments.register(sleep_system.id, "")
