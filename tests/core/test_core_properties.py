"""Property-based tests of Chronos Control invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enums import JOB_TRANSITIONS, JobStatus
from repro.core.parameters import (
    checkbox,
    evaluation_space_size,
    expand_parameter_space,
    parse_ratio,
    resolve_assignments,
    value,
)

sweep_lists = st.lists(st.integers(0, 50), min_size=1, max_size=6, unique=True)


@settings(max_examples=60, deadline=None)
@given(sweep_lists, sweep_lists, sweep_lists)
def test_expansion_cardinality_is_product_of_sweeps(first, second, third):
    """|jobs| == product of the per-parameter value counts, no duplicates."""
    definitions = [value("a"), value("b"), value("c")]
    assignments = resolve_assignments(definitions, {"a": first, "b": second, "c": third})
    space = expand_parameter_space(assignments)
    assert len(space) == len(first) * len(second) * len(third)
    assert len(space) == evaluation_space_size(assignments)
    unique = {tuple(sorted(point.items())) for point in space}
    assert len(unique) == len(space)
    for point in space:
        assert point["a"] in first and point["b"] in second and point["c"] in third


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=3, unique=True))
def test_checkbox_expansion_matches_selection(selected):
    definitions = [checkbox("option", ["x", "y", "z"])]
    assignments = resolve_assignments(definitions, {"option": selected})
    space = expand_parameter_space(assignments)
    assert [point["option"] for point in space] == selected


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 999), st.integers(1, 999))
def test_ratio_normalisation_sums_to_one(left, right):
    fractions = parse_ratio(f"{left}:{right}")
    assert abs(sum(fractions) - 1.0) < 1e-9
    assert fractions[0] > 0 and fractions[1] > 0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from(list(JobStatus)), min_size=1, max_size=8))
def test_job_state_machine_never_leaves_terminal_states(path):
    """Applying any transition sequence never escapes finished/aborted."""
    current = JobStatus.SCHEDULED
    for target in path:
        if target in JOB_TRANSITIONS[current]:
            current = target
        # illegal transitions are rejected by the service; state unchanged
    if current in (JobStatus.FINISHED, JobStatus.ABORTED):
        assert JOB_TRANSITIONS[current] == ()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(1, 12), min_size=1, max_size=8, unique=True),
       st.integers(1, 3))
def test_every_expanded_job_is_created_and_eventually_finished(thread_sweep, deployments):
    """For any sweep, the evaluation creates exactly one job per point and a
    fleet of SleepAgents finishes all of them."""
    from repro.agent.fleet import AgentFleet
    from repro.agents.testing import SleepAgent, register_sleep_system
    from repro.core.control import ChronosControl
    from repro.util.clock import SimulatedClock

    clock = SimulatedClock()
    control = ChronosControl(clock=clock)
    admin = control.users.get_by_username("admin")
    system = register_sleep_system(control, owner_id=admin.id)
    deployment_ids = [control.deployments.register(system.id, f"node-{i}").id
                      for i in range(deployments)]
    project = control.projects.create("property", admin)
    experiment = control.experiments.create(project.id, system.id, "exp",
                                            parameters={"work_units": thread_sweep})
    evaluation, jobs = control.evaluations.create(experiment.id)
    assert len(jobs) == len(thread_sweep)
    fleet = AgentFleet(control, system.id, deployment_ids, SleepAgent, clock=clock)
    report = fleet.drive_evaluation(evaluation.id)
    assert report.jobs_finished == len(thread_sweep)
    assert control.evaluations.get(evaluation.id).status.value == "finished"
    finished_work = sorted(
        control.results.for_job(job.id).data["work_done"]
        for job in control.evaluations.jobs(evaluation.id)
    )
    assert finished_work == sorted(thread_sweep)
