"""Tests for parameter types and evaluation-space expansion."""

from __future__ import annotations

import pytest

from repro.core.enums import ParameterKind
from repro.core.parameters import (
    ParameterDefinition,
    boolean,
    checkbox,
    evaluation_space_size,
    expand_parameter_space,
    interval,
    parse_interval,
    parse_ratio,
    ratio,
    resolve_assignments,
    value,
)
from repro.errors import ValidationError


class TestDefinitions:
    def test_factories_set_kind(self):
        assert boolean("b").kind is ParameterKind.BOOLEAN
        assert checkbox("c", ["x"]).kind is ParameterKind.CHECKBOX
        assert value("v").kind is ParameterKind.VALUE
        assert interval("i").kind is ParameterKind.INTERVAL
        assert ratio("r").kind is ParameterKind.RATIO

    def test_round_trip_dict(self):
        definition = checkbox("engine", ["a", "b"], description="d")
        assert ParameterDefinition.from_dict(definition.to_dict()) == definition


class TestIntervalParsing:
    def test_linear_interval(self):
        assert parse_interval({"start": 1, "stop": 5, "step": 2}) == [1, 3, 5]

    def test_geometric_interval(self):
        assert parse_interval({"start": 1, "stop": 16, "step": 2,
                               "scale": "geometric"}) == [1, 2, 4, 8, 16]

    def test_single_value_interval(self):
        assert parse_interval({"start": 3, "stop": 3, "step": 1}) == [3]

    def test_invalid_intervals_rejected(self):
        with pytest.raises(ValidationError):
            parse_interval({"start": 1, "stop": 5})
        with pytest.raises(ValidationError):
            parse_interval({"start": 1, "stop": 5, "step": 0})
        with pytest.raises(ValidationError):
            parse_interval({"start": 1, "stop": 5, "step": 1, "scale": "geometric"})
        with pytest.raises(ValidationError):
            parse_interval({"start": 5, "stop": 1, "step": 1})


class TestRatioParsing:
    def test_parse_and_normalise(self):
        assert parse_ratio("95:5") == (0.95, 0.05)
        assert parse_ratio("1:1") == (0.5, 0.5)
        assert parse_ratio("50:30:20") == (0.5, 0.3, 0.2)

    @pytest.mark.parametrize("bad", ["", "95", "a:b", "0:0", 95])
    def test_invalid_ratios_rejected(self, bad):
        with pytest.raises(ValidationError):
            parse_ratio(bad)


class TestResolveAssignments:
    DEFINITIONS = [
        checkbox("engine", ["wt", "mmap"]),
        interval("threads"),
        value("records", default=100),
        boolean("journal", default=False),
        ratio("mix"),
    ]

    def test_full_resolution(self):
        assignments = resolve_assignments(self.DEFINITIONS, {
            "engine": ["wt", "mmap"],
            "threads": {"start": 1, "stop": 4, "step": 1},
            "mix": "95:5",
        })
        by_name = {a.definition.name: a.values for a in assignments}
        assert by_name["engine"] == ["wt", "mmap"]
        assert by_name["threads"] == [1, 2, 3, 4]
        assert by_name["records"] == [100]
        assert by_name["journal"] == [False]
        assert by_name["mix"] == ["95:5"]

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValidationError):
            resolve_assignments(self.DEFINITIONS, {"bogus": 1, "engine": "wt",
                                                   "threads": 1, "mix": "1:1"})

    def test_missing_required_parameter_rejected(self):
        with pytest.raises(ValidationError):
            resolve_assignments(self.DEFINITIONS, {"engine": "wt", "threads": 1})

    def test_checkbox_value_must_be_an_option(self):
        with pytest.raises(ValidationError):
            resolve_assignments(self.DEFINITIONS, {
                "engine": "rocksdb", "threads": 1, "mix": "1:1"})

    def test_boolean_values_validated(self):
        with pytest.raises(ValidationError):
            resolve_assignments(self.DEFINITIONS, {
                "engine": "wt", "threads": 1, "mix": "1:1", "journal": "yes"})

    def test_boolean_sweep_allowed(self):
        assignments = resolve_assignments(self.DEFINITIONS, {
            "engine": "wt", "threads": 1, "mix": "1:1", "journal": [True, False]})
        by_name = {a.definition.name: a.values for a in assignments}
        assert by_name["journal"] == [True, False]

    def test_interval_accepts_explicit_list(self):
        assignments = resolve_assignments(self.DEFINITIONS, {
            "engine": "wt", "threads": [1, 7, 13], "mix": "1:1"})
        by_name = {a.definition.name: a.values for a in assignments}
        assert by_name["threads"] == [1, 7, 13]

    def test_optional_parameter_without_default(self):
        definitions = [value("note", required=False)]
        assignments = resolve_assignments(definitions, {})
        assert assignments[0].values == [None]


class TestExpansion:
    def test_cartesian_product(self):
        definitions = [checkbox("engine", ["a", "b"]), value("threads")]
        assignments = resolve_assignments(definitions, {"engine": ["a", "b"],
                                                        "threads": [1, 2, 3]})
        space = expand_parameter_space(assignments)
        assert len(space) == 6
        assert {"engine": "a", "threads": 2} in space
        assert evaluation_space_size(assignments) == 6

    def test_expansion_order_is_deterministic(self):
        definitions = [checkbox("engine", ["a", "b"]), value("threads")]
        assignments = resolve_assignments(definitions, {"engine": ["a", "b"],
                                                        "threads": [1, 2]})
        space = expand_parameter_space(assignments)
        assert space == [
            {"engine": "a", "threads": 1},
            {"engine": "a", "threads": 2},
            {"engine": "b", "threads": 1},
            {"engine": "b", "threads": 2},
        ]

    def test_empty_assignments_single_job(self):
        assert expand_parameter_space([]) == [{}]

    def test_demo_experiment_space_matches_paper_example(self):
        """Two storage engines x five thread counts = ten jobs (Fig. 3b)."""
        definitions = [checkbox("storage_engine", ["wiredtiger", "mmapv1"]),
                       interval("threads")]
        assignments = resolve_assignments(definitions, {
            "storage_engine": ["wiredtiger", "mmapv1"],
            "threads": {"start": 1, "stop": 16, "step": 2, "scale": "geometric"},
        })
        assert evaluation_space_size(assignments) == 10
