"""Tests for the job state machine, progress, heartbeats and timelines."""

from __future__ import annotations

import pytest

from repro.core.enums import JobStatus
from repro.errors import StateError


@pytest.fixture
def evaluation_with_jobs(control, admin, sleep_system):
    project = control.projects.create("proj", admin)
    experiment = control.experiments.create(project.id, sleep_system.id, "exp",
                                            parameters={"work_units": [1, 2]})
    return control.evaluations.create(experiment.id)


@pytest.fixture
def job(evaluation_with_jobs):
    return evaluation_with_jobs[1][0]


class TestStateMachine:
    def test_initial_state_is_scheduled(self, job):
        assert job.status is JobStatus.SCHEDULED

    def test_full_happy_path(self, control, job):
        started = control.jobs.start(job.id, "deployment-x")
        assert started.status is JobStatus.RUNNING
        assert started.attempts == 1
        assert started.started_at is not None
        finished = control.jobs.finish(job.id)
        assert finished.status is JobStatus.FINISHED
        assert finished.progress == 100

    def test_cannot_finish_scheduled_job(self, control, job):
        with pytest.raises(StateError):
            control.jobs.finish(job.id)

    def test_cannot_start_twice(self, control, job):
        control.jobs.start(job.id, "d")
        with pytest.raises(StateError):
            control.jobs.start(job.id, "d")

    def test_abort_from_scheduled_and_running(self, control, evaluation_with_jobs):
        _, jobs = evaluation_with_jobs
        control.jobs.abort(jobs[0].id)
        assert control.jobs.get(jobs[0].id).status is JobStatus.ABORTED
        control.jobs.start(jobs[1].id, "d")
        control.jobs.abort(jobs[1].id)
        assert control.jobs.get(jobs[1].id).status is JobStatus.ABORTED

    def test_terminal_states_frozen(self, control, job):
        control.jobs.start(job.id, "d")
        control.jobs.finish(job.id)
        with pytest.raises(StateError):
            control.jobs.abort(job.id)
        with pytest.raises(StateError):
            control.jobs.reschedule(job.id)

    def test_fail_and_reschedule(self, control, job):
        control.jobs.start(job.id, "d")
        failed = control.jobs.fail(job.id, "error text")
        assert failed.status is JobStatus.FAILED
        assert failed.error == "error text"
        rescheduled = control.jobs.reschedule(job.id)
        assert rescheduled.status is JobStatus.SCHEDULED
        assert rescheduled.deployment_id is None
        assert rescheduled.error is None
        assert rescheduled.attempts == 1  # attempts only grow on start

    def test_reschedule_only_failed_jobs(self, control, job):
        with pytest.raises(StateError):
            control.jobs.reschedule(job.id)


class TestProgressAndHeartbeat:
    def test_progress_updates_and_clamps(self, control, job, clock):
        control.jobs.start(job.id, "d")
        clock.advance(10)
        updated = control.jobs.update_progress(job.id, 150)
        assert updated.progress == 100
        assert updated.last_heartbeat == pytest.approx(clock.now())
        assert control.jobs.update_progress(job.id, -5).progress == 0

    def test_progress_requires_running_state(self, control, job):
        with pytest.raises(StateError):
            control.jobs.update_progress(job.id, 10)

    def test_stalled_job_detection(self, control, job, clock):
        control.jobs.start(job.id, "d")
        clock.advance(1000)
        stalled = control.jobs.stalled_jobs(timeout=500)
        assert [j.id for j in stalled] == [job.id]
        control.jobs.heartbeat(job.id)
        assert control.jobs.stalled_jobs(timeout=500) == []


class TestQueriesAndTimeline:
    def test_counts_by_status(self, control, evaluation_with_jobs):
        evaluation, jobs = evaluation_with_jobs
        control.jobs.start(jobs[0].id, "d")
        counts = control.jobs.counts_by_status(evaluation.id)
        assert counts["running"] == 1 and counts["scheduled"] == 1

    def test_next_scheduled_is_fifo(self, control, evaluation_with_jobs, sleep_system):
        _, jobs = evaluation_with_jobs
        first = control.jobs.next_scheduled(sleep_system.id)
        assert first.id == jobs[0].id

    def test_next_scheduled_skips_other_deployments(self, control, evaluation_with_jobs,
                                                    sleep_system):
        _, jobs = evaluation_with_jobs
        control.jobs.start(jobs[0].id, "other-deployment")
        control.jobs.fail(jobs[0].id, "x")
        control.jobs.reschedule(jobs[0].id)
        nxt = control.jobs.next_scheduled(sleep_system.id, "my-deployment")
        assert nxt is not None

    def test_list_filters(self, control, evaluation_with_jobs, sleep_system):
        evaluation, jobs = evaluation_with_jobs
        control.jobs.start(jobs[0].id, "d")
        running = control.jobs.list(status=JobStatus.RUNNING)
        assert [job.id for job in running] == [jobs[0].id]
        in_evaluation = control.jobs.list(evaluation_id=evaluation.id)
        assert len(in_evaluation) == 2

    def test_timeline_records_every_transition(self, control, job):
        control.jobs.start(job.id, "d")
        control.jobs.update_progress(job.id, 40)
        control.jobs.fail(job.id, "boom")
        control.jobs.reschedule(job.id)
        kinds = [event.event_type.value for event in control.events.timeline("job", job.id)]
        assert kinds == ["scheduled", "started", "progress", "failed", "rescheduled"]
