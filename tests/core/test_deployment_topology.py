"""Tests for topology-carrying deployments in the control plane."""

from __future__ import annotations

import pytest

from repro.docstore.topology import TopologySpec
from repro.errors import ValidationError


class TestDeploymentTopology:
    def test_register_with_spec_stores_its_dict_form(self, control, mongodb_system):
        spec = TopologySpec(shards=4, shard_strategy="range")
        deployment = control.deployments.register(
            mongodb_system.id, name="sharded", topology=spec)
        assert deployment.environment["topology"] == spec.as_dict()
        assert deployment.environment["topology"]["kind"] == "sharded_cluster"

    def test_register_with_dict_validates_and_normalises(self, control,
                                                         mongodb_system):
        deployment = control.deployments.register(
            mongodb_system.id, name="replicated",
            topology={"replicas": 3, "write_concern": "majority"})
        assert deployment.topology_spec() == TopologySpec(
            replicas=3, write_concern="majority")

    def test_dict_declarations_stay_sparse(self, control, mongodb_system):
        # A dictionary declaration pins exactly the fields it names --
        # storing materialized defaults would freeze e.g. the storage
        # engine against job-parameter sweeps.
        deployment = control.deployments.register(
            mongodb_system.id, name="sparse",
            topology={"shards": 4, "write_concern": "2", "replicas": 3})
        assert deployment.environment["topology"] == {
            "shards": 4, "write_concern": 2, "replicas": 3}

    def test_sparse_declaration_validated_without_default_cross_checks(
            self, control, mongodb_system):
        # {"write_concern": 2} implies at least two members once job
        # parameters complete the shape; it must not be rejected against
        # the one-member class default.
        deployment = control.deployments.register(
            mongodb_system.id, name="w2", topology={"write_concern": 2})
        assert deployment.environment["topology"] == {"write_concern": 2}
        assert deployment.topology_spec() == TopologySpec(replicas=2,
                                                          write_concern=2)

    def test_conflicting_declarations_rejected(self, control, mongodb_system):
        with pytest.raises(ValidationError):
            control.deployments.register(
                mongodb_system.id, name="conflict",
                environment={"topology": {"shards": 4}},
                topology=TopologySpec(replicas=3))

    def test_register_rejects_invalid_topologies(self, control, mongodb_system):
        with pytest.raises(ValidationError):
            control.deployments.register(mongodb_system.id, name="bad",
                                         topology={"shards": 0})
        with pytest.raises(ValidationError):
            control.deployments.register(mongodb_system.id, name="bad",
                                         topology={"sharding": "hash"})

    def test_environment_embedded_topology_is_validated(self, control,
                                                        mongodb_system):
        deployment = control.deployments.register(
            mongodb_system.id, name="embedded",
            environment={"host": "node1", "topology": {"shards": 2}})
        assert deployment.environment["host"] == "node1"
        assert deployment.topology_spec() == TopologySpec(shards=2)
        with pytest.raises(ValidationError):
            control.deployments.register(
                mongodb_system.id, name="bad",
                environment={"topology": {"replicas": -1}})

    def test_topology_spec_round_trips_through_storage(self, control,
                                                       mongodb_system):
        spec = TopologySpec(shards=2, replicas=3, write_concern="majority",
                            replication_lag=2)
        deployment = control.deployments.register(
            mongodb_system.id, name="full", topology=spec)
        reloaded = control.deployments.get(deployment.id)
        assert reloaded.topology_spec() == spec

    def test_deployment_without_topology_reports_none(self, control,
                                                      mongodb_system):
        deployment = control.deployments.register(
            mongodb_system.id, name="plain", environment={"host": "node1"})
        assert deployment.topology_spec() is None

    def test_update_environment_validates_topology(self, control, mongodb_system):
        deployment = control.deployments.register(mongodb_system.id, name="d")
        updated = control.deployments.update_environment(
            deployment.id, {"topology": {"replicas": 3}})
        assert updated.topology_spec() == TopologySpec(replicas=3)
        with pytest.raises(ValidationError):
            control.deployments.update_environment(
                deployment.id, {"topology": {"replicas": 0}})
