"""Tests for the versioned REST API of Chronos Control."""

from __future__ import annotations

import pytest

from repro.rest.client import RestClient


@pytest.fixture
def client(control, admin_token) -> RestClient:
    return RestClient(control.api, token=admin_token, raise_for_status=False)


@pytest.fixture
def registered(control, client, sleep_system):
    """A project, experiment and deployment created through the API."""
    project = client.post("/api/v1/projects", {"name": "api project"}).json()["project"]
    deployment = client.post("/api/v1/deployments", {
        "system_id": sleep_system.id, "name": "node-1"}).json()["deployment"]
    experiment = client.post("/api/v1/experiments", {
        "project_id": project["id"], "system_id": sleep_system.id,
        "name": "api experiment", "parameters": {"work_units": [1, 2]},
    }).json()["experiment"]
    return project, deployment, experiment


class TestAuthentication:
    def test_info_is_public(self, control):
        response = control.api.request("GET", "/api/v1/info")
        assert response.ok and response.body["api_versions"] == ["v1", "v2"]

    def test_login_returns_token(self, control):
        response = control.api.request("POST", "/api/v1/login",
                                       body={"username": "admin", "password": "admin"})
        assert response.ok and "token" in response.body

    def test_bad_credentials_rejected(self, control):
        response = control.api.request("POST", "/api/v1/login",
                                       body={"username": "admin", "password": "nope"})
        assert response.status == 401

    def test_protected_routes_require_token(self, control):
        assert control.api.request("GET", "/api/v1/projects").status == 401

    def test_invalid_token_rejected(self, control):
        response = control.api.request("GET", "/api/v1/projects",
                                       headers={"Authorization": "Bearer nope"})
        assert response.status == 401


class TestProjectsApi:
    def test_create_and_list(self, client):
        created = client.post("/api/v1/projects", {"name": "p1", "description": "d"})
        assert created.status == 201
        listed = client.get("/api/v1/projects").json()["projects"]
        assert [project["name"] for project in listed] == ["p1"]

    def test_get_single_project(self, client):
        project = client.post("/api/v1/projects", {"name": "p1"}).json()["project"]
        fetched = client.get(f"/api/v1/projects/{project['id']}")
        assert fetched.json()["project"]["name"] == "p1"

    def test_archive_endpoint(self, client):
        project = client.post("/api/v1/projects", {"name": "p1"}).json()["project"]
        archived = client.post(f"/api/v1/projects/{project['id']}/archive")
        assert archived.json()["project"]["archived"] is True

    def test_add_member(self, control, client):
        control.users.create_user("newbie", "pw")
        project = client.post("/api/v1/projects", {"name": "p1"}).json()["project"]
        updated = client.post(f"/api/v1/projects/{project['id']}/members",
                              {"username": "newbie"})
        assert len(updated.json()["project"]["members"]) == 2

    def test_missing_project_404(self, client):
        assert client.get("/api/v1/projects/project-999999").status == 404

    def test_outsider_cannot_view_project(self, control, client):
        control.users.create_user("outsider", "pw")
        project = client.post("/api/v1/projects", {"name": "p1"}).json()["project"]
        outsider_token = control.users.login("outsider", "pw")
        outsider = RestClient(control.api, token=outsider_token, raise_for_status=False)
        assert outsider.get(f"/api/v1/projects/{project['id']}").status == 403


class TestSystemsAndDeploymentsApi:
    def test_create_system_via_api(self, client):
        created = client.post("/api/v1/systems", {
            "name": "api-system",
            "description": "made by a test",
            "parameters": [{"name": "size", "kind": "interval"}],
            "result_config": {"metrics": ["m"], "diagrams": []},
        })
        assert created.status == 201
        system_id = created.json()["system"]["id"]
        assert client.get(f"/api/v1/systems/{system_id}").json()["system"]["name"] == "api-system"

    def test_list_systems(self, client, sleep_system):
        systems = client.get("/api/v1/systems").json()["systems"]
        assert any(system["id"] == sleep_system.id for system in systems)

    def test_deployments_crud(self, client, sleep_system):
        created = client.post("/api/v1/deployments", {
            "system_id": sleep_system.id, "name": "node-1",
            "environment": {"ram": 8}})
        assert created.status == 201
        deployment_id = created.json()["deployment"]["id"]
        assert client.get(f"/api/v1/deployments/{deployment_id}").ok
        listed = client.get("/api/v1/deployments",
                            query={"system_id": sleep_system.id}).json()["deployments"]
        assert len(listed) == 1


class TestEvaluationWorkflowApi:
    def test_experiment_space_endpoint(self, client, registered):
        *_, experiment = registered
        space = client.get(f"/api/v1/experiments/{experiment['id']}/space").json()
        assert space["jobs"] == 2

    def test_create_evaluation_and_jobs(self, client, registered):
        *_, experiment = registered
        created = client.post("/api/v1/evaluations", {"experiment_id": experiment["id"]})
        assert created.status == 201
        assert len(created.json()["jobs"]) == 2
        evaluation_id = created.json()["evaluation"]["id"]
        jobs = client.get(f"/api/v1/evaluations/{evaluation_id}/jobs").json()["jobs"]
        assert all(job["status"] == "scheduled" for job in jobs)

    def test_agent_workflow_over_api(self, client, registered, sleep_system):
        _, deployment, experiment = registered
        evaluation = client.post("/api/v1/evaluations",
                                 {"experiment_id": experiment["id"]}).json()["evaluation"]
        job = client.post("/api/v1/agents/next-job", {
            "system_id": sleep_system.id, "deployment_id": deployment["id"]}).json()["job"]
        assert job["status"] == "running"
        client.patch(f"/api/v1/jobs/{job['id']}/progress", {"progress": 40, "log": "hi"})
        client.post(f"/api/v1/jobs/{job['id']}/logs", {"content": "more output"})
        uploaded = client.post(f"/api/v1/jobs/{job['id']}/result", {
            "data": {"work_done": 1}, "metrics": {"execution_seconds": 0.5}})
        assert uploaded.status == 201
        fetched_job = client.get(f"/api/v1/jobs/{job['id']}").json()["job"]
        assert fetched_job["status"] == "finished"
        logs = client.get(f"/api/v1/jobs/{job['id']}/logs").json()["log"]
        assert "hi" in logs and "more output" in logs
        timeline = client.get(f"/api/v1/jobs/{job['id']}/timeline").json()["events"]
        assert any(event["event_type"] == "finished" for event in timeline)
        result = client.get(f"/api/v1/jobs/{job['id']}/result").json()["result"]
        assert result["data"]["work_done"] == 1
        progress = client.get(f"/api/v1/evaluations/{evaluation['id']}/progress").json()
        assert progress["counts"]["finished"] == 1

    def test_failure_reported_over_api(self, client, registered, sleep_system):
        _, deployment, experiment = registered
        client.post("/api/v1/evaluations", {"experiment_id": experiment["id"]})
        job = client.post("/api/v1/agents/next-job", {
            "system_id": sleep_system.id, "deployment_id": deployment["id"]}).json()["job"]
        failed = client.post(f"/api/v1/jobs/{job['id']}/failure", {"error": "boom"})
        # With attempts remaining the job is immediately re-scheduled.
        assert failed.json()["job"]["status"] == "scheduled"

    def test_abort_and_reschedule_endpoints(self, client, registered, sleep_system):
        _, deployment, experiment = registered
        evaluation = client.post("/api/v1/evaluations",
                                 {"experiment_id": experiment["id"],
                                  "max_attempts": 1}).json()["evaluation"]
        job = client.post("/api/v1/agents/next-job", {
            "system_id": sleep_system.id, "deployment_id": deployment["id"]}).json()["job"]
        client.post(f"/api/v1/jobs/{job['id']}/failure", {"error": "x"})
        rescheduled = client.post(f"/api/v1/jobs/{job['id']}/reschedule")
        assert rescheduled.json()["job"]["status"] == "scheduled"
        aborted = client.post(f"/api/v1/evaluations/{evaluation['id']}/abort")
        assert aborted.json()["evaluation"]["status"] == "aborted"

    def test_claim_when_no_work_returns_null(self, client, registered, sleep_system):
        _, deployment, _ = registered
        response = client.post("/api/v1/agents/next-job", {
            "system_id": sleep_system.id, "deployment_id": deployment["id"]})
        assert response.json()["job"] is None


class TestV2Api:
    def test_statistics_endpoint(self, client):
        statistics = client.get("/api/v2/statistics").json()["statistics"]
        assert "jobs" in statistics and "projects" in statistics

    def test_schedule_endpoint(self, client, registered):
        *_, experiment = registered
        scheduled = client.post("/api/v2/schedule", {
            "experiment_id": experiment["id"], "triggered_by": "build-42"})
        assert scheduled.status == 201
        assert scheduled.json()["job_count"] == 2
        assert scheduled.json()["triggered_by"] == "build-42"

    def test_recover_endpoint(self, client):
        response = client.post("/api/v2/recover")
        assert response.ok
        assert set(response.json()) == {"rescheduled", "stalled_recovered", "permanently_failed"}

    def test_scheduler_snapshot_endpoint(self, client, registered):
        *_, experiment = registered
        client.post("/api/v2/schedule", {"experiment_id": experiment["id"]})
        snapshot = client.get("/api/v2/scheduler").json()
        assert snapshot["scheduled"] == 2
