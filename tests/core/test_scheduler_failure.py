"""Tests for the scheduler, failure policy and recovery passes."""

from __future__ import annotations

import pytest

from repro.core.enums import JobStatus
from repro.errors import SchedulerError


@pytest.fixture
def setup(control, admin, sleep_system):
    project = control.projects.create("proj", admin)
    experiment = control.experiments.create(project.id, sleep_system.id, "exp",
                                            parameters={"work_units": [1, 2, 3, 4]})
    evaluation, jobs = control.evaluations.create(experiment.id, max_attempts=2)
    deployments = [control.deployments.register(sleep_system.id, f"node-{i}").id
                   for i in (1, 2)]
    return control, sleep_system, evaluation, jobs, deployments


class TestClaiming:
    def test_claim_marks_running_and_assigns_deployment(self, setup):
        control, system, evaluation, jobs, deployments = setup
        job = control.scheduler.claim_next_job(system.id, deployments[0])
        assert job.status is JobStatus.RUNNING
        assert job.deployment_id == deployments[0]

    def test_busy_deployment_gets_no_second_job(self, setup):
        control, system, _, _, deployments = setup
        first = control.scheduler.claim_next_job(system.id, deployments[0])
        assert first is not None
        assert control.scheduler.claim_next_job(system.id, deployments[0]) is None

    def test_two_deployments_claim_different_jobs(self, setup):
        control, system, _, _, deployments = setup
        first = control.scheduler.claim_next_job(system.id, deployments[0])
        second = control.scheduler.claim_next_job(system.id, deployments[1])
        assert first.id != second.id

    def test_claim_returns_none_when_queue_empty(self, setup):
        control, system, _, jobs, deployments = setup
        for job in jobs:
            claimed = control.scheduler.claim_next_job(system.id, deployments[0])
            control.scheduler.complete_job(claimed.id)
        assert control.scheduler.claim_next_job(system.id, deployments[0]) is None

    def test_unknown_deployment_rejected(self, setup):
        control, system, *_ = setup
        with pytest.raises(SchedulerError):
            control.scheduler.claim_next_job(system.id, "deployment-bogus")

    def test_inactive_deployment_rejected(self, setup):
        control, system, _, _, deployments = setup
        control.deployments.deactivate(deployments[0])
        with pytest.raises(SchedulerError):
            control.scheduler.claim_next_job(system.id, deployments[0])

    def test_deployment_of_other_system_rejected(self, setup, control, admin):
        _, system, _, _, _ = setup
        from repro.agents.testing import register_sleep_system

        other = register_sleep_system(control, name="other-system")
        other_deployment = control.deployments.register(other.id, "other-node")
        with pytest.raises(SchedulerError):
            control.scheduler.claim_next_job(system.id, other_deployment.id)


class TestCompletionAndRelease:
    def test_complete_job_frees_deployment(self, setup):
        control, system, _, _, deployments = setup
        job = control.scheduler.claim_next_job(system.id, deployments[0])
        control.scheduler.complete_job(job.id)
        assert control.scheduler.claim_next_job(system.id, deployments[0]) is not None

    def test_snapshot_counts(self, setup):
        control, system, _, jobs, deployments = setup
        control.scheduler.claim_next_job(system.id, deployments[0])
        snapshot = control.scheduler.snapshot()
        assert snapshot.running == 1
        assert snapshot.scheduled == len(jobs) - 1
        assert snapshot.busy_deployments == [deployments[0]]
        assert snapshot.outstanding == len(jobs)

    def test_idle_deployments(self, setup):
        control, system, _, _, deployments = setup
        assert {d.id for d in control.scheduler.idle_deployments(system.id)} == set(deployments)
        control.scheduler.claim_next_job(system.id, deployments[0])
        assert [d.id for d in control.scheduler.idle_deployments(system.id)] == [deployments[1]]


class TestFailurePolicy:
    def test_failure_with_attempts_left_reschedules(self, setup):
        control, system, _, _, deployments = setup
        job = control.scheduler.claim_next_job(system.id, deployments[0])
        result = control.report_failure(job.id, "crash")
        assert result.status is JobStatus.SCHEDULED  # automatically re-scheduled
        assert control.scheduler.claim_next_job(system.id, deployments[0]) is not None

    def test_failure_after_last_attempt_stays_failed(self, setup):
        control, system, _, _, deployments = setup
        job_id = None
        for _ in range(2):  # max_attempts=2
            job = control.scheduler.claim_next_job(system.id, deployments[0])
            job_id = job.id if job_id is None else job_id
            control.report_failure(job.id, "crash")
        failed = control.jobs.get(job_id)
        assert failed.status is JobStatus.FAILED
        assert failed.attempts == 2

    def test_stalled_job_recovered_by_heartbeat_timeout(self, setup, clock):
        control, system, _, _, deployments = setup
        job = control.scheduler.claim_next_job(system.id, deployments[0])
        clock.advance(control.failures.heartbeat_timeout + 1)
        report = control.recover_stalled_jobs()
        assert job.id in report.stalled_jobs_recovered
        assert control.jobs.get(job.id).status is JobStatus.SCHEDULED

    def test_active_jobs_not_recovered_prematurely(self, setup, clock):
        control, system, _, _, deployments = setup
        job = control.scheduler.claim_next_job(system.id, deployments[0])
        clock.advance(10)
        report = control.recover_stalled_jobs()
        assert report.total_recovered == 0
        assert control.jobs.get(job.id).status is JobStatus.RUNNING

    def test_recovery_report_lists_permanent_failures(self, setup, clock):
        control, system, _, _, deployments = setup
        # exhaust both attempts via stalls
        for _ in range(2):
            job = control.scheduler.claim_next_job(system.id, deployments[0])
            clock.advance(control.failures.heartbeat_timeout + 1)
            control.recover_stalled_jobs()
            control.scheduler.release_deployment(deployments[0])
        report = control.recover_stalled_jobs()
        assert report.permanently_failed or control.jobs.list(status=JobStatus.FAILED)

    def test_should_retry_respects_attempt_budget(self, setup):
        control, *_ = setup
        from repro.core.entities import Job
        from repro.core.enums import JobStatus as JS

        job = Job(id="j", evaluation_id="e", system_id="s", status=JS.FAILED,
                  attempts=1, max_attempts=3)
        assert control.failures.should_retry(job)
        job.attempts = 3
        assert not control.failures.should_retry(job)
