"""Tests for collections: CRUD, cursors, indexes and cost accounting."""

from __future__ import annotations

import pytest

from repro.docstore.collection import Collection
from repro.docstore.mmapv1 import MmapV1Engine
from repro.docstore.wiredtiger import WiredTigerEngine
from repro.errors import DocumentStoreError, DuplicateKeyError


@pytest.fixture(params=[WiredTigerEngine, MmapV1Engine], ids=["wiredtiger", "mmapv1"])
def collection(request) -> Collection:
    return Collection("users", request.param())


def load_users(collection: Collection, count: int = 10) -> None:
    collection.insert_many([
        {"_id": f"u{index}", "name": f"user{index}", "age": 20 + index,
         "city": "basel" if index % 2 == 0 else "zurich"}
        for index in range(count)
    ])


class TestInsert:
    def test_insert_one_generates_id_when_missing(self, collection):
        result = collection.insert_one({"name": "alice"})
        assert result.inserted_ids and result.simulated_seconds > 0

    def test_insert_preserves_explicit_id(self, collection):
        collection.insert_one({"_id": "custom", "name": "alice"})
        assert collection.find_one({"_id": "custom"})["name"] == "alice"

    def test_duplicate_id_rejected(self, collection):
        collection.insert_one({"_id": "a"})
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"_id": "a"})

    def test_insert_many_counts_costs(self, collection):
        result = collection.insert_many([{"n": index} for index in range(5)])
        assert len(result.inserted_ids) == 5
        assert result.simulated_seconds > 0

    def test_invalid_document_rejected(self, collection):
        with pytest.raises(DocumentStoreError):
            collection.insert_one({"$bad": 1})


class TestFind:
    def test_find_all(self, collection):
        load_users(collection)
        assert len(collection.find().to_list()) == 10

    def test_find_with_filter(self, collection):
        load_users(collection)
        basel = collection.find({"city": "basel"}).to_list()
        assert len(basel) == 5
        assert all(doc["city"] == "basel" for doc in basel)

    def test_find_one_and_missing(self, collection):
        load_users(collection)
        assert collection.find_one({"_id": "u3"})["age"] == 23
        assert collection.find_one({"_id": "nope"}) is None

    def test_count_documents(self, collection):
        load_users(collection)
        assert collection.count_documents() == 10
        assert collection.count_documents({"age": {"$gte": 25}}) == 5

    def test_cursor_sort_skip_limit(self, collection):
        load_users(collection)
        ages = [doc["age"] for doc in collection.find().sort("age", -1).skip(2).limit(3)]
        assert ages == [27, 26, 25]

    def test_cursor_projection(self, collection):
        load_users(collection)
        doc = collection.find({"_id": "u1"}, projection={"name": 1}).first()
        assert set(doc) == {"name", "_id"}
        doc = collection.find({"_id": "u1"}, projection={"name": 0, "_id": 0}).first()
        assert "name" not in doc and "_id" not in doc

    def test_find_with_cost_reports_cost(self, collection):
        load_users(collection)
        result = collection.find_with_cost({"city": "basel"})
        assert result.simulated_seconds > 0
        assert result.matched_count == 5


class TestUpdate:
    def test_update_one_with_operators(self, collection):
        load_users(collection)
        result = collection.update_one({"_id": "u1"}, {"$set": {"age": 99}})
        assert result.matched_count == 1 and result.modified_count == 1
        assert collection.find_one({"_id": "u1"})["age"] == 99

    def test_update_one_no_match(self, collection):
        result = collection.update_one({"_id": "missing"}, {"$set": {"x": 1}})
        assert result.matched_count == 0

    def test_update_identical_document_not_counted_as_modified(self, collection):
        collection.insert_one({"_id": "a", "v": 1})
        result = collection.update_one({"_id": "a"}, {"$set": {"v": 1}})
        assert result.matched_count == 1 and result.modified_count == 0

    def test_update_many(self, collection):
        load_users(collection)
        result = collection.update_many({"city": "basel"}, {"$inc": {"age": 100}})
        assert result.matched_count == 5 and result.modified_count == 5
        assert collection.count_documents({"age": {"$gte": 120}}) == 5

    def test_replace_one(self, collection):
        load_users(collection)
        collection.replace_one({"_id": "u1"}, {"fresh": True})
        doc = collection.find_one({"_id": "u1"})
        assert doc == {"_id": "u1", "fresh": True}

    def test_replace_with_operators_rejected(self, collection):
        load_users(collection)
        with pytest.raises(DocumentStoreError):
            collection.replace_one({"_id": "u1"}, {"$set": {"x": 1}})


class TestDelete:
    def test_delete_one(self, collection):
        load_users(collection)
        result = collection.delete_one({"_id": "u1"})
        assert result.deleted_count == 1
        assert collection.count_documents() == 9

    def test_delete_one_no_match(self, collection):
        assert collection.delete_one({"_id": "nope"}).deleted_count == 0

    def test_delete_many(self, collection):
        load_users(collection)
        result = collection.delete_many({"city": "zurich"})
        assert result.deleted_count == 5
        assert collection.count_documents({"city": "zurich"}) == 0

    def test_reinsert_after_delete_allowed(self, collection):
        collection.insert_one({"_id": "a", "v": 1})
        collection.delete_one({"_id": "a"})
        collection.insert_one({"_id": "a", "v": 2})
        assert collection.find_one({"_id": "a"})["v"] == 2


class TestIndexes:
    def test_index_used_for_equality_query(self, collection):
        load_users(collection, 50)
        collection.create_index("city")
        indexed = collection.find_with_cost({"city": "basel"})
        assert indexed.matched_count == 25

    def test_index_backfilled_on_creation(self, collection):
        load_users(collection, 10)
        collection.create_index("name")
        assert collection.indexes.get("name") is not None
        assert len(collection.indexes.get("name")) == 10

    def test_index_maintained_on_update_and_delete(self, collection):
        load_users(collection)
        collection.create_index("city")
        collection.update_one({"_id": "u0"}, {"$set": {"city": "bern"}})
        assert collection.find_with_cost({"city": "bern"}).matched_count == 1
        collection.delete_one({"_id": "u0"})
        assert collection.find_with_cost({"city": "bern"}).matched_count == 0

    def test_unique_index_enforced(self, collection):
        collection.create_index("email", unique=True)
        collection.insert_one({"email": "a@example.org"})
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"email": "a@example.org"})

    def test_drop_index(self, collection):
        collection.create_index("city")
        assert collection.drop_index("city") is True
        assert collection.drop_index("city") is False

    def test_index_query_cheaper_than_scan(self):
        indexed = Collection("c", WiredTigerEngine())
        unindexed = Collection("c", WiredTigerEngine())
        for target in (indexed, unindexed):
            load_users(target, 200)
        indexed.create_index("city")
        indexed_cost = indexed.find_with_cost({"city": "basel"}).simulated_seconds
        scan_cost = unindexed.find_with_cost({"city": "basel"}).simulated_seconds
        assert indexed_cost < scan_cost


class TestStats:
    def test_stats_include_engine_and_indexes(self, collection):
        load_users(collection)
        collection.create_index("city")
        stats = collection.stats()
        assert stats["collection"] == "users"
        assert stats["documents"] == 10
        assert "city" in stats["indexes"]
