"""Multi-threaded stress tests for the concurrent serving work (PR 6 / E14).

Every test here started life as a reproducer for a real data race in the
seed code -- counter read-modify-writes, check-then-act get-or-create,
non-atomic structure mutation -- and now pins the fix.  The differential
tests at the bottom preserve the repo's core guarantee under concurrency:
a sharded or replicated deployment must end in exactly the state a single
server reaches, and no update may be lost and no document torn.

The suites deliberately use many threads on small data: under the GIL the
interpreter switches threads every few bytecodes, which interleaves the
critical sections densely enough that the seed races failed within a few
hundred iterations.
"""

from __future__ import annotations

import threading

import pytest

from repro.docstore.btree import BTree
from repro.docstore.cache import LruCache
from repro.docstore.client import DocumentClient
from repro.docstore.collection import Collection
from repro.docstore.mmapv1 import MmapV1Engine
from repro.docstore.replication.oplog import OP_INSERT, Oplog
from repro.docstore.replication.replica_set import ReplicaSet
from repro.docstore.server import DocumentServer
from repro.docstore.sharding.chunks import ChunkManager
from repro.docstore.sharding.cluster import ShardedCluster
from repro.docstore.wiredtiger import WiredTigerEngine
from repro.errors import DuplicateKeyError


def run_threads(count: int, target, *args) -> list[Exception]:
    """Start ``count`` threads through a barrier; return raised exceptions."""
    barrier = threading.Barrier(count)
    errors: list[Exception] = []
    errors_lock = threading.Lock()

    def runner(worker_id: int) -> None:
        try:
            barrier.wait()
            target(worker_id, *args)
        except Exception as error:  # noqa: BLE001 - collected for the assert
            with errors_lock:
                errors.append(error)

    threads = [threading.Thread(target=runner, args=(worker,))
               for worker in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


# -- satellite 1: plan cache ------------------------------------------------------


class TestPlanCacheConcurrency:
    def test_hit_miss_counters_account_for_every_plan(self):
        """Seed race: ``cache_hits += 1`` from N threads lost increments."""
        collection = Collection("c", WiredTigerEngine())
        for index in range(32):
            collection.insert_one({"_id": f"d{index}", "value": index})
        threads, plans_each = 8, 200

        def worker(worker_id: int) -> None:
            for iteration in range(plans_each):
                collection.planner.plan({"value": iteration % 32})

        collection.planner.plan({"value": 0})  # warm one template
        before = collection.planner.cache_stats()
        errors = run_threads(threads, worker)
        assert not errors
        stats = collection.planner.cache_stats()
        accounted = (stats["hits"] - before["hits"]) + (stats["misses"]
                                                        - before["misses"])
        assert accounted == threads * plans_each

    def test_concurrent_plans_with_index_ddl_survive(self):
        """Plans racing create/drop index must never crash or misplan."""
        collection = Collection("c", WiredTigerEngine())
        for index in range(64):
            collection.insert_one({"_id": f"d{index}", "value": index % 8})
        stop = threading.Event()

        def reader(worker_id: int) -> None:
            while not stop.is_set():
                result = collection.find_with_cost({"value": worker_id % 8})
                assert len(result.documents) == 8

        def ddl() -> None:
            for __ in range(20):
                collection.create_index("value")
                collection.drop_index("value")
            stop.set()

        ddl_thread = threading.Thread(target=ddl)
        ddl_thread.start()
        errors = run_threads(4, reader)
        ddl_thread.join()
        assert not errors


# -- satellite 2: oplog -----------------------------------------------------------


class TestOplogConcurrency:
    def test_concurrent_appends_mint_unique_monotonic_optimes(self):
        """Seed race: interleaved ``_next_index`` reads minted duplicates."""
        oplog = Oplog()
        threads, appends_each = 8, 500

        def worker(worker_id: int) -> None:
            for iteration in range(appends_each):
                oplog.append(1, OP_INSERT, "db", "c",
                             record_id=f"{worker_id}-{iteration}",
                             document={"_id": f"{worker_id}-{iteration}"})

        errors = run_threads(threads, worker)
        assert not errors
        assert len(oplog) == threads * appends_each
        optimes = [entry.optime for entry in oplog]
        for previous, current in zip(optimes, optimes[1:]):
            assert current > previous

    def test_replicated_writes_from_threads_all_reach_the_oplog(self):
        replica_set = ReplicaSet(members=3, write_concern=1)
        collection = replica_set.database("db").collection("c")
        threads, writes_each = 4, 50

        def worker(worker_id: int) -> None:
            for iteration in range(writes_each):
                collection.insert_one({"_id": f"{worker_id}-{iteration}"})

        errors = run_threads(threads, worker)
        assert not errors
        assert len(replica_set.oplog) == threads * writes_each


# -- satellite 3: chunk map and router counters -----------------------------------


class TestChunkMapConcurrency:
    def test_chunk_for_never_fails_during_splits(self):
        """Seed race: readers observed half-applied list mutations."""
        manager = ChunkManager(shard_count=4, split_threshold=2)
        points = [manager.routing_point(f"key{index}") for index in range(512)]
        stop = threading.Event()

        def reader(worker_id: int) -> None:
            while not stop.is_set():
                for index in range(0, 512, 7):
                    manager.chunk_for(f"key{index}")

        def splitter() -> None:
            chunks = manager.chunks()
            points_by_chunk: dict[int, list] = {}
            for point in points:
                for index, chunk in enumerate(chunks):
                    if chunk.covers(point):
                        points_by_chunk.setdefault(index, []).append(point)
                        break
            manager.split_oversized(points_by_chunk)
            stop.set()

        split_thread = threading.Thread(target=splitter)
        split_thread.start()
        errors = run_threads(4, reader)
        split_thread.join()
        assert not errors
        manager.validate()

    def test_router_counters_account_for_every_insert(self):
        """Seed race: ``targeted_operations``/``documents_routed`` lost counts."""
        cluster = ShardedCluster(shards=4, auto_maintenance=False)
        collection = cluster.database("db").collection("c")
        threads, inserts_each = 8, 100

        def worker(worker_id: int) -> None:
            for iteration in range(inserts_each):
                collection.insert_one({"_id": f"{worker_id}-{iteration}"})

        errors = run_threads(threads, worker)
        assert not errors
        total = threads * inserts_each
        assert cluster.router.targeted_operations >= total
        assert cluster.sharding_state("db", "c").documents_routed == total
        assert collection.count_documents({}) == total


# -- satellite 4: mmapv1 accounting -----------------------------------------------


class TestEngineAccountingConcurrency:
    def test_mmapv1_storage_accounting_survives_insert_delete_churn(self):
        """Seed race: extent used/free drifted from the record allocations."""
        collection = Collection("c", MmapV1Engine())
        threads, cycles = 6, 60

        def worker(worker_id: int) -> None:
            for iteration in range(cycles):
                identity = f"{worker_id}-{iteration}"
                collection.insert_one({"_id": identity,
                                       "payload": "x" * (20 + iteration % 60)})
                if iteration % 3 == 0:
                    collection.delete_one({"_id": identity})

        errors = run_threads(threads, worker)
        assert not errors
        collection.engine.verify_accounting()
        stats = collection.engine.statistics()
        assert stats["documents"] == collection.count_documents({})

    def test_wiredtiger_disk_bytes_match_tree_contents_after_churn(self):
        collection = Collection("c", WiredTigerEngine())
        threads, cycles = 6, 60

        def worker(worker_id: int) -> None:
            for iteration in range(cycles):
                identity = f"{worker_id}-{iteration}"
                collection.insert_one({"_id": identity, "n": iteration})
                collection.update_one({"_id": identity},
                                      {"$set": {"n": iteration + 1}})
                if iteration % 4 == 0:
                    collection.delete_one({"_id": identity})

        errors = run_threads(threads, worker)
        assert not errors
        collection.engine.verify_accounting()


# -- core write-path guarantees ---------------------------------------------------


class TestNoLostUpdates:
    def test_concurrent_inc_on_one_document_loses_nothing(self):
        """The signature lost-update race: read-modify-write on one document."""
        collection = Collection("c", WiredTigerEngine())
        collection.insert_one({"_id": "counter", "n": 0})
        threads, incs_each = 8, 100

        def worker(worker_id: int) -> None:
            for __ in range(incs_each):
                result = collection.update_one({"_id": "counter"},
                                               {"$inc": {"n": 1}})
                assert result.matched_count == 1

        errors = run_threads(threads, worker)
        assert not errors
        assert collection.find_one({"_id": "counter"})["n"] == threads * incs_each

    def test_concurrent_inc_on_mmapv1_loses_nothing(self):
        collection = Collection("c", MmapV1Engine())
        collection.insert_one({"_id": "counter", "n": 0})
        threads, incs_each = 8, 100

        def worker(worker_id: int) -> None:
            for __ in range(incs_each):
                collection.update_one({"_id": "counter"}, {"$inc": {"n": 1}})

        errors = run_threads(threads, worker)
        assert not errors
        assert collection.find_one({"_id": "counter"})["n"] == threads * incs_each

    def test_duplicate_key_race_admits_exactly_one_insert(self):
        """Two threads inserting the same ``_id``: one wins, one gets the error."""
        collection = Collection("c", WiredTigerEngine())
        outcomes: list[str] = []
        outcome_lock = threading.Lock()

        def worker(worker_id: int) -> None:
            for iteration in range(50):
                try:
                    collection.insert_one({"_id": f"shared-{iteration}"})
                    with outcome_lock:
                        outcomes.append("inserted")
                except DuplicateKeyError:
                    with outcome_lock:
                        outcomes.append("duplicate")

        errors = run_threads(4, worker)
        assert not errors
        assert outcomes.count("inserted") == 50
        assert outcomes.count("duplicate") == 150
        assert collection.count_documents({}) == 50


class TestNoTornDocuments:
    def test_readers_never_observe_half_written_documents(self):
        """Writers keep ``a == b``; a torn read would see them disagree."""
        collection = Collection("c", WiredTigerEngine())
        collection.insert_one({"_id": "doc", "a": 0, "b": 0})
        stop = threading.Event()

        def writer() -> None:
            for version in range(1, 301):
                collection.update_one(
                    {"_id": "doc"}, {"$set": {"a": version, "b": version}})
            stop.set()

        def reader(worker_id: int) -> None:
            while not stop.is_set():
                document = collection.find_one({"_id": "doc"})
                assert document is not None
                assert document["a"] == document["b"]

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        errors = run_threads(4, reader)
        writer_thread.join()
        assert not errors


# -- infrastructure pieces --------------------------------------------------------


class TestInfrastructureConcurrency:
    def test_lru_cache_stress_keeps_byte_accounting_sane(self):
        cache = LruCache(capacity_bytes=4096)
        threads, operations = 6, 400

        def worker(worker_id: int) -> None:
            for iteration in range(operations):
                key = (worker_id * 31 + iteration) % 64
                cache.put(key, size=64)
                cache.get(key)
                if iteration % 5 == 0:
                    cache.invalidate((key + 1) % 64)

        errors = run_threads(threads, worker)
        assert not errors
        assert 0 <= cache.used_bytes <= 4096

    def test_btree_readers_race_one_writer_safely(self):
        """Copy-on-write publication: readers see old or new, never between."""
        tree = BTree(order=8)
        for index in range(64):
            tree.insert(f"k{index:04d}", index)
        stop = threading.Event()

        def writer() -> None:
            for index in range(64, 512):
                tree.insert(f"k{index:04d}", index)
            stop.set()

        def reader(worker_id: int) -> None:
            while not stop.is_set():
                found, value, __ = tree.search("k0032")
                assert found and value == 32
                items = list(tree.range("k0000", "k0063"))
                assert len(items) == 64

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        errors = run_threads(4, reader)
        writer_thread.join()
        assert not errors
        tree.check_invariants()

    def test_namespace_get_or_create_yields_one_object(self):
        """Seed race: racing first accesses each built their own engine."""
        server = DocumentServer()
        seen: list[int] = []
        seen_lock = threading.Lock()

        def worker(worker_id: int) -> None:
            collection = server.database("db").collection("c")
            with seen_lock:
                seen.append(id(collection))

        errors = run_threads(8, worker)
        assert not errors
        assert len(set(seen)) == 1

    def test_sharding_state_get_or_create_yields_one_chunk_map(self):
        cluster = ShardedCluster(shards=4, auto_maintenance=False)
        seen: list[int] = []
        seen_lock = threading.Lock()

        def worker(worker_id: int) -> None:
            state = cluster.sharding_state("db", "fresh")
            with seen_lock:
                seen.append(id(state))

        errors = run_threads(8, worker)
        assert not errors
        assert len(set(seen)) == 1


# -- migrations under load --------------------------------------------------------


class TestMigrationUnderLoad:
    def test_maintenance_during_concurrent_inserts_strands_no_documents(self):
        """Assign-first + straggler sweep: every document stays reachable."""
        cluster = ShardedCluster(shards=3, strategy="range", split_threshold=8,
                                 auto_maintenance=False)
        collection = cluster.database("db").collection("c")
        threads, inserts_each = 4, 60
        stop = threading.Event()

        def inserter(worker_id: int) -> None:
            for iteration in range(inserts_each):
                collection.insert_one({"_id": f"{worker_id:02d}-{iteration:04d}"})

        def maintainer() -> None:
            while not stop.is_set():
                cluster.maintain("db", "c")
            cluster.maintain("db", "c")

        maintenance_thread = threading.Thread(target=maintainer)
        maintenance_thread.start()
        errors = run_threads(threads, inserter)
        stop.set()
        maintenance_thread.join()
        assert not errors
        total = threads * inserts_each
        assert collection.count_documents({}) == total
        # Every document must be reachable through targeted routing -- a
        # migration that stranded a document on a non-owning shard fails here.
        for worker in range(threads):
            for iteration in range(0, inserts_each, 9):
                identity = f"{worker:02d}-{iteration:04d}"
                assert collection.find_one({"_id": identity}) is not None
        state = cluster.sharding_state("db", "c")
        state.manager.validate()


# -- differential guarantees under concurrency ------------------------------------


def run_mixed_workload(collection, threads: int = 4, operations: int = 50) -> None:
    """Deterministic-final-state workload: disjoint inserts + shared $incs."""
    collection.insert_one({"_id": "counter", "n": 0})

    def worker(worker_id: int) -> None:
        for iteration in range(operations):
            collection.insert_one({"_id": f"w{worker_id}-{iteration}",
                                   "owner": worker_id})
            collection.update_one({"_id": "counter"}, {"$inc": {"n": 1}})

    errors = run_threads(threads, worker)
    assert not errors


def expected_state(threads: int = 4, operations: int = 50) -> tuple[int, int]:
    return threads * operations + 1, threads * operations  # documents, counter


class TestDifferentialGuarantees:
    def test_sharded_cluster_matches_single_server_state(self):
        cluster = ShardedCluster(shards=3, split_threshold=16)
        collection = cluster.database("db").collection("c")
        run_mixed_workload(collection)
        documents, counter = expected_state()
        assert collection.count_documents({}) == documents
        assert collection.find_one({"_id": "counter"})["n"] == counter

    def test_replica_set_at_majority_matches_single_server_state(self):
        replica_set = ReplicaSet(members=3, write_concern="majority")
        collection = replica_set.database("db").collection("c")
        run_mixed_workload(collection)
        documents, counter = expected_state()
        assert collection.count_documents({}) == documents
        assert collection.find_one({"_id": "counter"})["n"] == counter
        # At w=majority with lag 0 the background tail keeps every member
        # converged once the writers have joined.
        for member in replica_set.members:
            member_collection = member.server.database("db").collection("c")
            assert member_collection.count_documents({}) == documents
            assert member_collection.find_one({"_id": "counter"})["n"] == counter

    @pytest.mark.parametrize("engine", ["wiredtiger", "mmapv1"])
    def test_standalone_engines_reach_identical_state(self, engine):
        server = DocumentServer(engine)
        collection = server.database("db").collection("c")
        run_mixed_workload(collection)
        documents, counter = expected_state()
        assert collection.count_documents({}) == documents
        assert collection.find_one({"_id": "counter"})["n"] == counter


# -- aggregation under concurrent writers ------------------------------------------


class TestAggregationUnderWriters:
    """Pipelines must stream safely while writers mutate the collection: no
    torn reads or crashes, and grouped counts over fields the writers never
    touch stay exact (payload updates replace whole document versions, so a
    half-applied update must never be visible to the scan)."""

    PRELOAD = 120

    def _preload(self, collection) -> dict[str, int]:
        collection.insert_many([
            {"_id": f"s{index:04d}", "category": f"cat{index % 4}",
             "counter": index, "payload": 0}
            for index in range(self.PRELOAD)
        ])
        return {f"cat{value}": self.PRELOAD // 4 for value in range(4)}

    @pytest.mark.parametrize("engine", ["wiredtiger", "mmapv1"])
    def test_standalone_group_counts_exact_under_writers(self, engine):
        server = DocumentServer(engine)
        collection = server.database("db").collection("c")
        expected = self._preload(collection)
        pipeline = [{"$group": {"_id": "$category", "n": {"$count": {}}}}]
        inserts_each, rounds = 30, 40

        def worker(worker_id: int) -> None:
            if worker_id % 2 == 0:  # writer: payload updates plus hot inserts
                for index in range(inserts_each):
                    target = (worker_id * 37 + index) % self.PRELOAD
                    collection.update_one({"_id": f"s{target:04d}"},
                                          {"$inc": {"payload": 1}})
                    collection.insert_one({"_id": f"h{worker_id}-{index}",
                                           "category": "hot", "counter": index})
            else:  # reader: grouped counts over the stable category field
                for __ in range(rounds):
                    rows = {row["_id"]: row["n"]
                            for row in collection.aggregate(pipeline).documents}
                    for category, count in expected.items():
                        assert rows.get(category) == count, rows
                    assert 0 <= rows.get("hot", 0) <= 4 * inserts_each

        errors = run_threads(8, worker)
        assert not errors

    def test_sharded_group_aggregates_exact_under_update_writers(self):
        # Updates only (no inserts): nothing triggers a chunk migration, so
        # the scatter-partial-merge totals must stay exact on every read.
        cluster = ShardedCluster(shards=3, split_threshold=10_000)
        collection = cluster.database("db").collection("c")
        expected = self._preload(collection)
        expected_totals = {
            f"cat{value}": sum(index for index in range(self.PRELOAD)
                               if index % 4 == value)
            for value in range(4)
        }
        pipeline = [{"$group": {"_id": "$category", "n": {"$count": {}},
                                "total": {"$sum": "$counter"}}}]

        def worker(worker_id: int) -> None:
            if worker_id % 2 == 0:
                for index in range(40):
                    target = (worker_id * 31 + index) % self.PRELOAD
                    collection.update_one({"_id": f"s{target:04d}"},
                                          {"$inc": {"payload": 1}})
            else:
                for __ in range(30):
                    rows = {row["_id"]: row
                            for row in collection.aggregate(pipeline).documents}
                    for category in expected:
                        assert rows[category]["n"] == expected[category]
                        assert rows[category]["total"] == expected_totals[category]
                    assert set(collection.distinct("category")) == set(expected)

        errors = run_threads(8, worker)
        assert not errors


# -- PR 8 satellite: profiler correctness under concurrency -----------------------


class TestProfilerUnderConcurrency:
    """The slow-op log must be exact under contention: every operation above
    the threshold appears exactly once, and no recorded span is torn (fields
    from two different operations mixed into one record)."""

    THREADS = 8
    OPS_PER_THREAD = 40
    RECORDS = 200

    def _build_server(self) -> tuple[DocumentServer, object]:
        server = DocumentServer("wiredtiger")
        collection = server.database("db").collection("c")
        collection.insert_many([
            {"_id": f"k{index:04d}", "counter": index,
             "category": f"cat{index % 4}"}
            for index in range(self.RECORDS)
        ])
        collection.create_index("counter")
        server.set_profiling(
            2, slow_ms=0.0,
            capacity=self.THREADS * self.OPS_PER_THREAD + 10)
        return server, collection

    def test_every_op_recorded_exactly_once(self):
        server, collection = self._build_server()
        # Each thread issues a distinct query shape per op slot, so every
        # recorded span is attributable to exactly one (thread, op) pair.
        def worker(worker_id: int) -> None:
            for index in range(self.OPS_PER_THREAD):
                collection.find_one(
                    {"_id": f"k{(worker_id * 31 + index) % self.RECORDS:04d}",
                     f"w{worker_id}": {"$exists": False}})

        errors = run_threads(self.THREADS, worker)
        assert not errors
        entries = server.get_slow_ops()
        assert len(entries) == self.THREADS * self.OPS_PER_THREAD
        described = server.profiler.describe()
        assert described["slow_ops_recorded"] == len(entries)
        assert described["slow_ops_dropped"] == 0
        assert described["in_flight"] == 0

        # Exactly-once: every (thread, slot) shape appears once.  The shape
        # string embeds the wN marker field, so counting shapes per thread
        # proves no span was lost or double-recorded.
        per_thread: dict[str, int] = {}
        for entry in entries:
            assert entry["op"] == "query"
            marker = [key for key in entry["shape"].split('"')
                      if key.startswith("w") and key[1:].isdigit()]
            assert len(marker) == 1, entry
            per_thread[marker[0]] = per_thread.get(marker[0], 0) + 1
        assert per_thread == {f"w{worker}": self.OPS_PER_THREAD
                              for worker in range(self.THREADS)}

        # No torn spans: every record is internally consistent.
        opids = set()
        for entry in entries:
            assert entry["opid"] not in opids
            opids.add(entry["opid"])
            assert entry["ns"] == "db.c"
            assert entry["access_path"] == "ID_LOOKUP"
            assert entry["docs_returned"] == 1
            assert entry["docs_examined"] == 1
            assert entry["simulated_ms"] > 0.0
            assert entry["duration_ms"] >= 0.0
            assert entry["lock_wait_ms"] >= 0.0

    def test_mixed_ops_with_writes_stay_consistent(self):
        server, collection = self._build_server()

        def worker(worker_id: int) -> None:
            for index in range(self.OPS_PER_THREAD):
                target = (worker_id * 17 + index) % self.RECORDS
                if worker_id % 2 == 0:
                    collection.update_one({"_id": f"k{target:04d}"},
                                          {"$inc": {"payload": 1}})
                else:
                    collection.find_one({"_id": f"k{target:04d}"})

        errors = run_threads(self.THREADS, worker)
        assert not errors
        entries = server.get_slow_ops()
        assert len(entries) == self.THREADS * self.OPS_PER_THREAD
        by_op = {"query": 0, "update": 0}
        for entry in entries:
            by_op[entry["op"]] += 1
            if entry["op"] == "update":
                assert entry["matched"] == 1 and entry["modified"] == 1
        half = self.THREADS * self.OPS_PER_THREAD // 2
        assert by_op == {"query": half, "update": half}
        counters = server.metrics.snapshot()["counters"]
        assert counters["operations.query"] == half
        assert counters["operations.update"] == half


class TestParallelRouterUnderConcurrency:
    """Concurrent client threads over the *parallel* router: fan-out worker
    threads must not tear spans, double-record profiling, or lose updates.

    Every client thread scatters across every shard on every op (non-key
    predicates), so worker-pool dispatch, span assembly and LockStats
    attribution are all exercised from many calling threads at once."""

    THREADS = 6
    OPS_PER_THREAD = 25
    RECORDS = 120

    def _build_cluster(self):
        cluster = ShardedCluster(shards=4, split_threshold=10_000)
        handle = DocumentClient(cluster).collection("db", "c")
        handle.insert_many([
            {"_id": f"k{index:04d}", "counter": 0, "category": index % 4}
            for index in range(self.RECORDS)
        ])
        capacity = self.THREADS * self.OPS_PER_THREAD + 10
        cluster.set_profiling(2, slow_ms=0.0, capacity=capacity)
        return cluster, handle

    def test_scattered_incs_lose_nothing_and_spans_record_once(self):
        cluster, handle = self._build_cluster()

        def worker(worker_id: int) -> None:
            for index in range(self.OPS_PER_THREAD):
                if index % 5 == 0:
                    # Broadcast read with a thread marker: its span is
                    # attributable to exactly one (thread, slot) pair.
                    handle.find({"category": {"$gte": 0},
                                 f"w{worker_id}": {"$exists": False}})
                else:
                    # Scatter update: every shard $incs its slice.
                    handle.update_many({"category": {"$gte": 0}},
                                       {"$inc": {"counter": 1}})

        errors = run_threads(self.THREADS, worker)
        assert not errors
        cluster.set_profiling(0)  # the checks below must not add spans

        # No lost $inc: every scattered update_many bumped every document.
        updates = self.THREADS * self.OPS_PER_THREAD * 4 // 5
        documents = handle.find({})
        assert len(documents) == self.RECORDS
        assert all(doc["counter"] == updates for doc in documents)

        # Exactly-once router spans, none torn.
        router_entries = [entry for entry in cluster.get_slow_ops()
                          if entry["source"] == "router"]
        assert len(router_entries) == self.THREADS * self.OPS_PER_THREAD
        described = cluster.profiler.describe()
        assert described["slow_ops_recorded"] == len(router_entries)
        assert described["slow_ops_dropped"] == 0
        assert described["in_flight"] == 0
        opids = set()
        reads = 0
        for entry in router_entries:
            assert entry["opid"] not in opids
            opids.add(entry["opid"])
            assert entry["ns"] == "db.c"
            children = [child for child in entry["shards"]
                        if child["shard"] != "balancer"]
            assert {child["shard"] for child in children} == {
                f"shard{index}" for index in range(4)}
            assert entry["parallel"] is True
            assert entry["straggler"] in {child["shard"] for child in children}
            for child in children:
                assert child["wall_ms"] >= 0.0
            if entry["op"] == "query":
                reads += 1
                assert entry["docs_returned"] == self.RECORDS
            else:
                assert entry["op"] == "update"
                assert entry["matched"] == self.RECORDS
        assert reads == self.THREADS * self.OPS_PER_THREAD // 5
