"""Oplog unit tests: optime ordering, truncation, idempotent replay.

The key guarantee is the satellite property: replaying the same entry batch
*twice* on a secondary leaves the data identical to replaying it once, for
any seeded CRUD mix -- that is what makes lag windows, catch-up after
restart and write-concern-driven partial catch-up all safe to overlap.
"""

from __future__ import annotations

import random

import pytest

from repro.docstore.client import DocumentClient
from repro.docstore.replication import (
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    ZERO_OPTIME,
    Oplog,
    OpTime,
    ReplicaSet,
    apply_entry,
)
from repro.docstore.server import DocumentServer
from repro.errors import DocumentStoreError


def dump(server: DocumentServer, database: str = "app",
         collection: str = "docs") -> list[tuple[str, dict]]:
    """The collection's state *including scan order* (order must replay too)."""
    if database not in server.database_names():
        return []
    engine = server.database(database).collection(collection).engine
    return [(record_id, document) for record_id, document, __ in engine.scan()]


class TestOpTime:
    def test_term_dominates_index(self):
        assert OpTime(2, 1) > OpTime(1, 99)
        assert OpTime(1, 2) > OpTime(1, 1)
        assert ZERO_OPTIME < OpTime(1, 1)

    def test_as_list_round_trip(self):
        assert OpTime(3, 7).as_list() == [3, 7]


class TestOplogBookkeeping:
    def test_append_assigns_monotonic_optimes(self):
        oplog = Oplog()
        first = oplog.append(1, OP_INSERT, "app", "docs", record_id="a",
                             document={"_id": "a"})
        second = oplog.append(1, OP_DELETE, "app", "docs", record_id="a")
        assert first.optime < second.optime
        assert oplog.last_optime() == second.optime

    def test_document_entries_require_record_id(self):
        with pytest.raises(DocumentStoreError):
            Oplog().append(1, OP_UPDATE, "app", "docs")

    def test_entries_after_and_truncate(self):
        oplog = Oplog()
        entries = [oplog.append(1, OP_INSERT, "app", "docs", record_id=f"d{i}",
                                document={"_id": f"d{i}"}) for i in range(5)]
        tail = oplog.entries_after(entries[2].optime)
        assert [entry.record_id for entry in tail] == ["d3", "d4"]
        removed = oplog.truncate_after(entries[2].optime)
        assert [entry.record_id for entry in removed] == ["d3", "d4"]
        assert len(oplog) == 3
        # Post-truncation appends (a new term) still order after everything.
        fresh = oplog.append(2, OP_INSERT, "app", "docs", record_id="x",
                             document={"_id": "x"})
        assert fresh.optime > entries[4].optime

    def test_post_images_are_isolated_from_caller_mutation(self):
        oplog = Oplog()
        document = {"_id": "a", "nested": {"n": 1}}
        entry = oplog.append(1, OP_INSERT, "app", "docs", record_id="a",
                             document=document)
        document["nested"]["n"] = 999
        assert entry.document["nested"]["n"] == 1


class TestApplyEntryIdempotency:
    def test_insert_twice_is_idempotent(self):
        oplog = Oplog()
        entry = oplog.append(1, OP_INSERT, "app", "docs", record_id="a",
                             document={"_id": "a", "n": 1})
        server = DocumentServer()
        apply_entry(server, entry)
        once = dump(server)
        apply_entry(server, entry)
        assert dump(server) == once

    def test_update_replays_in_place(self):
        """Replaying an update must not move the document to the scan tail."""
        server = DocumentServer()
        collection = server.database("app").collection("docs")
        collection.insert_many([{"_id": "a", "n": 0}, {"_id": "b", "n": 0}])
        oplog = Oplog()
        entry = oplog.append(1, OP_UPDATE, "app", "docs", record_id="a",
                             document={"_id": "a", "n": 42})
        apply_entry(server, entry)
        assert [record_id for record_id, __ in dump(server)] == ["a", "b"]
        assert collection.find_one({"_id": "a"})["n"] == 42

    def test_delete_of_absent_record_is_a_noop(self):
        server = DocumentServer()
        oplog = Oplog()
        entry = oplog.append(1, OP_DELETE, "app", "docs", record_id="ghost")
        assert apply_entry(server, entry) == 0.0


def seeded_crud_oplog(seed: int) -> Oplog:
    """Run a seeded CRUD mix through a replica-set primary; return its oplog."""
    replica_set = ReplicaSet(members=1, write_concern=1)
    handle = DocumentClient(replica_set).collection("app", "docs")
    rng = random.Random(seed)
    inserted = 0
    handle.create_index("group")
    for step in range(200):
        roll = rng.random()
        key = f"d{rng.randrange(max(inserted, 1))}"
        if roll < 0.45 or inserted < 8:
            handle.insert_one({"_id": f"d{inserted}", "n": inserted,
                               "group": inserted % 4})
            inserted += 1
        elif roll < 0.65:
            handle.update_one({"_id": key}, {"$inc": {"n": step}})
        elif roll < 0.75:
            handle.update_many({"group": rng.randrange(4)},
                               {"$set": {"touched": step}})
        elif roll < 0.9:
            handle.delete_one({"_id": key})
        else:
            handle.delete_many({"group": rng.randrange(4)})
    return replica_set.oplog


class TestBatchReplayIdempotency:
    """Satellite: replaying the same batch twice leaves the data identical."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_double_replay_equals_single_replay(self, seed):
        oplog = seeded_crud_oplog(seed)
        assert len(oplog) > 100  # the mix actually generated a real history

        once = DocumentServer()
        for entry in oplog:
            apply_entry(once, entry)
        twice = DocumentServer()
        for entry in oplog:
            apply_entry(twice, entry)
        for entry in oplog:  # the whole batch again
            apply_entry(twice, entry)
        assert dump(twice) == dump(once)

    def test_overlapping_window_replay_converges(self):
        """Replaying overlapping windows (the catch-up pattern) converges."""
        oplog = seeded_crud_oplog(7)
        entries = oplog.entries
        reference = DocumentServer()
        for entry in entries:
            apply_entry(reference, entry)

        overlapping = DocumentServer()
        middle = len(entries) // 2
        for entry in entries[:middle + 20]:
            apply_entry(overlapping, entry)
        for entry in entries[middle:]:
            apply_entry(overlapping, entry)
        assert dump(overlapping) == dump(reference)

    def test_replay_rebuilds_indexes(self):
        oplog = seeded_crud_oplog(13)
        rebuilt = DocumentServer()
        for entry in oplog:
            apply_entry(rebuilt, entry)
        collection = rebuilt.database("app").collection("docs")
        assert "group" in collection.indexes.names()
