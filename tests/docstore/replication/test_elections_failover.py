"""Elections, failover, rollback, partitions and the router's retry."""

from __future__ import annotations

import pytest

from repro.docstore.client import DocumentClient
from repro.docstore.replication import (
    ROLE_PRIMARY,
    ROLE_SECONDARY,
    FailureInjector,
    ReplicaSet,
)
from repro.docstore.sharding.cluster import ShardedCluster
from repro.errors import NoPrimaryError, NotPrimaryError


def loaded_set(**overrides) -> tuple[ReplicaSet, object]:
    options = {"members": 3, "write_concern": "majority"}
    options.update(overrides)
    replica_set = ReplicaSet(**options)
    handle = DocumentClient(replica_set).collection("app", "docs")
    for index in range(20):
        handle.insert_one({"_id": f"d{index}", "n": index})
    return replica_set, handle


class TestElections:
    def test_kill_primary_elects_the_freshest_secondary(self):
        replica_set, handle = loaded_set()
        injector = FailureInjector(replica_set)
        victim = injector.kill_primary()
        # Nothing happens until an operation needs the primary.
        assert replica_set.failovers == 0
        handle.insert_one({"_id": "after", "n": 99})
        assert replica_set.failovers == 1
        assert replica_set.term == 2
        new_primary = replica_set.primary
        assert new_primary.member_id != victim
        assert new_primary.role == ROLE_PRIMARY
        # The winner had the highest applied optime among the survivors.
        assert all(new_primary.applied >= member.applied
                   for member in replica_set.reachable_members())
        assert len(replica_set.elections) == 1
        record = replica_set.elections[0]
        assert record.votes == 2 and record.member_count == 3
        assert record.simulated_seconds > 0

    def test_majority_writes_survive_failover_without_rollback(self):
        replica_set, handle = loaded_set(replication_lag=5)
        FailureInjector(replica_set).kill_primary()
        handle.insert_one({"_id": "after", "n": 99})
        assert replica_set.rolled_back_entries == 0
        surviving = {document["_id"]
                     for document in handle.find_with_cost({}).documents}
        assert {f"d{index}" for index in range(20)} <= surviving

    def test_w1_failover_rolls_back_the_unreplicated_tail(self):
        replica_set, handle = loaded_set(write_concern=1, replication_lag=4)
        FailureInjector(replica_set).kill_primary()
        handle.insert_one({"_id": "after", "n": 99})
        assert replica_set.rolled_back_entries == 4
        surviving = {document["_id"]
                     for document in handle.find_with_cost({}).documents}
        # The last 4 acknowledged inserts died with the primary.
        assert surviving == {f"d{index}" for index in range(16)} | {"after"}

    def test_no_majority_means_no_primary(self):
        replica_set, handle = loaded_set()
        injector = FailureInjector(replica_set)
        injector.kill(1)
        injector.kill(2)
        with pytest.raises(NoPrimaryError):
            replica_set.elect()
        with pytest.raises(NoPrimaryError):
            handle.insert_one({"_id": "nope"})

    def test_step_down_hands_over_to_another_member(self):
        replica_set, __ = loaded_set()
        old_primary = replica_set.primary.member_id
        response = replica_set.run_command({"replSetStepDown": 1})
        assert response["ok"] == 1
        assert replica_set.primary.member_id != old_primary
        assert replica_set.members[old_primary].role == ROLE_SECONDARY


class TestRestartAndResync:
    def test_restarted_secondary_catches_up(self):
        replica_set, handle = loaded_set(write_concern=1)
        injector = FailureInjector(replica_set)
        injector.kill(2)
        for index in range(20, 30):
            handle.insert_one({"_id": f"d{index}", "n": index})
        injector.restart(2)
        member = replica_set.members[2]
        assert member.applied == replica_set.oplog.last_optime()
        assert len(member.server.database("app").collection("docs")) == 30

    def test_dead_primary_resyncs_after_rollback(self):
        """The old primary's data ran ahead of the truncated oplog: on
        restart it must rebuild from scratch, dropping the rolled-back tail."""
        replica_set, handle = loaded_set(write_concern=1, replication_lag=4)
        injector = FailureInjector(replica_set)
        victim = injector.kill_primary()
        handle.insert_one({"_id": "after", "n": 99})  # election + rollback
        assert replica_set.members[victim].needs_resync
        injector.restart(victim)
        member = replica_set.members[victim]
        assert member.role == ROLE_SECONDARY
        assert not member.needs_resync
        assert member.resyncs == 1
        documents = {record_id for record_id, __, __cost
                     in member.server.database("app").collection("docs").engine.scan()}
        assert "d19" not in documents  # rolled back everywhere, resync included
        assert "after" in documents

    def test_injector_keeps_an_event_log(self):
        replica_set, handle = loaded_set()
        injector = FailureInjector(replica_set)
        injector.kill_primary()
        handle.insert_one({"_id": "x"})
        injector.restart_all()
        events = [event["event"] for event in injector.events]
        assert events == ["kill", "restart"]


class TestPartitions:
    def test_partitioned_primary_steps_down_for_the_majority_side(self):
        replica_set, handle = loaded_set()
        injector = FailureInjector(replica_set)
        victim = injector.partition_primary()
        handle.insert_one({"_id": "after", "n": 99})
        assert replica_set.primary.member_id != victim
        assert replica_set.failovers == 1

    def test_minority_cannot_elect(self):
        replica_set, __ = loaded_set()
        injector = FailureInjector(replica_set)
        injector.partition([0, 1])  # two of three members isolated
        with pytest.raises(NoPrimaryError):
            replica_set.elect()

    def test_heal_rejoins_and_catches_up(self):
        replica_set, handle = loaded_set(write_concern=1)
        injector = FailureInjector(replica_set)
        victim = injector.partition_primary()
        handle.insert_one({"_id": "after", "n": 99})
        injector.heal()
        member = replica_set.members[victim]
        assert member.role == ROLE_SECONDARY
        assert member.applied == replica_set.oplog.last_optime()
        assert handle.count_documents({}) == 21


class TestRouterFailover:
    def make_cluster(self) -> tuple[ShardedCluster, object]:
        cluster = ShardedCluster(shards=2, replicas=3, write_concern="majority",
                                 split_threshold=16)
        handle = DocumentClient(cluster).collection("app", "docs")
        for index in range(40):
            handle.insert_one({"_id": f"d{index}", "n": index})
        return cluster, handle

    def test_cluster_replica_sets_do_not_self_elect(self):
        cluster, __ = self.make_cluster()
        replica_set = cluster.replica_set(0)
        assert replica_set.auto_elect is False
        FailureInjector(replica_set).kill_primary()
        with pytest.raises(NotPrimaryError):
            replica_set.require_primary()

    def test_router_elects_and_retries_on_failover(self):
        cluster, handle = self.make_cluster()
        FailureInjector.for_shard(cluster, 0).kill_primary()
        FailureInjector.for_shard(cluster, 1).kill_primary()
        # A scatter read touches both shards: each fails over exactly once.
        assert handle.count_documents({}) == 40
        assert cluster.router.failover_retries == 2
        assert cluster.server_status()["failovers"] == 2

    def test_workload_continues_after_shard_failover(self):
        cluster, handle = self.make_cluster()
        FailureInjector.for_shard(cluster, 0).kill_primary()
        for index in range(40, 80):
            handle.insert_one({"_id": f"d{index}", "n": index})
        assert handle.count_documents({}) == 80
        assert cluster.router.failover_retries >= 1
        assert cluster.server_status()["rolled_back_entries"] == 0

    def test_unelectable_shard_raises_loudly(self):
        cluster, handle = self.make_cluster()
        injector = FailureInjector.for_shard(cluster, 0)
        injector.kill(0)
        injector.kill(1)
        with pytest.raises(NoPrimaryError):
            handle.count_documents({})
