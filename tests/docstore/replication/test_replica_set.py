"""Replica-set behaviour: write concern, lag, read preference, introspection."""

from __future__ import annotations

import pytest

from repro.docstore.client import DocumentClient
from repro.docstore.replication import (
    READ_NEAREST,
    READ_SECONDARY,
    ROLE_PRIMARY,
    ROLE_SECONDARY,
    ReplicaSet,
    resolve_write_concern,
)
from repro.errors import DocumentStoreError, WriteConcernError


def make_set(**overrides) -> ReplicaSet:
    options = {"members": 3, "write_concern": 1}
    options.update(overrides)
    return ReplicaSet(**options)


class TestWriteConcern:
    def test_resolution(self):
        assert resolve_write_concern(1, 3) == 1
        assert resolve_write_concern("majority", 3) == 2
        assert resolve_write_concern("majority", 5) == 3
        with pytest.raises(DocumentStoreError):
            resolve_write_concern(4, 3)
        with pytest.raises(DocumentStoreError):
            resolve_write_concern("quorum", 3)

    def test_majority_write_reaches_a_majority_immediately(self):
        replica_set = make_set(write_concern="majority", replication_lag=10)
        handle = DocumentClient(replica_set).collection("app", "docs")
        handle.insert_one({"_id": "a", "n": 1})
        current = [member for member in replica_set.members
                   if member.applied == replica_set.oplog.last_optime()]
        assert len(current) >= replica_set.majority()

    def test_w1_leaves_secondaries_lagged(self):
        replica_set = make_set(write_concern=1, replication_lag=5)
        handle = DocumentClient(replica_set).collection("app", "docs")
        for index in range(12):
            handle.insert_one({"_id": f"d{index}", "n": index})
        status = replica_set.replica_set_status()
        secondary_lags = [member["lag_entries"] for member in status["members"]
                          if member["role"] == ROLE_SECONDARY]
        assert secondary_lags == [5, 5]

    def test_majority_costs_more_than_w1(self):
        def write_cost(write_concern) -> float:
            replica_set = make_set(write_concern=write_concern)
            handle = DocumentClient(replica_set).collection("app", "docs")
            return handle.insert_one({"_id": "a", "n": 1}).simulated_seconds

        assert write_cost("majority") > write_cost(1)

    def test_unreachable_write_concern_raises(self):
        replica_set = make_set(write_concern=3)
        replica_set.kill_member(2)
        handle = DocumentClient(replica_set).collection("app", "docs")
        with pytest.raises(WriteConcernError):
            handle.insert_one({"_id": "a", "n": 1})

    def test_write_concern_failure_does_not_unacknowledge_the_primary(self):
        replica_set = make_set(write_concern=3)
        replica_set.kill_member(2)
        handle = DocumentClient(replica_set).collection("app", "docs")
        with pytest.raises(WriteConcernError):
            handle.insert_one({"_id": "a", "n": 1})
        # Like MongoDB: the write happened on the primary, only the ack failed.
        assert handle.count_documents({}) == 1


class TestReadPreference:
    def test_primary_reads_are_consistent(self):
        replica_set = make_set(replication_lag=5)
        handle = DocumentClient(replica_set).collection("app", "docs")
        for index in range(10):
            handle.insert_one({"_id": f"d{index}", "n": index})
        assert handle.count_documents({}) == 10
        assert replica_set.staleness_samples == []

    def test_secondary_reads_observe_lag(self):
        replica_set = make_set(read_preference=READ_SECONDARY, replication_lag=4)
        handle = DocumentClient(replica_set).collection("app", "docs")
        for index in range(10):
            handle.insert_one({"_id": f"d{index}", "n": index})
        assert handle.count_documents({}) == 6  # 4 entries behind
        assert replica_set.staleness_samples[-1] == 4
        summary = replica_set.replication_summary()
        assert summary["staleness_max"] == 4

    def test_secondary_reads_round_robin(self):
        replica_set = make_set(read_preference=READ_SECONDARY)
        first = replica_set.read_member()
        second = replica_set.read_member()
        assert first.member_id != second.member_id
        assert ROLE_PRIMARY not in (first.role, second.role)

    def test_nearest_prefers_the_lowest_ping(self):
        replica_set = make_set(read_preference=READ_NEAREST)
        member = replica_set.read_member()
        lowest = min(m.ping_seconds for m in replica_set.members)
        assert member.ping_seconds == lowest

    def test_secondary_falls_back_to_primary_when_alone(self):
        replica_set = ReplicaSet(members=1, read_preference=READ_SECONDARY)
        handle = DocumentClient(replica_set).collection("app", "docs")
        handle.insert_one({"_id": "a", "n": 1})
        assert handle.find_one({"_id": "a"})["n"] == 1


class TestDdlReplication:
    def test_indexes_reach_secondaries(self):
        replica_set = make_set(replication_lag=5)
        handle = DocumentClient(replica_set).collection("app", "docs")
        handle.insert_one({"_id": "a", "group": 1})
        handle.create_index("group")
        for member in replica_set.members:
            collection = member.server.database("app").collection("docs")
            assert "group" in collection.indexes.names()

    def test_drop_database_replicates(self):
        replica_set = make_set(write_concern="majority")
        handle = DocumentClient(replica_set).collection("app", "docs")
        handle.insert_one({"_id": "a"})
        assert replica_set.drop_database("app") is True
        for member in replica_set.members:
            assert "app" not in member.server.database_names()

    def test_dropping_unknown_namespaces_creates_no_phantoms(self):
        """Drops of never-seen namespaces replay as no-ops on every member."""
        replica_set = make_set(write_concern="majority")
        handle = DocumentClient(replica_set).collection("app", "docs")
        handle.insert_one({"_id": "a"})
        assert replica_set.drop_collection("nope", "ghost") is False
        assert replica_set.drop_index("nope", "ghost", "field") is False
        for member in replica_set.members:
            assert member.server.database_names() == ["app"]


class TestIntrospection:
    """Satellite: replication state is visible on servers and the set."""

    def test_member_server_status_reports_role_and_optime(self):
        replica_set = make_set(write_concern="majority")
        handle = DocumentClient(replica_set).collection("app", "docs")
        handle.insert_one({"_id": "a", "n": 1})
        primary_repl = replica_set.primary.server.server_status()["repl"]
        assert primary_repl["role"] == ROLE_PRIMARY
        assert primary_repl["optime"] == replica_set.oplog.last_optime().as_list()
        secondary = replica_set.secondaries()[0]
        assert secondary.server.server_status()["repl"]["role"] == ROLE_SECONDARY

    def test_member_server_answers_replSetGetStatus(self):
        replica_set = make_set()
        status = replica_set.members[1].server.run_command({"replSetGetStatus": 1})
        assert status["ok"] == 1
        assert status["set"] == "rs0"
        assert status["role"] == ROLE_SECONDARY

    def test_standalone_server_reports_standalone(self):
        from repro.docstore.server import DocumentServer

        server = DocumentServer()
        assert server.server_status()["repl"] == {"role": "standalone"}
        status = server.run_command({"replSetGetStatus": 1})
        assert status["role"] == "standalone"

    def test_set_level_status_lists_every_member(self):
        replica_set = make_set(write_concern="majority", replication_lag=2)
        handle = DocumentClient(replica_set).collection("app", "docs")
        for index in range(8):
            handle.insert_one({"_id": f"d{index}"})
        status = replica_set.run_command({"replSetGetStatus": 1})
        assert status["set"] == "rs0"
        assert len(status["members"]) == 3
        roles = sorted(member["role"] for member in status["members"])
        assert roles == [ROLE_PRIMARY, ROLE_SECONDARY, ROLE_SECONDARY]

    def test_is_master_and_server_status(self):
        replica_set = make_set()
        hello = replica_set.run_command({"isMaster": 1})
        assert hello["setName"] == "rs0"
        assert hello["primary"] == "rs0/member0"
        status = replica_set.run_command({"serverStatus": 1})
        assert status["repl"]["replicas"] == 3

    def test_collection_stats_embed_replication_summary(self):
        replica_set = make_set()
        handle = DocumentClient(replica_set).collection("app", "docs")
        handle.insert_one({"_id": "a"})
        stats = handle.stats()
        assert stats["replicas"] == 3
        assert stats["replication"]["set"] == "rs0"

    def test_explain_reports_the_serving_member(self):
        replica_set = make_set(read_preference=READ_SECONDARY)
        handle = DocumentClient(replica_set).collection("app", "docs")
        handle.insert_one({"_id": "a", "n": 1})
        plan = handle.explain({"_id": "a"})
        assert plan["replication"]["role"] == ROLE_SECONDARY


class TestValidation:
    def test_rejects_bad_configuration(self):
        with pytest.raises(DocumentStoreError):
            ReplicaSet(members=0)
        with pytest.raises(DocumentStoreError):
            ReplicaSet(members=3, read_preference="tertiary")
        with pytest.raises(DocumentStoreError):
            ReplicaSet(members=3, replication_lag=-1)
        with pytest.raises(DocumentStoreError):
            ReplicaSet(members=3, write_concern=9)
