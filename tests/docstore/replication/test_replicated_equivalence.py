"""Differential tests: a replica set must behave like a single server.

With ``w=majority`` and primary reads, a :class:`ReplicaSet` is
document-for-document equal to a single :class:`DocumentServer` for the same
seeded operation sequence -- *including when the primary is killed mid-run*:
every acknowledged write reached a majority, so the elected successor holds
exactly the state the dead primary acknowledged, and the sequence continues
without observable divergence (zero acknowledged-write loss, the acceptance
criterion of the replication PR).

The weaker configurations are exercised for their *documented* divergence:
``w=1`` plus a crash legitimately loses the unreplicated tail (that is the
durability trade-off the write concern buys back).
"""

from __future__ import annotations

import random

import pytest

from repro.docstore.client import CollectionHandle, DocumentClient
from repro.docstore.replication import FailureInjector, ReplicaSet
from repro.docstore.server import DocumentServer
from repro.docstore.sharding.cluster import ShardedCluster
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import CORE_WORKLOADS


def make_handle(deployment: str, members: int = 3) -> CollectionHandle:
    if deployment == "single":
        server: DocumentServer | ReplicaSet = DocumentServer()
    else:
        server = ReplicaSet(members=members, write_concern="majority",
                            replication_lag=3)
    return DocumentClient(server).collection("app", "users")


def run_sequence(handle: CollectionHandle, seed: int = 5,
                 kill_primary_at: int | None = None):
    """A seeded CRUD mix; optionally crashes the primary at one step.

    Returns (sorted documents, operation outcomes).  Only order-independent
    multi-match operations are used (same caveat as the sharded differential
    suite).
    """
    injector = None
    if kill_primary_at is not None:
        injector = FailureInjector(handle._client.server)
    rng = random.Random(seed)
    outcomes = []
    inserted = 0
    for step in range(300):
        if injector is not None and step == kill_primary_at:
            injector.kill_primary()
        roll = rng.random()
        key = f"user{rng.randrange(max(inserted, 1))}"
        if roll < 0.4 or inserted < 10:
            result = handle.insert_one(
                {"_id": f"user{inserted}", "n": inserted, "group": inserted % 5})
            outcomes.append(("insert", tuple(result.inserted_ids)))
            inserted += 1
        elif roll < 0.6:
            result = handle.update_one({"_id": key}, {"$set": {"n": step}})
            outcomes.append(("update", result.matched_count, result.modified_count))
        elif roll < 0.7:
            result = handle.update_many({"group": rng.randrange(5)},
                                        {"$inc": {"touched": 1}})
            outcomes.append(("update_many", result.matched_count))
        elif roll < 0.8:
            result = handle.delete_one({"_id": key})
            outcomes.append(("delete", result.deleted_count))
        elif roll < 0.9:
            documents = handle.find({"group": rng.randrange(5)})
            outcomes.append(("find", sorted(d["_id"] for d in documents)))
        else:
            outcomes.append(("count", handle.count_documents()))
    documents = sorted(handle.find_with_cost({}).documents,
                       key=lambda document: document["_id"])
    return documents, outcomes


class TestReplicatedEquivalence:
    @pytest.mark.parametrize("members", [3, 5])
    def test_replicated_sequence_matches_single_server(self, members):
        single_documents, single_outcomes = run_sequence(make_handle("single"))
        replicated_documents, replicated_outcomes = run_sequence(
            make_handle("replicated", members))
        assert replicated_outcomes == single_outcomes
        assert replicated_documents == single_documents

    @pytest.mark.parametrize("kill_at", [60, 150, 250])
    def test_mid_run_primary_kill_is_invisible_at_majority(self, kill_at):
        """Acceptance: failover mid-sequence, zero acknowledged-write loss."""
        single_documents, single_outcomes = run_sequence(make_handle("single"))
        handle = make_handle("replicated")
        replica_set: ReplicaSet = handle._client.server
        replicated_documents, replicated_outcomes = run_sequence(
            handle, kill_primary_at=kill_at)
        assert replica_set.failovers == 1  # the kill really caused an election
        assert replica_set.rolled_back_entries == 0
        assert replicated_outcomes == single_outcomes
        assert replicated_documents == single_documents

    def test_acknowledged_inserts_all_survive_a_primary_kill(self):
        """Every insert acknowledged at w=majority is readable after failover."""
        handle = make_handle("replicated")
        replica_set: ReplicaSet = handle._client.server
        injector = FailureInjector(replica_set)
        acknowledged: list[str] = []
        for index in range(120):
            if index == 60:
                injector.kill_primary()
            result = handle.insert_one({"_id": f"event{index}", "n": index})
            acknowledged.extend(result.inserted_ids)
        surviving = {document["_id"]
                     for document in handle.find_with_cost({}).documents}
        assert len(acknowledged) == 120
        assert surviving == set(acknowledged)
        assert replica_set.rolled_back_entries == 0

    def test_w1_crash_loses_exactly_the_lag_window(self):
        """The documented contrast: w=1 durability is bounded by the lag."""
        replica_set = ReplicaSet(members=3, write_concern=1, replication_lag=5)
        handle = DocumentClient(replica_set).collection("app", "users")
        for index in range(50):
            handle.insert_one({"_id": f"event{index}", "n": index})
        FailureInjector(replica_set).kill_primary()
        handle.insert_one({"_id": "after", "n": 999})
        assert replica_set.rolled_back_entries == 5
        surviving = {document["_id"]
                     for document in handle.find_with_cost({}).documents}
        assert surviving == {f"event{index}" for index in range(45)} | {"after"}


class TestReplicatedClusterEquivalence:
    def test_replicated_cluster_matches_single_server_through_failover(self):
        single_documents, single_outcomes = run_sequence(make_handle("single"))
        cluster = ShardedCluster(shards=2, replicas=3, write_concern="majority",
                                 split_threshold=16)
        handle = DocumentClient(cluster).collection("app", "users")
        replicated_documents, replicated_outcomes = run_sequence(handle)
        assert replicated_outcomes == single_outcomes
        assert replicated_documents == single_documents
        FailureInjector.for_shard(cluster, 0).kill_primary()
        FailureInjector.for_shard(cluster, 1).kill_primary()
        after = sorted(handle.find_with_cost({}).documents,
                       key=lambda document: document["_id"])
        assert after == single_documents
        assert cluster.router.failover_retries >= 1
        assert cluster.server_status()["rolled_back_entries"] == 0


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("workload", ["A", "B"])
    def test_ycsb_run_leaves_identical_collections(self, workload):
        core = CORE_WORKLOADS[workload]

        def final_documents(replicas: int):
            spec = WorkloadSpec(record_count=120, operation_count=240, threads=4,
                                mix=core.mix, distribution=core.distribution,
                                seed=13, replicas=replicas,
                                write_concern="majority" if replicas > 1 else 1)
            benchmark = DocumentBenchmark.for_spec(spec, "wiredtiger")
            benchmark.execute_full()
            return sorted(benchmark.handle.find_with_cost({}).documents,
                          key=lambda document: document["_id"])

        baseline = final_documents(1)
        for replicas in (3, 5):
            assert final_documents(replicas) == baseline
