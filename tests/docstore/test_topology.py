"""Tests for the topology layer: spec validation, serialization, factory.

The differential suite at the bottom is the refactor's safety net: for every
deployment shape, :func:`build_topology` must produce a deployment whose
seeded workload results are document-for-document equal to the hand-built
construction the pre-refactor ``DocumentBenchmark.for_spec`` performed.
"""

from __future__ import annotations

import pytest

from repro.docstore.replication.replica_set import ReplicaSet
from repro.docstore.server import DocumentServer
from repro.docstore.sharding.cluster import ShardedCluster
from repro.docstore.topology import (
    KIND_REPLICA_SET,
    KIND_REPLICATED_CLUSTER,
    KIND_SHARDED,
    KIND_STANDALONE,
    TopologySpec,
    build_topology,
    parse_write_concern,
    topology_of,
)
from repro.errors import ValidationError
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import OperationMix


class TestValidation:
    def test_defaults_are_valid(self):
        spec = TopologySpec()
        assert spec.kind == KIND_STANDALONE

    @pytest.mark.parametrize("overrides", [
        {"shards": 0},
        {"shards": -1},
        {"replicas": 0},
        {"shard_key": ""},
        {"shard_strategy": "round-robin"},
        {"read_preference": "leader"},
        {"replication_lag": -1},
        {"storage_engine": "rocksdb"},
        {"write_concern": 0},
        {"write_concern": 4},                      # > replicas
        {"write_concern": "quorum"},
        {"replicas": 3, "write_concern": 5},
    ])
    def test_invalid_specs_rejected(self, overrides):
        with pytest.raises(ValidationError):
            TopologySpec(**overrides)

    def test_parse_write_concern(self):
        assert parse_write_concern("majority") == "majority"
        assert parse_write_concern("2") == 2
        assert parse_write_concern(1) == 1
        with pytest.raises(ValidationError):
            parse_write_concern("most")


class TestKinds:
    @pytest.mark.parametrize("overrides,kind", [
        ({}, KIND_STANDALONE),
        ({"replicas": 3}, KIND_REPLICA_SET),
        ({"shards": 4}, KIND_SHARDED),
        ({"shards": 2, "replicas": 3}, KIND_REPLICATED_CLUSTER),
    ])
    def test_kind_derived_from_shape(self, overrides, kind):
        assert TopologySpec(**overrides).kind == kind

    def test_describe_names_the_engine_and_shape(self):
        assert "standalone" in TopologySpec().describe()
        assert "replica set" in TopologySpec(replicas=3).describe()
        sharded = TopologySpec(shards=4, storage_engine="mmapv1").describe()
        assert "mmapv1" in sharded and "4 shards" in sharded
        replicated = TopologySpec(shards=2, replicas=3).describe()
        assert "3-member shards" in replicated


class TestSerialization:
    SPECS = [
        TopologySpec(),
        TopologySpec(replicas=3, write_concern="majority",
                     read_preference="secondary", replication_lag=4),
        TopologySpec(shards=4, shard_key="region", shard_strategy="range",
                     storage_engine="mmapv1"),
        TopologySpec(shards=2, replicas=3, write_concern=2),
    ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_dict_round_trip(self, spec):
        data = spec.as_dict()
        assert data["kind"] == spec.kind
        assert TopologySpec.from_dict(data) == spec

    @pytest.mark.parametrize("spec", SPECS)
    def test_json_round_trip(self, spec):
        assert TopologySpec.from_json(spec.to_json()) == spec

    def test_missing_fields_fall_back_to_defaults(self):
        assert TopologySpec.from_dict({"shards": 4}) == TopologySpec(shards=4)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValidationError):
            TopologySpec.from_dict({"shards": 2, "sharding": "hash"})

    def test_non_mapping_rejected(self):
        with pytest.raises(ValidationError):
            TopologySpec.from_dict([("shards", 2)])

    def test_invalid_json_rejected(self):
        with pytest.raises(ValidationError):
            TopologySpec.from_json("{not json")

    def test_invalid_values_rejected_on_parse(self):
        with pytest.raises(ValidationError):
            TopologySpec.from_dict({"shard_strategy": "round-robin"})

    def test_from_parameters_coerces_and_layers(self):
        spec = TopologySpec.from_parameters(
            {"shards": "4", "write_concern": "majority", "shard_key": "",
             "storage_engine": "mmapv1", "threads": 8, "record_count": 100},
            defaults={"replicas": 3, "shard_key": "region"},
        )
        assert spec.shards == 4
        assert spec.replicas == 3
        assert spec.write_concern == "majority"
        assert spec.shard_key == "region"  # empty parameter falls through
        assert spec.storage_engine == "mmapv1"

    def test_from_parameters_rejects_garbage(self):
        with pytest.raises(ValidationError):
            TopologySpec.from_parameters({"shards": "many"})

    def test_from_partial_completes_minimally(self):
        assert TopologySpec.from_partial({"write_concern": 2}) == TopologySpec(
            replicas=2, write_concern=2)
        assert TopologySpec.from_partial({"write_concern": "majority"}) == (
            TopologySpec(write_concern="majority"))
        assert TopologySpec.from_partial({"shards": 4}) == TopologySpec(shards=4)
        with pytest.raises(ValidationError):
            TopologySpec.from_partial({"write_concern": 0})
        with pytest.raises(ValidationError):
            TopologySpec.from_partial({"replicas": 3, "write_concern": 5})
        with pytest.raises(ValidationError):
            TopologySpec.from_partial({"sharding": "hash"})

    def test_normalise_partial_keeps_only_named_fields(self):
        assert TopologySpec.normalise_partial(
            {"shards": 4, "write_concern": "2"}) == {
                "shards": 4, "write_concern": 2}


class TestBuildTopology:
    def test_standalone(self):
        server = build_topology(TopologySpec(storage_engine="mmapv1"))
        assert isinstance(server, DocumentServer)
        assert server.storage_engine == "mmapv1"

    def test_replica_set(self):
        spec = TopologySpec(replicas=3, write_concern="majority",
                            read_preference="nearest", replication_lag=2)
        server = build_topology(spec)
        assert isinstance(server, ReplicaSet)
        assert server.replica_count == 3
        assert server.write_concern == "majority"
        assert server.read_preference == "nearest"
        assert server.replication_lag == 2

    def test_sharded_cluster(self):
        spec = TopologySpec(shards=4, shard_key="region", shard_strategy="range")
        server = build_topology(spec)
        assert isinstance(server, ShardedCluster)
        assert server.shard_count == 4
        assert server.default_shard_key == "region"
        assert server.default_strategy == "range"
        assert all(isinstance(shard, DocumentServer) for shard in server.shards)

    def test_replicated_cluster_runs_replica_set_shards(self):
        spec = TopologySpec(shards=2, replicas=3, write_concern="majority")
        server = build_topology(spec)
        assert isinstance(server, ShardedCluster)
        assert server.replicated
        for shard in server.shards:
            assert isinstance(shard, ReplicaSet)
            assert shard.replica_count == 3
            assert not shard.auto_elect  # failover is the router's job

    @pytest.mark.parametrize("spec", TestSerialization.SPECS)
    def test_topology_of_inverts_build(self, spec):
        assert topology_of(build_topology(spec)) == spec

    def test_topology_of_unknown_object_reports_standalone(self):
        class Fake:
            storage_engine = "mmapv1"

        assert topology_of(Fake()) == TopologySpec(storage_engine="mmapv1")

    def test_spec_build_method_delegates(self):
        assert isinstance(TopologySpec(replicas=3).build(), ReplicaSet)


class TestBenchmarkTopologyReporting:
    """BenchmarkResult shape fields come from the topology layer (not probing)."""

    def test_result_reports_the_built_topology(self):
        spec = WorkloadSpec(record_count=40, operation_count=60,
                            shards=2, replicas=3, write_concern="majority")
        result = DocumentBenchmark.for_spec(spec, "wiredtiger").execute_full()
        assert result.topology == KIND_REPLICATED_CLUSTER
        assert result.shards == 2
        assert result.replicas == 3
        assert result.as_dict()["topology"] == KIND_REPLICATED_CLUSTER

    def test_hand_built_server_reports_its_real_shape(self):
        # The workload spec says nothing about replication; the reported
        # topology still describes the actual deployment object.
        spec = WorkloadSpec(record_count=40, operation_count=60)
        benchmark = DocumentBenchmark(ReplicaSet(members=3), spec)
        result = benchmark.execute_full()
        assert result.topology == KIND_REPLICA_SET
        assert result.replicas == 3


class TestDifferentialEquivalence:
    """build_topology == the pre-refactor hand construction, document for document."""

    MIX = OperationMix(read=0.5, update=0.3, insert=0.2)

    def make_spec(self, **overrides) -> WorkloadSpec:
        return WorkloadSpec(record_count=80, operation_count=160, seed=13,
                            mix=self.MIX, distribution="zipfian", **overrides)

    @staticmethod
    def run(server, spec) -> tuple[list[dict], dict]:
        benchmark = DocumentBenchmark(server, spec)
        result = benchmark.execute_full()
        documents = benchmark.handle.find_with_cost({}).documents
        return (sorted(documents, key=lambda d: d["_id"]),
                result.operation_counts)

    def assert_equivalent(self, spec: WorkloadSpec, legacy_server) -> None:
        built = build_topology(spec.topology("wiredtiger"))
        built_documents, built_counts = self.run(built, spec)
        legacy_documents, legacy_counts = self.run(legacy_server, spec)
        assert built_counts == legacy_counts
        assert built_documents == legacy_documents

    def test_standalone_matches_hand_built_server(self):
        self.assert_equivalent(self.make_spec(), DocumentServer("wiredtiger"))

    def test_replica_set_matches_hand_built_replica_set(self):
        spec = self.make_spec(replicas=3, write_concern="majority",
                              replication_lag=2)
        self.assert_equivalent(spec, ReplicaSet(
            members=3, storage_engine="wiredtiger", write_concern="majority",
            read_preference="primary", replication_lag=2))

    def test_sharded_cluster_matches_hand_built_cluster(self):
        for strategy in ("hash", "range"):
            spec = self.make_spec(shards=4, shard_strategy=strategy)
            self.assert_equivalent(spec, ShardedCluster(
                shards=4, storage_engine="wiredtiger", shard_key="_id",
                strategy=strategy))

    def test_replicated_cluster_matches_hand_built_cluster(self):
        spec = self.make_spec(shards=2, replicas=3, write_concern="majority")
        self.assert_equivalent(spec, ShardedCluster(
            shards=2, storage_engine="wiredtiger", shard_key="_id",
            strategy="hash", replicas=3, write_concern="majority",
            read_preference="primary", replication_lag=0))
