"""Tests for the observability stack (PR 8): metrics registry, operation
profiler, slow-op log, and their surfacing across every deployment shape.

The cluster suite at the bottom is the PR's acceptance scenario: a seeded
mixed workload on a 4-shard replicated cluster at profiling level 2 with
``slow_ms=0`` must produce a slow-op log whose per-operation access paths
agree with ``explain()`` and whose per-shard child spans combine (max for
parallel fan-out, sum for serial probes) to the parent span's duration.
"""

from __future__ import annotations

import json

import pytest

from repro.docstore.client import DocumentClient
from repro.docstore.observability import (
    PROFILE_ALL,
    PROFILE_OFF,
    PROFILE_SLOW_ONLY,
    LatencyHistogram,
    MetricsRegistry,
    MetricsSampler,
    Profiler,
    merge_slow_ops,
    merge_top,
    render_query_shape,
)
from repro.docstore.replication.replica_set import ReplicaSet
from repro.docstore.server import DocumentServer
from repro.docstore.topology import TopologySpec, build_topology
from repro.errors import ValidationError


def make_server(records: int = 50) -> tuple[DocumentServer, object]:
    server = DocumentServer("wiredtiger")
    collection = server.database("db").collection("events")
    collection.insert_many([
        {"_id": f"k{index:04d}", "counter": index, "category": f"cat{index % 3}"}
        for index in range(records)
    ])
    collection.create_index("counter")
    return server, collection


# -- registry / histogram primitives ------------------------------------------------


class TestLatencyHistogram:
    def test_percentiles_track_observations(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["min_ms"] == 1.0
        assert snapshot["max_ms"] == 100.0
        assert 40.0 < snapshot["p50_ms"] < 70.0
        assert snapshot["p95_ms"] >= snapshot["p50_ms"]
        assert snapshot["p99_ms"] >= snapshot["p95_ms"]

    def test_merge_sums_buckets(self):
        first, second = LatencyHistogram(), LatencyHistogram()
        for value in (1.0, 2.0, 3.0):
            first.observe(value)
        for value in (10.0, 20.0):
            second.observe(value)
        merged = LatencyHistogram.from_buckets(
            [first.snapshot(), second.snapshot()])
        snapshot = merged.snapshot()
        assert snapshot["count"] == 5
        assert snapshot["min_ms"] == 1.0
        assert snapshot["max_ms"] == 20.0


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.increment("ops", 3)
        registry.increment("ops")
        registry.gauge("depth", 7)
        registry.observe("latency", 5.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["ops"] == 4
        assert snapshot["gauges"]["depth"] == 7
        assert snapshot["histograms"]["latency"]["count"] == 1

    def test_merge_sums_counters_and_histograms(self):
        registries = [MetricsRegistry(), MetricsRegistry()]
        for index, registry in enumerate(registries):
            registry.increment("ops", index + 1)
            registry.observe("latency", float(index + 1))
        merged = MetricsRegistry.merge([r.snapshot() for r in registries])
        assert merged["counters"]["ops"] == 3
        assert merged["histograms"]["latency"]["count"] == 2

    def test_reset(self):
        registry = MetricsRegistry()
        registry.increment("ops")
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestQueryShapes:
    def test_values_replaced_by_type_markers(self):
        shape = render_query_shape(
            {"counter": {"$gte": 5}, "name": "x", "flag": True})
        parsed = json.loads(shape)
        assert parsed["counter"] == {"$gte": "#"}
        assert parsed["name"] == "s"
        assert parsed["flag"] == "b"

    def test_same_shape_for_different_constants(self):
        first = render_query_shape({"counter": {"$lt": 10}})
        second = render_query_shape({"counter": {"$lt": 99999}})
        assert first == second

    def test_pipeline_shape(self):
        shape = render_query_shape([{"$match": {"a": 1}},
                                    {"$group": {"_id": "$a"}}])
        assert "$match" in shape and "$group" in shape


# -- profiler levels and the slow-op ring --------------------------------------------


class TestProfilerLevels:
    def test_level_0_records_nothing(self):
        server, collection = make_server()
        collection.find_one({"_id": "k0001"})
        assert server.get_slow_ops() == []
        assert server.profiler.level == PROFILE_OFF
        assert not server.profiler.enabled

    def test_level_2_records_every_operation(self):
        server, collection = make_server()
        server.set_profiling(PROFILE_ALL, slow_ms=0.0)
        collection.find_one({"_id": "k0001"})
        collection.find({"counter": {"$gte": 10}}).to_list()
        entries = server.get_slow_ops()
        assert len(entries) == 2
        assert [entry["op"] for entry in entries] == ["query", "query"]

    def test_level_1_records_only_slow_operations(self):
        server, collection = make_server(records=200)
        point_cost = collection.find_with_cost(
            {"_id": "k0001"}).simulated_seconds * 1000.0
        scan_cost = collection.find_with_cost(
            {"category": "cat1"}).simulated_seconds * 1000.0
        assert point_cost < scan_cost
        threshold = (point_cost + scan_cost) / 2.0
        server.set_profiling(PROFILE_SLOW_ONLY, slow_ms=threshold)
        collection.find_one({"_id": "k0002"})       # fast: below threshold
        collection.find({"category": "cat2"}).to_list()  # slow: full scan
        entries = server.get_slow_ops()
        assert len(entries) == 1
        assert entries[0]["access_path"] == "FULL_SCAN"
        assert entries[0]["simulated_ms"] > threshold

    def test_ring_buffer_is_bounded(self):
        server, collection = make_server()
        server.set_profiling(PROFILE_ALL, slow_ms=0.0, capacity=5)
        for index in range(12):
            collection.find_one({"_id": f"k{index:04d}"})
        entries = server.get_slow_ops()
        assert len(entries) == 5
        description = server.profiler.describe()
        assert description["slow_ops_recorded"] == 12
        assert description["slow_ops_dropped"] == 7

    def test_invalid_level_rejected(self):
        with pytest.raises(ValidationError):
            DocumentServer().set_profiling(3)

    def test_set_profiling_reports_previous_level(self):
        server = DocumentServer()
        first = server.set_profiling(2, slow_ms=5.0)
        assert first["was"] == 0 and first["level"] == 2
        second = server.set_profiling(1)
        assert second["was"] == 2
        assert second["slowms"] == 5.0  # unchanged when not passed

    def test_errored_operations_are_tagged(self):
        server, collection = make_server()
        server.set_profiling(PROFILE_ALL, slow_ms=0.0)
        from repro.errors import DocumentStoreError
        with pytest.raises(DocumentStoreError):
            collection.update_one({"_id": "k0001"}, {"$bogus": {"a": 1}})
        entries = server.get_slow_ops()
        assert entries and entries[-1]["errored"] == "DocumentStoreError"
        assert server.metrics.counter("errors.update") == 1


# -- span contents vs explain() ------------------------------------------------------


class TestSpanAccessPaths:
    @pytest.mark.parametrize("query, expected", [
        ({"_id": "k0005"}, "ID_LOOKUP"),
        ({"counter": {"$gte": 45}}, "INDEX_RANGE"),
        ({"counter": 7}, "INDEX_EQ"),
        ({"category": "cat1"}, "FULL_SCAN"),
    ])
    def test_span_path_matches_explain(self, query, expected):
        server, collection = make_server()
        explained = collection.explain(query)["winning_plan"]["access_path"]
        assert explained == expected
        server.set_profiling(PROFILE_ALL, slow_ms=0.0)
        collection.find(query).to_list()
        entry = server.get_slow_ops()[-1]
        assert entry["access_path"] == explained
        assert entry["shape"] == render_query_shape(query)

    def test_plan_cache_states(self):
        server, collection = make_server()
        server.set_profiling(PROFILE_ALL, slow_ms=0.0)
        collection.find({"counter": {"$gte": 40}}).to_list()
        collection.find({"counter": {"$gte": 10}}).to_list()  # same shape: hit
        collection.find_one({"_id": "k0001"})
        states = [entry.get("plan_cache") for entry in server.get_slow_ops()]
        assert states == ["miss", "hit", "fast_id"]

    def test_docs_examined_vs_returned(self):
        server, collection = make_server(records=30)
        server.set_profiling(PROFILE_ALL, slow_ms=0.0)
        collection.find({"category": "cat0"}).to_list()
        entry = server.get_slow_ops()[-1]
        assert entry["docs_examined"] == 30       # full scan examines all
        assert entry["docs_returned"] == 10       # every third matches

    def test_write_spans_carry_counts(self):
        server, collection = make_server()
        server.set_profiling(PROFILE_ALL, slow_ms=0.0)
        collection.update_many({"category": "cat0"}, {"$set": {"flag": 1}})
        collection.delete_one({"_id": "k0003"})
        collection.insert_one({"_id": "fresh", "counter": -1})
        update, delete, insert = server.get_slow_ops()[-3:]
        assert update["op"] == "update" and update["modified"] > 0
        assert delete["op"] == "delete" and delete["deleted"] == 1
        assert insert["op"] == "insert" and insert["inserted"] == 1

    def test_aggregate_span_reports_pushdown_path(self):
        server, collection = make_server()
        server.set_profiling(PROFILE_ALL, slow_ms=0.0)
        collection.aggregate([
            {"$match": {"counter": {"$gte": 10}}},
            {"$group": {"_id": "$category", "n": {"$count": {}}}},
        ])
        entry = server.get_slow_ops()[-1]
        assert entry["op"] == "aggregate"
        assert entry["access_path"] == "INDEX_RANGE"
        assert entry["docs_examined"] > 0

    def test_count_span(self):
        server, collection = make_server()
        server.set_profiling(PROFILE_ALL, slow_ms=0.0)
        assert collection.count_documents({"counter": {"$lt": 5}}) == 5
        entry = server.get_slow_ops()[-1]
        assert entry["op"] == "count"
        assert entry["docs_returned"] == 5
        assert entry["simulated_ms"] > 0


# -- server command surface (satellites 1 and 2 included) ---------------------------


class TestServerSurface:
    def test_profile_command_roundtrip(self):
        server, _ = make_server()
        result = server.run_command({"profile": 2, "slowms": 1.5})
        assert result["ok"] == 1 and result["level"] == 2
        query = server.run_command({"profile": -1})
        assert query["level"] == 2 and query["slowms"] == 1.5

    def test_current_op_empty_between_operations(self):
        server, collection = make_server()
        server.set_profiling(PROFILE_ALL, slow_ms=0.0)
        collection.find_one({"_id": "k0001"})
        assert server.run_command({"currentOp": 1})["inprog"] == []

    def test_top_totals_per_namespace(self):
        server, collection = make_server()
        server.set_profiling(PROFILE_ALL, slow_ms=0.0)
        collection.find_one({"_id": "k0001"})
        collection.insert_one({"_id": "new"})
        totals = server.run_command({"top": 1})["totals"]
        assert totals["db.events"]["query"]["count"] == 1
        assert totals["db.events"]["insert"]["count"] == 1

    def test_server_status_metrics_and_histograms(self):
        server, collection = make_server()
        server.set_profiling(PROFILE_ALL, slow_ms=0.0)
        collection.find_one({"_id": "k0001"})
        status = server.server_status()
        metrics = status["metrics"]
        assert metrics["counters"]["operations.query"] == 1
        latency = metrics["histograms"]["latency.query"]
        assert latency["count"] == 1 and latency["p50_ms"] >= 0.0

    def test_planner_rollup_in_server_status(self):
        # Satellite 1: plan-cache counters roll up under metrics.planner.
        server, collection = make_server()
        collection.find({"counter": {"$gte": 10}}).to_list()
        collection.find({"counter": {"$gte": 20}}).to_list()
        collection.find_one({"_id": "k0001"})
        planner = server.server_status()["metrics"]["planner"]
        cache = collection.stats()["plan_cache"]
        assert planner["collections"] == 1
        assert planner["entries"] == cache["entries"]
        assert planner["hits"] == cache["hits"] == 1
        assert planner["misses"] == cache["misses"]
        assert planner["fast_id_plans"] == cache["fast_id_plans"] == 1

    def test_lock_statistics_in_server_status(self):
        # Satellite 2: per-collection lock stats under server_status()["locks"].
        server, collection = make_server()
        collection.find_one({"_id": "k0001"})
        locks = server.server_status()["locks"]
        stats = locks["db.events"]
        assert stats["acquisitions"] > 0
        assert {"contentions", "wait_seconds",
                "exclusive_acquisitions"} <= set(stats)

    def test_span_lock_wait_is_thread_local(self):
        server, collection = make_server()
        server.set_profiling(PROFILE_ALL, slow_ms=0.0)
        collection.find_one({"_id": "k0001"})
        entry = server.get_slow_ops()[-1]
        # Uncontended single-thread run: the span's wait must be zero even
        # though the collection-wide counters saw acquisitions.
        assert entry["lock_wait_ms"] == 0.0


# -- merging across replica sets -----------------------------------------------------


class TestReplicaSetSurface:
    def build(self) -> tuple[ReplicaSet, object]:
        replica_set = build_topology(TopologySpec(replicas=3))
        assert isinstance(replica_set, ReplicaSet)
        handle = DocumentClient(replica_set).collection("db", "events")
        handle.insert_many([{"_id": f"k{index:02d}", "counter": index}
                            for index in range(20)])
        return replica_set, handle

    def test_slow_ops_merged_with_member_sources(self):
        replica_set, handle = self.build()
        replica_set.set_profiling(PROFILE_ALL, slow_ms=0.0)
        handle.find_one({"_id": "k01"})
        entries = replica_set.get_slow_ops()
        assert entries
        assert all(entry["source"].startswith("rs0/member")
                   for entry in entries)

    def test_metrics_merged_across_members(self):
        replica_set, handle = self.build()
        replica_set.set_profiling(PROFILE_ALL, slow_ms=0.0)
        handle.insert_one({"_id": "fresh"})
        metrics = replica_set.metrics_snapshot()
        # The insert replicates to every member: one primary insert plus the
        # secondaries' applied copies all land in the merged counters.
        assert metrics["counters"]["operations.insert"] >= 1
        assert metrics["profiler"]["members"] == 3

    def test_profile_command_on_replica_set(self):
        replica_set, _ = self.build()
        result = replica_set.run_command({"profile": 1, "slowms": 9.0})
        assert result["ok"] == 1
        query = replica_set.run_command({"profile": -1})
        assert query["level"] == 1 and query["slowms"] == 9.0


# -- the acceptance scenario: 4-shard replicated cluster -----------------------------


class TestShardedClusterAcceptance:
    RECORDS = 80

    def build(self):
        cluster = build_topology(TopologySpec(
            shards=4, replicas=3, shard_key="_id", shard_strategy="hash"))
        handle = DocumentClient(cluster).collection("db", "events")
        handle.insert_many([
            {"_id": f"k{index:04d}", "counter": index,
             "category": f"cat{index % 3}"}
            for index in range(self.RECORDS)
        ])
        handle.create_index("counter")
        cluster.set_profiling(PROFILE_ALL, slow_ms=0.0)
        return cluster, handle

    def run_mixed_workload(self, handle) -> None:
        handle.find_with_cost({"_id": "k0005"})              # targeted point
        handle.find_with_cost({"counter": {"$gte": 60}})     # scatter range
        handle.update_one({"_id": "k0010"}, {"$set": {"flag": 1}})
        handle.update_many({"category": "cat1"}, {"$inc": {"counter": 0}})
        handle.aggregate([{"$match": {"active": {"$exists": False}}},
                          {"$group": {"_id": "$category",
                                      "n": {"$count": {}}}}])
        handle.delete_one({"_id": "k0011"})
        handle.insert_one({"_id": "zzz-new", "counter": -1})

    def test_router_spans_combine_children_and_flag_stragglers(self):
        cluster, handle = self.build()
        self.run_mixed_workload(handle)
        router_entries = [entry for entry in cluster.get_slow_ops()
                          if entry["source"] == "router"]
        assert len(router_entries) == 7
        for entry in router_entries:
            children = entry.get("shards")
            if not children:
                continue
            costs = [child["simulated_ms"] for child in children
                     if child["shard"] != "balancer"]
            balancer = sum(child["simulated_ms"] for child in children
                           if child["shard"] == "balancer")
            combined = (max(costs) if entry["parallel"] else sum(costs))
            combined += balancer
            assert entry["simulated_ms"] == pytest.approx(combined, rel=1e-9)
            if entry["parallel"] and costs:
                assert entry["straggler"] in {child["shard"]
                                              for child in children}

    def test_targeting_matches_explain(self):
        cluster, handle = self.build()
        point_explain = handle.explain({"_id": "k0005"})
        scatter_explain = handle.explain({"counter": {"$gte": 60}})
        assert point_explain["targeting"] == "targeted"
        assert scatter_explain["targeting"] == "scatter"
        handle.find_with_cost({"_id": "k0005"})
        handle.find_with_cost({"counter": {"$gte": 60}})
        point, scatter = [entry for entry in cluster.get_slow_ops()
                          if entry["source"] == "router"]
        assert point["targeting"] == "targeted"
        assert len([c for c in point["shards"] if c["shard"] != "balancer"]) == 1
        assert scatter["targeting"] == "scatter"
        assert len(scatter["shards"]) == 4

    def test_shard_side_paths_match_explain(self):
        cluster, handle = self.build()
        query = {"counter": {"$gte": 60}}
        explain = handle.explain(query)
        expected = {shard: plan["winning_plan"]["access_path"]
                    for shard, plan in explain["shard_plans"].items()}
        assert set(expected.values()) == {"INDEX_RANGE"}
        handle.find_with_cost(query)
        shard_entries = [entry for entry in cluster.get_slow_ops()
                         if entry["source"] != "router"
                         and entry["op"] == "query"]
        assert len(shard_entries) == 4     # one per shard primary
        for entry in shard_entries:
            shard = entry["source"].split("/")[0]
            assert entry["access_path"] == expected[shard]

    def test_cluster_metrics_and_locks_merged(self):
        cluster, handle = self.build()
        self.run_mixed_workload(handle)
        metrics = cluster.metrics_snapshot()
        assert metrics["counters"]["operations.query"] >= 2
        assert metrics["profiler"]["shards"] == 4
        assert metrics["planner"]["collections"] >= 4
        locks = cluster.locks_report()
        assert "db.events" in locks

    def test_slow_ops_json_round_trip(self):
        cluster, handle = self.build()
        self.run_mixed_workload(handle)
        entries = cluster.get_slow_ops()
        assert entries == json.loads(json.dumps(entries))
        starts = [entry["started"] for entry in entries]
        assert starts == sorted(starts)


# -- merge helpers -------------------------------------------------------------------


class TestMergeHelpers:
    def test_merge_slow_ops_tags_sources_and_orders(self):
        first = [{"op": "query", "started": 2.0}]
        second = [{"op": "insert", "started": 1.0}]
        merged = merge_slow_ops([("a", first), ("b", second)])
        assert [entry["source"] for entry in merged] == ["b", "a"]

    def test_merge_top_sums(self):
        tops = [
            {"db.c": {"query": {"count": 1, "simulated_ms": 2.0}}},
            {"db.c": {"query": {"count": 2, "simulated_ms": 3.0}}},
        ]
        merged = merge_top(tops)
        assert merged["db.c"]["query"] == {"count": 3, "simulated_ms": 5.0}


# -- sampler -------------------------------------------------------------------------


class TestMetricsSampler:
    def test_series_is_bounded(self):
        registry = MetricsRegistry()
        sampler = MetricsSampler(registry.snapshot, interval_seconds=0.001,
                                 max_samples=3)
        for __ in range(10):
            sampler.sample()
        assert len(sampler.series()) == 3

    def test_interval_gating(self):
        registry = MetricsRegistry()
        sampler = MetricsSampler(registry.snapshot, interval_seconds=3600.0)
        assert sampler.maybe_sample() is True
        assert sampler.maybe_sample() is False
        assert len(sampler.series()) == 1

    def test_as_dict_shape(self):
        registry = MetricsRegistry()
        registry.increment("ops")
        sampler = MetricsSampler(registry.snapshot, interval_seconds=0.001)
        sampler.sample()
        payload = sampler.as_dict()
        assert payload["interval_seconds"] == 0.001
        sample = payload["samples"][0]
        assert sample["metrics"]["counters"]["ops"] == 1
        assert sample["elapsed_seconds"] >= 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            MetricsSampler(dict, interval_seconds=0.0)
        with pytest.raises(ValidationError):
            MetricsSampler(dict, max_samples=0)


# -- workload runner and CLI integration ---------------------------------------------


class TestRunnerIntegration:
    def test_spec_validates_profile_fields(self):
        from repro.workloads.runner import WorkloadSpec
        with pytest.raises(ValidationError):
            WorkloadSpec(profile_level=3)
        with pytest.raises(ValidationError):
            WorkloadSpec(slow_ms=-1.0)

    def test_benchmark_profiles_and_samples(self):
        from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
        spec = WorkloadSpec(record_count=100, operation_count=50,
                            profile_level=2, slow_ms=0.0)
        benchmark = DocumentBenchmark.for_spec(spec)
        sampler = benchmark.attach_sampler(interval_seconds=0.001)
        benchmark.execute_full()
        slow = benchmark.slow_ops()
        assert len(slow) > 0
        assert len(sampler.series()) >= 2      # baseline + final
        final = sampler.series()[-1]["metrics"]
        assert final["counters"]["operations.query"] > 0

    def test_profile_level_0_records_nothing(self):
        from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
        spec = WorkloadSpec(record_count=100, operation_count=20)
        benchmark = DocumentBenchmark.for_spec(spec)
        benchmark.execute_full()
        assert benchmark.slow_ops() == []


class TestProfileCli:
    def test_profile_command_table(self, capsys):
        from repro.cli import main
        assert main(["profile", "--records", "120", "--operations", "40"]) == 0
        output = capsys.readouterr().out
        assert "slow-op log:" in output
        assert "planner:" in output

    def test_profile_command_json(self, capsys):
        from repro.cli import main
        assert main(["profile", "--records", "120", "--operations", "40",
                     "--shards", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"result", "slow_ops", "metrics", "sampler"}
        assert payload["slow_ops"]
