"""Tests for the predicate-analysis layer shared by planner and router."""

from __future__ import annotations

import pytest

from repro.docstore.predicates import (
    Interval,
    IntervalSet,
    condition_intervals,
    ordered_key,
    query_intervals,
    scalar_rank,
)


class TestScalarRank:
    def test_ranks_separate_types(self):
        ranks = [scalar_rank(None), scalar_rank(True), scalar_rank(3),
                 scalar_rank("x")]
        assert ranks == sorted(ranks) and len(set(ranks)) == 4

    def test_bool_is_not_a_number(self):
        assert scalar_rank(True) != scalar_rank(1)

    def test_non_scalars_have_no_rank(self):
        assert scalar_rank([1]) is None
        assert scalar_rank({"a": 1}) is None

    def test_ordered_keys_sort_across_types(self):
        keys = sorted([ordered_key("a"), ordered_key(5), ordered_key(False)])
        assert keys == [ordered_key(False), ordered_key(5), ordered_key("a")]


class TestInterval:
    def test_point_contains_only_its_value(self):
        point = Interval.point(5)
        assert point.is_point
        assert point.contains(5) and not point.contains(6)

    def test_half_open_contains(self):
        interval = Interval(low=1, low_inclusive=True, high=9)
        assert interval.contains(1) and interval.contains(8.5)
        assert not interval.contains(9) and not interval.contains(0)

    def test_contains_is_false_on_type_clash(self):
        assert not Interval(low=5, low_inclusive=True).contains("zzz")
        assert not Interval(low=5, low_inclusive=True).contains(None)

    def test_full_interval_contains_everything(self):
        assert Interval().contains(None) and Interval().contains([1, 2])

    def test_intersect_tightens_bounds(self):
        combined = Interval(low=1, low_inclusive=True).intersect(
            Interval(high=5, high_inclusive=True))
        assert combined == Interval(1, 5, True, True)

    def test_intersect_prefers_exclusive_on_ties(self):
        combined = Interval(low=3, low_inclusive=True).intersect(Interval(low=3))
        assert combined.low == 3 and not combined.low_inclusive

    def test_contradictory_intersection_is_empty(self):
        assert Interval(low=5).intersect(Interval(high=3)) is None
        assert Interval.point(2).intersect(Interval.point(3)) is None

    def test_mixed_type_intersection_is_empty(self):
        assert Interval(low=5).intersect(Interval(high="z")) is None

    def test_make_rejects_inverted_bounds(self):
        assert Interval.make(9, 1, True, True) is None
        assert Interval.make(1, 1, True, False) is None
        assert Interval.make(1, 9, False, False) is not None


class TestConditionIntervals:
    def test_plain_value_is_a_point(self):
        assert condition_intervals(5).point_values() == [5]

    def test_eq_operator(self):
        assert condition_intervals({"$eq": "x"}).point_values() == ["x"]

    def test_in_is_a_union_of_points(self):
        assert condition_intervals({"$in": [1, 2, 3]}).point_values() == [1, 2, 3]

    def test_empty_in_matches_nothing(self):
        assert condition_intervals({"$in": []}).is_empty

    def test_range_operators_build_one_interval(self):
        interval_set = condition_intervals({"$gte": 1, "$lt": 9})
        (interval,) = interval_set.intervals
        assert interval == Interval(1, 9, True, False)

    def test_contradictory_ranges_are_empty(self):
        assert condition_intervals({"$gt": 9, "$lt": 1}).is_empty

    def test_in_intersected_with_range_prunes_points(self):
        interval_set = condition_intervals({"$in": [1, 5, 9], "$gte": 5})
        assert interval_set.point_values() == [5, 9]

    def test_conjoined_point_sets_are_not_intersected(self):
        # {"a": [1, 5]} satisfies {"$eq": 1, "$in": [5]} through different
        # array elements, so point sets must not cancel each other out.
        interval_set = condition_intervals({"$eq": 1, "$in": [5, 9]})
        assert interval_set.point_values() == [1]  # the smaller operand, kept

    def test_and_of_point_constraints_stays_satisfiable(self):
        constraints = query_intervals({"$and": [{"a": 1}, {"a": 5}]})
        assert constraints["a"].point_values() == [1]

    def test_sort_key_agrees_with_ordered_key(self):
        # The router's limited multi-shard merge (cursor.sort_key) must order
        # values exactly as the ordered index emits them (ordered_key).
        from repro.docstore.cursor import sort_key

        values = [None, False, True, -3, 0, 2.5, 7, "", "a", "z"]
        assert (sorted(values, key=sort_key)
                == sorted(values, key=ordered_key))

    def test_none_equality_is_unanalyzable(self):
        # {"a": None} also matches documents missing "a": no index can serve it.
        assert condition_intervals(None) is None
        assert condition_intervals({"$eq": None}) is None
        assert condition_intervals({"$in": [1, None]}) is None

    def test_unrepresentable_operators_add_no_constraint(self):
        assert condition_intervals({"$ne": 5}) is None
        assert condition_intervals({"$exists": True}) is None
        interval_set = condition_intervals({"$gte": 1, "$ne": 3})
        (interval,) = interval_set.intervals
        assert interval.low == 1 and interval.high is None

    def test_range_with_unorderable_operand_is_unsatisfiable(self):
        assert condition_intervals({"$gt": None}).is_empty
        assert condition_intervals({"$gt": [1, 2]}).is_empty


class TestQueryIntervals:
    def test_multiple_fields(self):
        constraints = query_intervals({"a": 5, "b": {"$lt": 3}})
        assert constraints["a"].point_values() == [5]
        assert constraints["b"].intervals[0].high == 3

    def test_and_branches_intersect(self):
        constraints = query_intervals(
            {"$and": [{"a": {"$gte": 1}}, {"a": {"$lte": 9}}]})
        (interval,) = constraints["a"].intervals
        assert interval == Interval(1, 9, True, True)

    def test_top_level_and_and_field_combine(self):
        constraints = query_intervals({"a": {"$gte": 5}, "$and": [{"a": {"$lt": 7}}]})
        (interval,) = constraints["a"].intervals
        assert interval == Interval(5, 7, True, False)

    def test_or_contributes_nothing(self):
        assert query_intervals({"$or": [{"a": 1}, {"a": 2}]}) == {}

    def test_matching_scalars_always_fall_in_the_intervals(self):
        """The over-approximation property the planner and router rely on.

        Restricted to scalar document values: array values are matched
        element-wise by ``matches()`` and served by the multikey hash
        entries of the ordered index, not by interval containment.
        """
        import random

        from repro.docstore.matching import matches

        rng = random.Random(11)
        values = [None, True, False, -3, 0, 2, 7.5, "a", "m", "z", [1, "a"]]
        operators = ["$eq", "$gt", "$gte", "$lt", "$lte", "$in", "$ne"]
        for __ in range(500):
            field = rng.choice(["a", "b"])
            operator = rng.choice(operators)
            operand = (rng.sample(values, 2) if operator == "$in"
                       else rng.choice(values))
            query = {field: {operator: operand}}
            constraints = query_intervals(query)
            if field not in constraints:
                continue
            for value in values:
                document = {field: value} if value is not None else {}
                try:
                    matched = matches(document, query)
                except Exception:
                    continue
                if matched and value is not None and scalar_rank(value) is not None:
                    assert constraints[field].contains(value), (query, value)
