"""Tests for the update-operator language."""

from __future__ import annotations

import pytest

from repro.docstore.update_ops import apply_update, is_update_document
from repro.errors import DocumentStoreError

BASE = {"_id": "d1", "count": 5, "name": "widget", "tags": ["a"], "nested": {"x": 1}}


class TestReplacement:
    def test_whole_document_replacement_keeps_id(self):
        replaced = apply_update(BASE, {"name": "other"})
        assert replaced == {"_id": "d1", "name": "other"}

    def test_is_update_document(self):
        assert is_update_document({"$set": {"a": 1}})
        assert not is_update_document({"a": 1})

    def test_original_document_is_not_mutated(self):
        apply_update(BASE, {"$set": {"name": "changed"}})
        assert BASE["name"] == "widget"


class TestSetUnsetRename:
    def test_set_creates_and_overwrites(self):
        updated = apply_update(BASE, {"$set": {"name": "gadget", "new": 1, "nested.y": 2}})
        assert updated["name"] == "gadget"
        assert updated["new"] == 1
        assert updated["nested"] == {"x": 1, "y": 2}

    def test_unset_removes(self):
        updated = apply_update(BASE, {"$unset": {"name": "", "missing": ""}})
        assert "name" not in updated

    def test_rename(self):
        updated = apply_update(BASE, {"$rename": {"name": "title"}})
        assert updated["title"] == "widget"
        assert "name" not in updated

    def test_id_cannot_be_modified(self):
        with pytest.raises(DocumentStoreError):
            apply_update(BASE, {"$set": {"_id": "other"}})

    def test_unknown_operator_raises(self):
        with pytest.raises(DocumentStoreError):
            apply_update(BASE, {"$bogus": {"a": 1}})

    def test_operator_spec_must_be_object(self):
        with pytest.raises(DocumentStoreError):
            apply_update(BASE, {"$set": 5})


class TestNumericOperators:
    def test_inc_existing_and_missing(self):
        updated = apply_update(BASE, {"$inc": {"count": 3, "fresh": 2}})
        assert updated["count"] == 8
        assert updated["fresh"] == 2

    def test_inc_non_numeric_field_raises(self):
        with pytest.raises(DocumentStoreError):
            apply_update(BASE, {"$inc": {"name": 1}})

    def test_inc_requires_numeric_operand(self):
        with pytest.raises(DocumentStoreError):
            apply_update(BASE, {"$inc": {"count": "one"}})

    def test_mul(self):
        assert apply_update(BASE, {"$mul": {"count": 2}})["count"] == 10

    def test_min_max(self):
        assert apply_update(BASE, {"$min": {"count": 3}})["count"] == 3
        assert apply_update(BASE, {"$min": {"count": 9}})["count"] == 5
        assert apply_update(BASE, {"$max": {"count": 9}})["count"] == 9
        assert apply_update(BASE, {"$max": {"count": 3}})["count"] == 5
        assert apply_update(BASE, {"$max": {"absent": 7}})["absent"] == 7


class TestArrayOperators:
    def test_push_scalar_and_each(self):
        updated = apply_update(BASE, {"$push": {"tags": "b"}})
        assert updated["tags"] == ["a", "b"]
        updated = apply_update(BASE, {"$push": {"tags": {"$each": ["b", "c"]}}})
        assert updated["tags"] == ["a", "b", "c"]

    def test_push_creates_array(self):
        assert apply_update(BASE, {"$push": {"log": "x"}})["log"] == ["x"]

    def test_push_to_non_array_raises(self):
        with pytest.raises(DocumentStoreError):
            apply_update(BASE, {"$push": {"count": 1}})

    def test_add_to_set_deduplicates(self):
        updated = apply_update(BASE, {"$addToSet": {"tags": "a"}})
        assert updated["tags"] == ["a"]
        updated = apply_update(BASE, {"$addToSet": {"tags": "b"}})
        assert updated["tags"] == ["a", "b"]

    def test_pull_removes_matching(self):
        doc = {"_id": "x", "tags": ["a", "b", "a"]}
        assert apply_update(doc, {"$pull": {"tags": "a"}})["tags"] == ["b"]

    def test_pop_front_and_back(self):
        doc = {"_id": "x", "tags": ["a", "b", "c"]}
        assert apply_update(doc, {"$pop": {"tags": 1}})["tags"] == ["a", "b"]
        assert apply_update(doc, {"$pop": {"tags": -1}})["tags"] == ["b", "c"]

    def test_pop_empty_is_noop(self):
        doc = {"_id": "x", "tags": []}
        assert apply_update(doc, {"$pop": {"tags": 1}})["tags"] == []
