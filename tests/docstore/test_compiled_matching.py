"""Compiled matchers are semantically identical to interpreted ``matches``.

``compile_query`` parses a filter once into closures; the planner re-binds a
cached compiled shape to every same-shaped query.  Both moves are only sound
if compiled evaluation, parameter extraction and the interpreted reference
agree exactly -- which this suite checks directly and differentially.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore.matching import (
    Matcher,
    compile_query,
    compile_shape,
    matches,
    query_shape,
)
from repro.errors import DocumentStoreError

DOCUMENTS = [
    {},
    {"a": 1},
    {"a": None},
    {"a": True},
    {"a": 0},
    {"a": "1"},
    {"a": [1, 2, 3]},
    {"a": [True]},
    {"a": {"b": 2}},
    {"a": {"b": [5, "x"]}, "c": "hello"},
    {"a": 2.5, "b": -3, "c": ""},
    {"b": [{"x": 1}, 4], "c": "zz"},
    {"a": [1, [2, 3]], "b": None},
]

QUERIES = [
    {},
    {"a": 1},
    {"a": None},
    {"a": True},
    {"a": [1, 2, 3]},
    {"a": {"b": 2}},
    {"a.b": 2},
    {"a.1": 2},
    {"a": {"$eq": 1}},
    {"a": {"$ne": 1}},
    {"a": {"$gt": 0}},
    {"a": {"$gte": 1, "$lt": 3}},
    {"a": {"$lt": "2"}},
    {"a": {"$gt": True}},
    {"a": {"$in": [1, "1", None]}},
    {"a": {"$in": []}},
    {"a": {"$nin": [2, 3]}},
    {"a": {"$exists": True}},
    {"a": {"$exists": False}},
    {"a": {"$size": 3}},
    {"a": {"$all": [1, 2]}},
    {"a": {"$not": {"$gt": 1}}},
    {"a": {"$not": {"$in": [1]}}},
    {"$and": [{"a": {"$gte": 0}}, {"c": "hello"}]},
    {"$or": [{"a": 1}, {"b": -3}]},
    {"$nor": [{"a": 1}, {"c": "zz"}]},
    {"$and": [{"$or": [{"a": 1}, {"a": 2}]}, {"b": {"$exists": False}}]},
    {"a": {"$gt": 0, "$lt": 10}, "c": {"$exists": True}},
]


class TestCompiledAgainstInterpreted:
    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_fixed_corpus(self, query_index):
        query = QUERIES[query_index]
        matcher = compile_query(query)
        for document in DOCUMENTS:
            assert matcher(document) == matches(document, query), (
                f"compiled and interpreted disagree: query={query} doc={document}"
            )

    def test_shape_rebinding_matches_fresh_compilation(self):
        """A compiled shape bound to a different same-shaped query's params
        behaves exactly like compiling that query from scratch."""
        pairs = [
            ({"a": 1}, {"a": 2}),
            ({"a": {"$gt": 0, "$lt": 5}}, {"a": {"$gt": -3, "$lt": 99}}),
            ({"a": {"$in": [1, 2]}}, {"a": {"$in": [7, 9]}}),
            ({"$or": [{"a": 1}, {"c": "x"}]}, {"$or": [{"a": 9}, {"c": "hello"}]}),
            ({"a": {"$not": {"$gte": 2}}}, {"a": {"$not": {"$gte": -1}}}),
            ({"a.b": 2, "c": "x"}, {"a.b": 99, "c": "hello"}),
        ]
        for first, second in pairs:
            first_shape, __ = query_shape(first)
            second_shape, second_params = query_shape(second)
            assert first_shape == second_shape, (first, second)
            rebound = Matcher(compile_shape(first), second_params)
            for document in DOCUMENTS:
                assert rebound(document) == matches(document, second), (
                    f"rebound matcher diverged: {first} -> {second} on {document}"
                )

    def test_different_value_types_change_the_shape(self):
        assert query_shape({"a": 1})[0] != query_shape({"a": "1"})[0]
        assert query_shape({"a": {"$gt": 1}})[0] != query_shape({"a": {"$gt": [1]}})[0]
        assert query_shape({"a": None})[0] != query_shape({"a": 0})[0]
        assert (query_shape({"a": {"$in": [1]}})[0]
                != query_shape({"a": {"$in": [1, 2]}})[0])

    def test_param_count_matches_extraction(self):
        for query in QUERIES:
            compiled = compile_shape(query)
            __, params = query_shape(query)
            assert compiled.param_count == len(params), query


class TestErrorParity:
    @pytest.mark.parametrize("query", [
        {"$bogus": [{"a": 1}]},
        {"a": {"$bogus": 1}},
        {"a": {"$not": 5}},
        {"$and": "not-a-list"},
        {"$and": []},
    ])
    def test_invalid_queries_raise_like_matches(self, query):
        with pytest.raises(DocumentStoreError):
            matches({"a": 1}, query)
        with pytest.raises(DocumentStoreError):
            compile_query(query)
        with pytest.raises(DocumentStoreError):
            query_shape(query)


scalar_values = st.one_of(
    st.none(), st.booleans(), st.integers(-9, 9),
    st.text(alphabet="abz", max_size=3),
)
field_values = st.one_of(scalar_values, st.lists(scalar_values, max_size=3))
documents = st.dictionaries(st.sampled_from(["a", "b", "c"]), field_values,
                            max_size=3)

comparison_conditions = st.one_of(
    scalar_values,
    st.fixed_dictionaries({"$eq": scalar_values}),
    st.fixed_dictionaries({"$ne": scalar_values}),
    st.fixed_dictionaries({"$gt": scalar_values}),
    st.fixed_dictionaries({"$gte": scalar_values, "$lte": scalar_values}),
    st.fixed_dictionaries({"$lt": scalar_values}),
    st.fixed_dictionaries({"$in": st.lists(scalar_values, max_size=3)}),
    st.fixed_dictionaries({"$nin": st.lists(scalar_values, max_size=3)}),
    st.fixed_dictionaries({"$exists": st.booleans()}),
    st.fixed_dictionaries({"$size": st.integers(0, 3)}),
    st.fixed_dictionaries({"$not": st.fixed_dictionaries({"$gt": scalar_values})}),
)
field_queries = st.dictionaries(st.sampled_from(["a", "b", "c"]),
                                comparison_conditions, min_size=1, max_size=2)
queries = st.one_of(
    field_queries,
    st.fixed_dictionaries({"$and": st.lists(field_queries, min_size=1, max_size=2)}),
    st.fixed_dictionaries({"$or": st.lists(field_queries, min_size=1, max_size=2)}),
    st.fixed_dictionaries({"$nor": st.lists(field_queries, min_size=1, max_size=2)}),
)


@settings(max_examples=300, deadline=None)
@given(documents, queries)
def test_property_compiled_equals_interpreted(document, query):
    assert compile_query(query)(document) == matches(document, query)


@settings(max_examples=150, deadline=None)
@given(documents, queries, queries)
def test_property_shape_rebinding_is_sound(document, first, second):
    """Whenever two random queries share a shape, the cached compiled form of
    one must evaluate the other exactly (the planner relies on this)."""
    first_shape, __ = query_shape(first)
    second_shape, second_params = query_shape(second)
    if first_shape != second_shape:
        return
    rebound = Matcher(compile_shape(first), second_params)
    assert rebound(document) == matches(document, second)
