"""Tests for the document server (commands) and the driver-style client."""

from __future__ import annotations

import pytest

from repro.docstore.client import DocumentClient
from repro.docstore.server import DocumentServer
from repro.errors import DocumentStoreError, NotFoundError


class TestDocumentServer:
    def test_engine_selection(self):
        assert DocumentServer("wiredtiger").storage_engine == "wiredtiger"
        assert DocumentServer("mmapv1").storage_engine == "mmapv1"
        with pytest.raises(DocumentStoreError):
            DocumentServer("rocksdb")

    def test_databases_and_collections_created_on_demand(self):
        server = DocumentServer()
        server.database("app").collection("users").insert_one({"a": 1})
        assert server.database_names() == ["app"]
        assert server.database("app").collection_names() == ["users"]

    def test_collections_use_configured_engine(self):
        server = DocumentServer("mmapv1")
        collection = server["app"]["users"]
        assert collection.engine.name == "mmapv1"

    def test_engine_options_forwarded(self):
        server = DocumentServer("mmapv1", padding_factor=2.5)
        assert server["db"]["c"].engine.padding_factor == 2.5

    def test_drop_database_and_collection(self):
        server = DocumentServer()
        server["app"]["users"].insert_one({"a": 1})
        assert server.database("app").drop_collection("users") is True
        assert server.drop_database("app") is True
        assert server.drop_database("app") is False

    def test_ping_and_build_info(self):
        server = DocumentServer()
        assert server.run_command({"ping": 1}) == {"ok": 1}
        info = server.run_command({"buildInfo": 1})
        assert "wiredtiger" in info["storageEngines"]

    def test_server_status(self):
        server = DocumentServer()
        server["app"]["users"].insert_one({"a": 1})
        status = server.run_command({"serverStatus": 1})
        assert status["storageEngine"]["name"] == "wiredtiger"
        assert status["totalDocuments"] == 1

    def test_db_and_coll_stats(self):
        server = DocumentServer()
        server["app"]["users"].insert_one({"a": 1})
        db_stats = server.run_command({"dbStats": "app"})
        assert db_stats["documents"] == 1
        coll_stats = server.run_command({"collStats": "app.users"})
        assert coll_stats["documents"] == 1

    def test_stats_for_missing_namespace(self):
        server = DocumentServer()
        with pytest.raises(NotFoundError):
            server.run_command({"dbStats": "nope"})
        with pytest.raises(NotFoundError):
            server.run_command({"collStats": "nope.missing"})

    def test_unsupported_command(self):
        with pytest.raises(DocumentStoreError):
            DocumentServer().run_command({"shardCollection": "x"})


class TestDocumentClient:
    def test_crud_through_client(self):
        client = DocumentClient(DocumentServer())
        users = client.collection("app", "users")
        users.insert_many([{"_id": f"u{i}", "n": i} for i in range(5)])
        assert users.count_documents() == 5
        users.update_one({"_id": "u0"}, {"$set": {"n": 99}})
        assert users.find_one({"_id": "u0"})["n"] == 99
        users.delete_many({"n": {"$lt": 3}})
        assert users.count_documents() == 3

    def test_latencies_recorded_per_operation(self):
        client = DocumentClient(DocumentServer())
        users = client.collection("app", "users")
        users.insert_one({"a": 1})
        users.find_one({"a": 1})
        users.update_one({"a": 1}, {"$set": {"a": 2}})
        assert len(client.latencies("insert")) == 1
        assert len(client.latencies("read")) == 1
        assert len(client.latencies("update")) == 1
        assert client.operations_recorded() == 3
        client.reset_latencies()
        assert client.operations_recorded() == 0

    def test_find_returns_documents_and_records_latency(self):
        client = DocumentClient(DocumentServer())
        users = client.collection("app", "users")
        users.insert_many([{"n": i} for i in range(3)])
        assert len(users.find()) == 3
        assert client.latencies()  # something was recorded

    def test_empty_query_reads_labelled_scan_consistently(self):
        """find / find_one / find_with_cost agree: empty query = scan."""
        client = DocumentClient(DocumentServer())
        users = client.collection("app", "users")
        users.insert_many([{"n": i} for i in range(3)])
        client.reset_latencies()
        users.find()
        users.find_one()
        users.find_with_cost()
        assert len(client.latencies("scan")) == 3
        assert client.latencies("read") == []
        client.reset_latencies()
        users.find({"n": 1})
        users.find_one({"n": 1})
        users.find_with_cost({"n": 1})
        assert len(client.latencies("read")) == 3
        assert client.latencies("scan") == []

    def test_command_passthrough_and_drop(self):
        client = DocumentClient(DocumentServer())
        client.collection("app", "users").insert_one({"a": 1})
        assert client.command({"ping": 1}) == {"ok": 1}
        assert client.drop_database("app") is True

    def test_engine_property_exposed(self):
        client = DocumentClient(DocumentServer("mmapv1"))
        assert client.collection("app", "users").engine.name == "mmapv1"

    def test_stats_and_index_passthrough(self):
        client = DocumentClient(DocumentServer())
        users = client.collection("app", "users")
        users.insert_one({"city": "basel"})
        users.create_index("city")
        assert "city" in users.stats()["indexes"]
