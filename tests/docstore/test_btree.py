"""Tests for the B-tree used by the wiredTiger-like engine."""

from __future__ import annotations

import random

import pytest

from repro.docstore.btree import BTree


class TestBasicOperations:
    def test_insert_and_get(self):
        tree = BTree(order=4)
        tree.insert("b", 2)
        tree.insert("a", 1)
        assert tree.get("a") == (True, 1)
        assert tree.get("b") == (True, 2)
        assert tree.get("c") == (False, None)

    def test_overwrite_keeps_size(self):
        tree = BTree(order=4)
        tree.insert("a", 1)
        tree.insert("a", 2)
        assert len(tree) == 1
        assert tree.get("a") == (True, 2)

    def test_len_tracks_inserts(self):
        tree = BTree(order=4)
        for index in range(50):
            tree.insert(index, index)
        assert len(tree) == 50

    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            BTree(order=3)


class TestOrderingAndIteration:
    def test_items_in_order_after_random_inserts(self):
        tree = BTree(order=6)
        keys = list(range(200))
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 10)
        assert [key for key, _ in tree.items()] == sorted(range(200))

    def test_range_scan(self):
        tree = BTree(order=6)
        for key in range(100):
            tree.insert(key, key)
        assert [key for key, _ in tree.range(10, 15)] == [10, 11, 12, 13, 14, 15]

    def test_depth_grows_logarithmically(self):
        tree = BTree(order=8)
        for key in range(500):
            tree.insert(key, key)
        assert 2 <= tree.depth() <= 6

    def test_node_accesses_counted(self):
        tree = BTree(order=4)
        for key in range(100):
            tree.insert(key, key)
        before = tree.node_accesses
        tree.get(57)
        assert tree.node_accesses > before


class TestDeletion:
    def test_delete_leaf_key(self):
        tree = BTree(order=4)
        for key in range(20):
            tree.insert(key, key)
        assert tree.delete(7) is True
        assert tree.get(7) == (False, None)
        assert len(tree) == 19

    def test_delete_internal_key(self):
        tree = BTree(order=4)
        for key in range(50):
            tree.insert(key, key)
        # Delete every third key, including internal separators.
        for key in range(0, 50, 3):
            assert tree.delete(key) is True
        remaining = [key for key, _ in tree.items()]
        assert remaining == [key for key in range(50) if key % 3 != 0]

    def test_delete_missing_returns_false(self):
        tree = BTree(order=4)
        tree.insert(1, 1)
        assert tree.delete(99) is False
        assert len(tree) == 1

    def test_invariants_hold_after_mixed_operations(self):
        tree = BTree(order=5)
        rng = random.Random(7)
        present = set()
        for _ in range(500):
            key = rng.randrange(200)
            if key in present and rng.random() < 0.4:
                tree.delete(key)
                present.discard(key)
            else:
                tree.insert(key, key)
                present.add(key)
        tree.check_invariants()
        assert sorted(present) == [key for key, _ in tree.items()]
