"""Property-based tests of the document store.

The central property: both storage engines are *functionally equivalent* --
for any sequence of operations they return exactly the same documents -- and
differ only in cost/footprint, which is what the paper's demo compares.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore.btree import BTree
from repro.docstore.collection import Collection
from repro.docstore.documents import document_size
from repro.docstore.matching import matches
from repro.docstore.mmapv1 import MmapV1Engine
from repro.docstore.update_ops import apply_update
from repro.docstore.wiredtiger import WiredTigerEngine

field_names = st.sampled_from(["a", "b", "c", "n"])
scalars = st.one_of(st.integers(-50, 50), st.text(alphabet="xyz", max_size=5),
                    st.booleans(), st.none())
documents = st.dictionaries(field_names, scalars, max_size=4)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), documents), min_size=1, max_size=40),
       st.integers(-50, 50))
def test_engines_are_functionally_equivalent(operations, threshold):
    """wiredTiger and mmapv1 must return identical query results."""
    wired = Collection("c", WiredTigerEngine())
    mmap = Collection("c", MmapV1Engine())
    live_ids: set[str] = set()
    for key, payload in operations:
        doc_id = f"d{key}"
        document = {"_id": doc_id, **payload}
        if doc_id in live_ids:
            if key % 3 == 0:
                wired.delete_one({"_id": doc_id})
                mmap.delete_one({"_id": doc_id})
                live_ids.discard(doc_id)
            else:
                wired.update_one({"_id": doc_id}, {"$set": payload})
                mmap.update_one({"_id": doc_id}, {"$set": payload})
        else:
            wired.insert_one(dict(document))
            mmap.insert_one(dict(document))
            live_ids.add(doc_id)

    def snapshot(collection):
        return sorted((doc["_id"], sorted(doc.items(), key=lambda kv: (kv[0], str(kv[1]))))
                      for doc in collection.find().to_list())

    assert snapshot(wired) == snapshot(mmap)
    query = {"n": {"$gt": threshold}}
    assert (sorted(d["_id"] for d in wired.find(query))
            == sorted(d["_id"] for d in mmap.find(query)))
    assert wired.count_documents() == mmap.count_documents() == len(live_ids)


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(0, 500), min_size=1, max_size=120))
def test_btree_behaves_like_sorted_dict(keys):
    tree = BTree(order=8)
    reference: dict[int, int] = {}
    for key in keys:
        tree.insert(key, key * 2)
        reference[key] = key * 2
    tree.check_invariants()
    assert len(tree) == len(reference)
    assert [key for key, _ in tree.items()] == sorted(reference)
    for key in reference:
        assert tree.get(key) == (True, reference[key])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 100), min_size=1, max_size=80),
       st.lists(st.integers(0, 100), max_size=40))
def test_btree_deletion_preserves_remaining_keys(inserts, deletes):
    tree = BTree(order=6)
    for key in inserts:
        tree.insert(key, key)
    expected = set(inserts)
    for key in deletes:
        removed = tree.delete(key)
        assert removed == (key in expected)
        expected.discard(key)
    tree.check_invariants()
    assert [key for key, _ in tree.items()] == sorted(expected)


@settings(max_examples=80, deadline=None)
@given(documents, st.dictionaries(field_names, st.integers(-10, 10), min_size=1, max_size=3))
def test_set_then_match_roundtrip(base, updates):
    """After ``$set`` of values, an equality query on them must match."""
    document = {"_id": "x", **base}
    updated = apply_update(document, {"$set": updates})
    assert matches(updated, dict(updates))
    assert updated["_id"] == "x"


@settings(max_examples=80, deadline=None)
@given(documents)
def test_document_size_positive_and_monotone(base):
    document = {"_id": "x", **base}
    size = document_size(document)
    assert size > 0
    grown = dict(document)
    grown["extra_field"] = "y" * 100
    assert document_size(grown) > size


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(field_names, st.integers(-20, 20)), min_size=1, max_size=8))
def test_inc_accumulates_like_plain_addition(increments):
    document = {"_id": "x"}
    expected: dict[str, int] = {}
    for field, amount in increments:
        document = apply_update(document, {"$inc": {field: amount}})
        expected[field] = expected.get(field, 0) + amount
    for field, total in expected.items():
        assert document[field] == total
