"""Tests for document validation, path handling and size accounting."""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore.documents import (
    clone_document,
    document_size,
    freeze_document,
    get_path,
    measure_document,
    new_object_id,
    set_path,
    unset_path,
    validate_document,
    with_id,
)
from repro.errors import DocumentStoreError


class TestValidation:
    def test_accepts_json_like_documents(self):
        doc = {"a": 1, "b": [1, "x", None], "c": {"nested": True}}
        assert validate_document(doc) is doc

    def test_rejects_non_dict(self):
        with pytest.raises(DocumentStoreError):
            validate_document([1, 2])

    def test_rejects_dollar_fields(self):
        with pytest.raises(DocumentStoreError):
            validate_document({"$set": 1})

    def test_rejects_non_string_keys(self):
        with pytest.raises(DocumentStoreError):
            validate_document({"a": {1: "x"}})

    def test_rejects_unsupported_types(self):
        with pytest.raises(DocumentStoreError):
            validate_document({"a": object()})


class TestIds:
    def test_new_object_ids_unique(self):
        assert new_object_id() != new_object_id()

    def test_with_id_preserves_existing(self):
        assert with_id({"_id": "custom", "a": 1})["_id"] == "custom"

    def test_with_id_generates_when_missing(self):
        doc = with_id({"a": 1})
        assert doc["_id"].startswith("oid-")
        assert "_id" not in {"a": 1}  # original untouched


class TestDocumentSize:
    def test_size_grows_with_content(self):
        small = document_size({"a": "x"})
        large = document_size({"a": "x" * 1000})
        assert large > small + 900

    def test_size_of_nested_structures(self):
        assert document_size({"a": [1, 2, 3]}) > document_size({"a": []})

    def test_size_rejects_unknown_types(self):
        with pytest.raises(DocumentStoreError):
            document_size({"a": object()})


_walker_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
_walker_values = st.recursive(
    _walker_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(alphabet="abcxyz_", min_size=1, max_size=6),
                        children, max_size=4),
    ),
    max_leaves=12,
)
_walker_documents = st.dictionaries(
    st.text(alphabet="abcxyz_", min_size=1, max_size=6), _walker_values,
    max_size=5,
)


class TestWalkerAgreement:
    """``documents.py`` holds several single-walk combinations of the
    validate/copy/size semantics; this pins them all to ``document_size`` and
    ``validate_document`` so an edit to one walker cannot silently skew the
    others (engines mix their outputs: inserts store freeze sizes, updates
    store measure sizes)."""

    @settings(max_examples=150, deadline=None)
    @given(_walker_documents)
    def test_freeze_measure_and_size_agree(self, document):
        frozen, freeze_size = freeze_document(document)
        assert frozen == document
        assert freeze_size == document_size(document)
        assert measure_document(document) == freeze_size
        assert measure_document(frozen) == freeze_size
        cloned = clone_document(frozen)
        assert cloned == frozen
        assert document_size(cloned) == freeze_size

    def test_freeze_shares_nothing_mutable(self):
        document = {"a": {"b": [1, {"c": 2}]}, "d": [3]}
        frozen, __ = freeze_document(document)
        document["a"]["b"][1]["c"] = 99
        document["d"].append(4)
        assert frozen == {"a": {"b": [1, {"c": 2}]}, "d": [3]}

    @pytest.mark.parametrize("bad", [
        {"$top": 1},
        {"nested": {"$op": 1}},
        {"a": object()},
        {"a": [object()]},
    ])
    def test_freeze_and_measure_reject_like_validate(self, bad):
        with pytest.raises(DocumentStoreError):
            validate_document(bad)
        with pytest.raises(DocumentStoreError):
            freeze_document(bad)
        with pytest.raises(DocumentStoreError):
            measure_document(bad)


class TestPaths:
    def test_get_path_simple_and_nested(self):
        doc = {"a": {"b": {"c": 5}}, "arr": [10, 20]}
        assert get_path(doc, "a.b.c") == (True, 5)
        assert get_path(doc, "arr.1") == (True, 20)
        assert get_path(doc, "a.missing") == (False, None)
        assert get_path(doc, "a.b.c.d") == (False, None)

    def test_set_path_creates_intermediates(self):
        doc = {}
        set_path(doc, "a.b.c", 1)
        assert doc == {"a": {"b": {"c": 1}}}

    def test_set_path_in_list(self):
        doc = {"arr": [1]}
        set_path(doc, "arr.2", 9)
        assert doc["arr"] == [1, None, 9]

    def test_set_path_on_scalar_raises(self):
        with pytest.raises(DocumentStoreError):
            set_path({"a": 5}, "a.b", 1)

    def test_unset_path(self):
        doc = {"a": {"b": 1, "c": 2}}
        assert unset_path(doc, "a.b") is True
        assert doc == {"a": {"c": 2}}
        assert unset_path(doc, "a.missing") is False
