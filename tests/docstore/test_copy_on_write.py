"""Copy-on-write safety: external mutation can never corrupt stored state.

The hot-path overhaul removed every defensive ``deepcopy`` from the engines;
safety now rests on two invariants this suite pins down:

* the **write boundary** freezes one canonical copy per write, so mutating a
  document *after* handing it to ``insert`` cannot change the store, and
* the **client surface** (``find`` / ``find_one`` / cursor iteration /
  ``find_with_cost`` on a :class:`~repro.docstore.client.CollectionHandle`)
  returns defensive copies, so mutating a returned document -- however deeply
  -- cannot change stored data, secondary-index entries, oplog post-images or
  replicated members, on any deployment shape.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore.client import DocumentClient
from repro.docstore.replication.replica_set import ReplicaSet
from repro.docstore.server import DocumentServer
from repro.docstore.sharding.cluster import ShardedCluster
from repro.docstore.topology import TopologySpec, build_topology


def _make_documents(count: int) -> list[dict]:
    return [
        {"_id": f"user{index:04d}", "category": f"cat{index % 5}",
         "n": index, "nested": {"tags": [index, f"t{index}"], "flag": index % 2 == 0}}
        for index in range(count)
    ]


def _mutate_deeply(document: dict) -> None:
    """Trash every mutable layer of a returned document."""
    document["category"] = "corrupted"
    document["n"] = -999
    document["injected"] = {"evil": True}
    nested = document.get("nested")
    if isinstance(nested, dict):
        nested["flag"] = "corrupted"
        tags = nested.get("tags")
        if isinstance(tags, list):
            tags.append("corrupted")
            if tags:
                tags[0] = "corrupted"


def _canonical(documents: list[dict]) -> list[tuple]:
    return sorted((str(doc["_id"]), repr(sorted(doc.items()))) for doc in documents)


DEPLOYMENTS = {
    "standalone": TopologySpec(),
    "sharded": TopologySpec(shards=3, shard_key="_id"),
    "replica_set": TopologySpec(replicas=3, write_concern="majority"),
    "replicated_cluster": TopologySpec(shards=2, replicas=3,
                                       write_concern="majority"),
}


@pytest.fixture(params=sorted(DEPLOYMENTS), name="deployment")
def deployment_fixture(request):
    return request.param, build_topology(DEPLOYMENTS[request.param])


class TestClientSurfaceIsolation:
    """Mutating documents returned by the client surface changes nothing."""

    def _loaded_handle(self, server, count: int = 40):
        client = DocumentClient(server)
        handle = client.collection("db", "users")
        handle.insert_many(_make_documents(count))
        handle.create_index("category")
        return handle

    def test_find_results_are_isolated(self, deployment):
        __, server = deployment
        handle = self._loaded_handle(server)
        baseline = _canonical(handle.find({}))
        for document in handle.find({}):
            _mutate_deeply(document)
        assert _canonical(handle.find({})) == baseline

    def test_find_one_and_find_with_cost_are_isolated(self, deployment):
        __, server = deployment
        handle = self._loaded_handle(server)
        baseline = _canonical(handle.find({}))
        _mutate_deeply(handle.find_one({"_id": "user0003"}))
        for document in handle.find_with_cost({"category": "cat1"}).documents:
            _mutate_deeply(document)
        for document in handle.find_with_cost({"_id": {"$gte": "user0010"}},
                                              limit=5).documents:
            _mutate_deeply(document)
        assert _canonical(handle.find({})) == baseline

    def test_index_entries_survive_mutation(self, deployment):
        """Queries through the secondary index still see the original values."""
        __, server = deployment
        handle = self._loaded_handle(server)
        expected = sorted(doc["_id"] for doc in handle.find({"category": "cat2"}))
        for document in handle.find({"category": "cat2"}):
            _mutate_deeply(document)
        assert sorted(doc["_id"] for doc in handle.find({"category": "cat2"})) == expected
        assert handle.find({"category": "corrupted"}) == []


class TestCursorIsolation:
    def test_cursor_iteration_returns_copies(self):
        server = DocumentServer()
        collection = server.database("db").collection("users")
        collection.insert_many(_make_documents(20))
        baseline = _canonical([doc for doc in collection.find({})])
        for document in collection.find({"n": {"$gte": 0}}).sort("n").limit(10):
            _mutate_deeply(document)
        assert _canonical([doc for doc in collection.find({})]) == baseline

    def test_find_one_returns_copy(self):
        server = DocumentServer()
        collection = server.database("db").collection("users")
        collection.insert_many(_make_documents(5))
        _mutate_deeply(collection.find_one({"_id": "user0001"}))
        fresh = collection.find_one({"_id": "user0001"})
        assert fresh["category"] == "cat1"
        assert fresh["nested"]["tags"] == [1, "t1"]


class TestWriteBoundaryIsolation:
    def test_mutating_inserted_document_after_insert(self):
        """The write boundary froze its own copy: the caller's object is dead."""
        server = DocumentServer()
        collection = server.database("db").collection("users")
        original = {"_id": "a", "nested": {"tags": [1, 2]}, "n": 1}
        collection.insert_one(original)
        original["n"] = -1
        original["nested"]["tags"].append("corrupted")
        stored = collection.find_one({"_id": "a"})
        assert stored["n"] == 1
        assert stored["nested"]["tags"] == [1, 2]

    def test_mutating_batch_documents_after_insert_many(self):
        server = DocumentServer()
        collection = server.database("db").collection("users")
        batch = _make_documents(10)
        collection.insert_many(batch)
        for document in batch:
            _mutate_deeply(document)
        assert collection.count_documents({"category": "corrupted"}) == 0
        assert collection.count_documents({}) == 10


class TestReplicationIsolation:
    def test_oplog_post_images_survive_client_mutation(self):
        replica_set = ReplicaSet(members=3, write_concern="majority")
        client = DocumentClient(replica_set)
        handle = client.collection("db", "users")
        handle.insert_many(_make_documents(15))
        handle.update_one({"_id": "user0003"}, {"$set": {"n": 1000}})
        for document in handle.find({}):
            _mutate_deeply(document)
        for entry in replica_set.oplog:
            if entry.document is not None:
                assert entry.document.get("category") != "corrupted"
                nested = entry.document.get("nested") or {}
                assert "corrupted" not in (nested.get("tags") or [])

    def test_secondaries_unaffected_by_client_mutation(self):
        replica_set = ReplicaSet(members=3, write_concern="majority")
        client = DocumentClient(replica_set)
        handle = client.collection("db", "users")
        handle.insert_many(_make_documents(15))
        for document in handle.find({}):
            _mutate_deeply(document)
        primary = replica_set.require_primary()
        for member in replica_set.members:
            if member is primary:
                continue
            docs = member.server.database("db").collection("users") \
                .find_with_cost({}).documents
            assert all(doc["category"].startswith("cat") for doc in docs)


class TestShardedIsolation:
    def test_router_merge_documents_are_isolated(self):
        cluster = ShardedCluster(shards=4)
        client = DocumentClient(cluster)
        handle = client.collection("db", "users")
        handle.insert_many(_make_documents(60))
        baseline = _canonical(handle.find({}))
        # A limited multi-shard range scan exercises the router's merge path.
        for document in handle.find_with_cost({"_id": {"$gte": "user0000"}},
                                              limit=25).documents:
            _mutate_deeply(document)
        assert _canonical(handle.find({})) == baseline


operation_keys = st.integers(0, 15)
payloads = st.dictionaries(
    st.sampled_from(["category", "n", "extra"]),
    st.one_of(st.integers(-20, 20), st.text(alphabet="abc", max_size=4),
              st.lists(st.integers(0, 5), max_size=3)),
    max_size=3,
)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(operation_keys, payloads), min_size=1, max_size=25))
def test_property_client_mutation_never_leaks(operations):
    """For any CRUD mix, trashing every returned document changes nothing."""
    server = DocumentServer()
    reference = DocumentServer()
    client = DocumentClient(server)
    handle = client.collection("db", "c")
    reference_collection = reference.database("db").collection("c")
    live: set[str] = set()
    for key, payload in operations:
        doc_id = f"d{key}"
        if doc_id in live:
            handle.update_one({"_id": doc_id}, {"$set": payload})
            reference_collection.update_one({"_id": doc_id}, {"$set": payload})
        else:
            handle.insert_one({"_id": doc_id, **payload})
            reference_collection.insert_one({"_id": doc_id, **payload})
            live.add(doc_id)
        for document in handle.find({}):
            document.clear()
            document["poison"] = [object()]
    mutated = _canonical(handle.find({}))
    expected = _canonical(reference_collection.find_with_cost({}).documents)
    assert mutated == expected
