"""Tests for the query-matching language."""

from __future__ import annotations

import pytest

from repro.docstore.matching import equality_value, matches, query_fields
from repro.errors import DocumentStoreError

DOC = {
    "_id": "u1",
    "name": "alice",
    "age": 30,
    "score": 4.5,
    "tags": ["admin", "dev"],
    "address": {"city": "basel", "zip": "4051"},
    "active": True,
}


class TestEquality:
    def test_empty_query_matches_everything(self):
        assert matches(DOC, {})

    def test_simple_equality(self):
        assert matches(DOC, {"name": "alice"})
        assert not matches(DOC, {"name": "bob"})

    def test_dotted_path_equality(self):
        assert matches(DOC, {"address.city": "basel"})
        assert not matches(DOC, {"address.city": "zurich"})

    def test_array_contains_scalar(self):
        assert matches(DOC, {"tags": "admin"})
        assert not matches(DOC, {"tags": "guest"})

    def test_array_exact_match(self):
        assert matches(DOC, {"tags": ["admin", "dev"]})
        assert not matches(DOC, {"tags": ["dev", "admin"]})

    def test_missing_field_equals_none(self):
        assert matches(DOC, {"nickname": None})
        assert not matches(DOC, {"nickname": "x"})

    def test_bool_not_equal_to_int(self):
        assert not matches(DOC, {"active": 1})
        assert matches(DOC, {"active": True})


class TestComparisonOperators:
    def test_gt_gte_lt_lte(self):
        assert matches(DOC, {"age": {"$gt": 29}})
        assert matches(DOC, {"age": {"$gte": 30}})
        assert not matches(DOC, {"age": {"$lt": 30}})
        assert matches(DOC, {"age": {"$lte": 30}})

    def test_combined_range(self):
        assert matches(DOC, {"age": {"$gte": 20, "$lt": 40}})
        assert not matches(DOC, {"age": {"$gte": 20, "$lt": 30}})

    def test_ne(self):
        assert matches(DOC, {"name": {"$ne": "bob"}})
        assert not matches(DOC, {"name": {"$ne": "alice"}})

    def test_in_nin(self):
        assert matches(DOC, {"name": {"$in": ["alice", "bob"]}})
        assert not matches(DOC, {"name": {"$nin": ["alice"]}})

    def test_exists(self):
        assert matches(DOC, {"name": {"$exists": True}})
        assert matches(DOC, {"nickname": {"$exists": False}})
        assert not matches(DOC, {"nickname": {"$exists": True}})

    def test_comparison_on_missing_field_fails(self):
        assert not matches(DOC, {"missing": {"$gt": 1}})

    def test_comparison_across_types_fails(self):
        assert not matches(DOC, {"name": {"$gt": 5}})

    def test_size_and_all(self):
        assert matches(DOC, {"tags": {"$size": 2}})
        assert not matches(DOC, {"tags": {"$size": 1}})
        assert matches(DOC, {"tags": {"$all": ["dev"]}})
        assert not matches(DOC, {"tags": {"$all": ["dev", "guest"]}})

    def test_not(self):
        assert matches(DOC, {"age": {"$not": {"$gt": 40}}})
        assert not matches(DOC, {"age": {"$not": {"$gt": 20}}})

    def test_unknown_operator_raises(self):
        with pytest.raises(DocumentStoreError):
            matches(DOC, {"age": {"$regex": ".*"}})


class TestLogicalOperators:
    def test_and(self):
        assert matches(DOC, {"$and": [{"name": "alice"}, {"age": {"$gt": 20}}]})
        assert not matches(DOC, {"$and": [{"name": "alice"}, {"age": {"$gt": 40}}]})

    def test_or(self):
        assert matches(DOC, {"$or": [{"name": "bob"}, {"age": 30}]})
        assert not matches(DOC, {"$or": [{"name": "bob"}, {"age": 31}]})

    def test_nor(self):
        assert matches(DOC, {"$nor": [{"name": "bob"}, {"age": 31}]})
        assert not matches(DOC, {"$nor": [{"name": "alice"}]})

    def test_implicit_and_of_multiple_fields(self):
        assert matches(DOC, {"name": "alice", "age": 30})
        assert not matches(DOC, {"name": "alice", "age": 31})

    def test_logical_operator_requires_list(self):
        with pytest.raises(DocumentStoreError):
            matches(DOC, {"$and": {"name": "alice"}})

    def test_unknown_top_level_operator(self):
        with pytest.raises(DocumentStoreError):
            matches(DOC, {"$unknown": []})


class TestQueryIntrospection:
    def test_query_fields_collects_paths(self):
        query = {"a": 1, "$or": [{"b": 2}, {"c.d": {"$gt": 3}}]}
        assert query_fields(query) == {"a", "b", "c.d"}

    def test_equality_value_detection(self):
        assert equality_value({"a": 5}, "a") == (True, 5)
        assert equality_value({"a": {"$eq": 5}}, "a") == (True, 5)
        assert equality_value({"a": {"$in": [5]}}, "a") == (True, 5)
        assert equality_value({"a": {"$gt": 5}}, "a") == (False, None)
        assert equality_value({"b": 5}, "a") == (False, None)
