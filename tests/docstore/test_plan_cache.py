"""The planner's shape cache: hits must be invisible except in speed.

Also pins the satellite guarantees of the hot-path PR: the streaming
``count_documents`` path equals brute-force counting, and batch inserts are
cost- and state-equivalent to looped single inserts.
"""

from __future__ import annotations

import pytest

from repro.docstore.collection import Collection
from repro.docstore.matching import matches
from repro.docstore.mmapv1 import MmapV1Engine
from repro.docstore.planner import FULL_SCAN, ID_LOOKUP, INDEX_EQ, INDEX_RANGE
from repro.docstore.wiredtiger import WiredTigerEngine
from repro.errors import DuplicateKeyError


def _loaded(count: int = 256, engine_factory=WiredTigerEngine) -> Collection:
    collection = Collection("users", engine_factory())
    collection.insert_many([
        {"_id": f"user{index:05d}", "category": f"cat{index % 8}",
         "n": index, "tags": [index % 4, f"t{index % 4}"]}
        for index in range(count)
    ])
    collection.create_index("category")
    collection.create_index("n")
    return collection


# (query, limit) pairs spanning every access path, in YCSB-ish shapes.
SHAPES = [
    ({"_id": "user00042"}, None),
    ({"_id": {"$in": ["user00007"]}}, None),
    ({"category": "cat3"}, None),
    ({"category": {"$in": ["cat1", "cat5"]}}, None),
    ({"n": {"$gte": 40, "$lt": 90}}, None),
    ({"_id": {"$gte": "user00100"}}, 10),
    ({"tags": 2}, None),                      # unindexed: full scan
    ({"n": {"$gt": 200, "$lt": 100}}, None),  # contradictory: empty plan
    ({}, None),
]


class TestPlanCacheEquivalence:
    @pytest.mark.parametrize("query,limit", SHAPES)
    def test_warm_plans_equal_cold_plans(self, query, limit):
        """Re-planning a cached shape gives the same plan and same results."""
        collection = _loaded()
        variations = [query]
        if "_id" in query and isinstance(query["_id"], str):
            variations.append({"_id": "user00117"})
        for variant in variations:
            cold = collection.planner.plan(variant, limit=limit, use_cache=False)
            cold_docs = [doc["_id"] for doc in
                         collection.find_with_cost(variant, limit=limit).documents]
            warm = collection.planner.plan(variant, limit=limit)
            assert warm.access_path == cold.access_path
            assert warm.field == cold.field
            warm_docs = [doc["_id"] for doc in
                         collection.find_with_cost(variant, limit=limit).documents]
            assert warm_docs == cold_docs

    def test_cache_hits_accumulate(self):
        collection = _loaded()
        planner = collection.planner
        for index in range(20):
            collection.find_with_cost({"category": f"cat{index % 8}"})
        assert planner.cache_hits >= 19
        assert planner.cache_stats()["entries"] >= 1

    def test_same_shape_different_values_share_one_entry(self):
        collection = _loaded()
        planner = collection.planner
        before = planner.cache_stats()["entries"]
        for value in ("cat0", "cat1", "cat2", "cat3"):
            collection.find_with_cost({"category": value})
        assert planner.cache_stats()["entries"] == before + 1

    def test_results_match_brute_force_through_the_cache(self):
        """The planner differential guarantee holds across repeated cached runs."""
        collection = _loaded()
        all_documents = collection.find_with_cost({}).documents
        for __ in range(3):
            for query, limit in SHAPES:
                if limit is not None:
                    continue  # limited scans are order-dependent; skip here
                expected = sorted(str(d["_id"]) for d in all_documents
                                  if matches(d, query))
                got = sorted(str(d["_id"]) for d in
                             collection.find_with_cost(query).documents)
                assert got == expected, query


class TestPlanCacheInvalidation:
    def test_index_ddl_invalidates(self):
        collection = _loaded()
        planner = collection.planner
        query = {"n": {"$gte": 10, "$lt": 20}}
        assert planner.plan(query).access_path == INDEX_RANGE
        collection.drop_index("n")
        assert planner.cache_stats()["entries"] == 0
        plan = planner.plan(query)
        assert plan.access_path == FULL_SCAN
        collection.create_index("n")
        assert planner.plan(query).access_path == INDEX_RANGE

    def test_count_bucket_growth_forces_replanning(self):
        collection = Collection("users", WiredTigerEngine())
        collection.insert_many([{"_id": f"u{index}", "n": index}
                                for index in range(10)])
        planner = collection.planner
        planner.plan({"n": {"$gte": 3}})
        misses_before = planner.cache_misses
        # Quadruple the collection: the decision's count bucket is stale.
        collection.insert_many([{"_id": f"v{index}", "n": index}
                                for index in range(30)])
        planner.plan({"n": {"$gte": 3}})
        assert planner.cache_misses > misses_before

    def test_explain_never_consults_the_cache(self):
        collection = _loaded()
        collection.find_with_cost({"category": "cat1"})
        hits_before = collection.planner.cache_hits
        explained = collection.explain({"category": "cat1"})
        assert collection.planner.cache_hits == hits_before
        assert explained["winning_plan"]["access_path"] == INDEX_EQ
        # Cold explains still enumerate every alternative.
        assert len(explained["considered_plans"]) >= 2

    def test_id_lookup_still_wins_through_the_cache(self):
        collection = _loaded()
        for index in (3, 77, 131):
            plan = collection.planner.plan({"_id": f"user{index:05d}"})
            assert plan.access_path == ID_LOOKUP


class TestStreamingCount:
    @pytest.mark.parametrize("engine_factory", [WiredTigerEngine, MmapV1Engine])
    def test_count_matches_brute_force(self, engine_factory):
        collection = _loaded(engine_factory=engine_factory)
        documents = collection.find_with_cost({}).documents
        for query, __ in SHAPES:
            expected = sum(1 for doc in documents if matches(doc, query)) \
                if query else len(documents)
            assert collection.count_documents(query) == expected, query

    def test_count_empty_query_is_engine_count(self):
        collection = _loaded(count=17)
        assert collection.count_documents() == 17
        assert collection.count_documents({}) == 17


class TestBatchInsertEquivalence:
    @pytest.mark.parametrize("engine_factory", [WiredTigerEngine, MmapV1Engine])
    def test_batch_equals_looped_inserts(self, engine_factory):
        documents = [
            {"_id": f"user{index:04d}", "category": f"cat{index % 3}", "n": index}
            for index in range(120)
        ]
        batched = Collection("users", engine_factory())
        batched.create_index("category")
        looped = Collection("users", engine_factory())
        looped.create_index("category")

        batch_result = batched.insert_many([dict(doc) for doc in documents])
        loop_cost = 0.0
        for doc in documents:
            loop_cost += looped.insert_one(dict(doc)).simulated_seconds

        assert batch_result.inserted_ids == [doc["_id"] for doc in documents]
        assert batch_result.simulated_seconds == pytest.approx(loop_cost)
        assert batched.engine.count() == looped.engine.count()
        assert batched.engine.storage_bytes() == looped.engine.storage_bytes()
        batched_ops = batched.engine.costs.snapshot()
        looped_ops = looped.engine.costs.snapshot()
        assert batched_ops["insert"]["count"] == looped_ops["insert"]["count"]
        assert batched_ops["insert"]["seconds"] == pytest.approx(
            looped_ops["insert"]["seconds"])
        assert (batched_ops["index_maintenance"]["seconds"]
                == pytest.approx(looped_ops["index_maintenance"]["seconds"]))
        assert (sorted(d["_id"] for d in batched.find_with_cost({}).documents)
                == sorted(d["_id"] for d in looped.find_with_cost({}).documents))

    def test_batch_duplicate_ids_rejected(self):
        collection = Collection("users", WiredTigerEngine())
        with pytest.raises(DuplicateKeyError):
            collection.insert_many([{"_id": "a"}, {"_id": "a"}])
        collection.insert_one({"_id": "b"})
        with pytest.raises(DuplicateKeyError):
            collection.insert_many([{"_id": "c"}, {"_id": "b"}])

    def test_empty_batch(self):
        collection = Collection("users", WiredTigerEngine())
        result = collection.insert_many([])
        assert result.inserted_ids == []
        assert result.simulated_seconds == 0.0

    def test_failed_batch_keeps_prefix_like_looped_inserts(self):
        """Ordered-insert semantics: on error the valid prefix stays inserted
        (matching a looped insert_one and the sharded router's loop), and the
        failing document leaves no trace."""
        documents = [{"_id": "a", "n": 1}, {"_id": "b", "n": 2},
                     {"_id": "b", "n": 3}, {"_id": "c", "n": 4}]
        batched = Collection("users", WiredTigerEngine())
        with pytest.raises(DuplicateKeyError):
            batched.insert_many([dict(doc) for doc in documents])
        looped = Collection("users", WiredTigerEngine())
        with pytest.raises(DuplicateKeyError):
            for doc in documents:
                looped.insert_one(dict(doc))
        assert (sorted(d["_id"] for d in batched.find_with_cost({}).documents)
                == sorted(d["_id"] for d in looped.find_with_cost({}).documents)
                == ["a", "b"])

    def test_failed_unique_index_insert_leaves_no_phantom_entries(self):
        """A unique violation mid-batch must not leave index entries pointing
        at documents that were never stored."""
        collection = Collection("users", WiredTigerEngine())
        collection.create_index("email", unique=True)
        collection.insert_one({"_id": "existing", "email": "x@y"})
        with pytest.raises(DuplicateKeyError):
            collection.insert_many([{"_id": "a", "email": "a@y"},
                                    {"_id": "b", "email": "x@y"}])
        # The prefix document "a" persists (ordered-insert semantics).
        assert collection.count_documents({}) == 2  # existing + a (prefix)
        assert collection.find_one({"_id": "a"}) is not None
        assert collection.find_one({"_id": "b"}) is None
        # The failing document "b" left no phantom entries anywhere.
        assert [d["_id"] for d in
                collection.find_with_cost({"email": "x@y"}).documents] == ["existing"]
        collection.insert_one({"_id": "c", "email": "c@y"})
        assert collection.count_documents({}) == 3

    def test_failed_single_insert_rolls_back_partial_index_entries(self):
        collection = Collection("users", WiredTigerEngine())
        # Two indexes; "email" violates while "category" was already updated.
        collection.create_index("category")
        collection.create_index("email", unique=True)
        collection.insert_one({"_id": "one", "email": "x@y", "category": "c1"})
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"_id": "two", "email": "x@y", "category": "c1"})
        assert [d["_id"] for d in
                collection.find_with_cost({"category": "c1"}).documents] == ["one"]

    def test_fast_id_plans_are_counted(self):
        collection = _loaded(count=32)
        stats_before = collection.planner.cache_stats()["fast_id_plans"]
        for index in range(10):
            collection.find_with_cost({"_id": f"user{index:05d}"})
        assert (collection.planner.cache_stats()["fast_id_plans"]
                == stats_before + 10)
