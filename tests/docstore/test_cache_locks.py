"""Tests for the LRU cache and the lock manager."""

from __future__ import annotations

import threading

import pytest

from repro.docstore.cache import LruCache
from repro.docstore.locks import LockGranularity, LockManager


class TestLruCache:
    def test_put_and_get(self):
        cache = LruCache(1000)
        cache.put("a", 100)
        assert cache.get("a") == (True, None)
        assert cache.get("b") == (False, None)

    def test_hit_and_miss_statistics(self):
        cache = LruCache(1000)
        cache.put("a", 100)
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_eviction_respects_budget(self):
        cache = LruCache(250)
        cache.put("a", 100)
        cache.put("b", 100)
        cache.put("c", 100)  # exceeds 250 -> evict LRU ("a")
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.stats.evictions == 1
        assert cache.used_bytes <= 250

    def test_get_refreshes_recency(self):
        cache = LruCache(250)
        cache.put("a", 100)
        cache.put("b", 100)
        cache.get("a")            # "a" becomes most recent
        cache.put("c", 100)       # evicts "b", not "a"
        assert "a" in cache and "b" not in cache

    def test_put_existing_key_updates_size(self):
        cache = LruCache(1000)
        cache.put("a", 100)
        cache.put("a", 300)
        assert cache.used_bytes == 300
        assert len(cache) == 1

    def test_invalidate_and_clear(self):
        cache = LruCache(1000)
        cache.put("a", 100)
        cache.invalidate("a")
        assert cache.used_bytes == 0
        cache.put("b", 50)
        cache.clear()
        assert len(cache) == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LruCache(0)


class TestLockManager:
    def test_read_and_write_contexts(self):
        manager = LockManager(LockGranularity.DOCUMENT)
        with manager.read("doc1"):
            pass
        with manager.write("doc1"):
            pass
        assert manager.stats.acquisitions == 2
        assert manager.stats.exclusive_acquisitions == 1

    def test_document_granularity_allows_disjoint_writers(self):
        manager = LockManager(LockGranularity.DOCUMENT)
        progress = []

        def writer(doc_id: str):
            with manager.write(doc_id):
                progress.append(doc_id)

        threads = [threading.Thread(target=writer, args=(f"doc{i}",)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(progress) == 8

    def test_collection_granularity_serialises_writers(self):
        manager = LockManager(LockGranularity.COLLECTION)
        active = []
        max_active = []
        lock = threading.Lock()

        def writer(doc_id: str):
            with manager.write(doc_id):
                with lock:
                    active.append(1)
                    max_active.append(len(active))
                with lock:
                    active.pop()

        threads = [threading.Thread(target=writer, args=(f"doc{i}",)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert max(max_active) == 1  # never two writers inside the lock

    def test_concurrent_readers_allowed(self):
        manager = LockManager(LockGranularity.COLLECTION)
        barrier = threading.Barrier(4, timeout=5)
        reached = []

        def reader():
            with manager.read():
                barrier.wait()
                reached.append(1)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(reached) == 4

    def test_stats_snapshot_shape(self):
        manager = LockManager(LockGranularity.COLLECTION)
        with manager.write():
            pass
        snapshot = manager.stats.snapshot()
        assert set(snapshot) == {
            "acquisitions",
            "contentions",
            "exclusive_acquisitions",
            "wait_seconds",
        }
