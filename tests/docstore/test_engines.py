"""Tests for the two storage engines and their cost/concurrency models."""

from __future__ import annotations

import random

import pytest

from repro.docstore.collection import Collection
from repro.docstore.cost import ConcurrencyProfile, CostParameters
from repro.docstore.mmapv1 import MmapV1Engine
from repro.docstore.wiredtiger import WiredTigerEngine


def small_doc(index: int = 0) -> dict:
    return {"_id": f"d{index}", "value": "x" * 200, "n": index}


@pytest.fixture(params=[WiredTigerEngine, MmapV1Engine], ids=["wiredtiger", "mmapv1"])
def engine(request):
    return request.param()


class TestEngineContract:
    """Behaviour both engines must share."""

    def test_insert_read_roundtrip(self, engine):
        engine.insert("a", small_doc())
        document, cost = engine.read("a")
        assert document["value"] == "x" * 200
        assert cost > 0

    def test_read_returns_stored_object_without_copying(self, engine):
        # Copy-on-write contract: engines never copy.  The write boundary
        # (Collection) freezes documents before handing them over, and the
        # client surface makes the single defensive copy on the way out --
        # so the engine returns the exact stored object by reference.
        frozen = small_doc()
        engine.insert("a", frozen)
        document, _ = engine.read("a")
        assert document is frozen
        assert engine.read("a")[0] is frozen

    def test_read_missing(self, engine):
        document, cost = engine.read("missing")
        assert document is None
        assert cost > 0

    def test_update_replaces_document(self, engine):
        engine.insert("a", small_doc())
        engine.update("a", {"_id": "a", "value": "new"})
        assert engine.read("a")[0]["value"] == "new"

    def test_update_missing_raises(self, engine):
        with pytest.raises(KeyError):
            engine.update("missing", small_doc())

    def test_delete(self, engine):
        engine.insert("a", small_doc())
        engine.delete("a")
        assert engine.read("a")[0] is None
        assert engine.count() == 0

    def test_delete_missing_raises(self, engine):
        with pytest.raises(KeyError):
            engine.delete("missing")

    def test_scan_returns_all_documents(self, engine):
        for index in range(10):
            engine.insert(f"d{index}", small_doc(index))
        scanned = {record_id for record_id, _, _ in engine.scan()}
        assert scanned == {f"d{index}" for index in range(10)}

    def test_costs_are_accumulated(self, engine):
        engine.insert("a", small_doc())
        engine.read("a")
        assert engine.costs.total_seconds > 0
        assert engine.costs.counts["insert"] == 1

    def test_storage_bytes_grow_with_data(self, engine):
        before = engine.storage_bytes()
        for index in range(20):
            engine.insert(f"d{index}", small_doc(index))
        assert engine.storage_bytes() > before

    def test_statistics_shape(self, engine):
        engine.insert("a", small_doc())
        stats = engine.statistics()
        assert stats["documents"] == 1
        assert stats["engine"] in ("wiredtiger", "mmapv1")
        assert "locks" in stats and "operations" in stats

    def test_index_maintenance_cost(self, engine):
        assert engine.index_maintenance_cost(0) == 0.0
        assert engine.index_maintenance_cost(3) > 0.0


class TestWiredTigerSpecifics:
    def test_compression_reduces_footprint_vs_mmapv1(self):
        wired, mmap = WiredTigerEngine(), MmapV1Engine()
        for index in range(50):
            wired.insert(f"d{index}", small_doc(index))
            mmap.insert(f"d{index}", small_doc(index))
        assert wired.storage_bytes() < mmap.statistics()["allocated_bytes"]

    def test_cache_hit_makes_second_read_cheaper(self):
        engine = WiredTigerEngine(cache_bytes=1024 * 1024)
        engine.insert("a", small_doc())
        # Evict from cache by clearing it to force a disk read first.
        engine._cache.clear()
        _, cold = engine.read("a")
        _, warm = engine.read("a")
        assert warm < cold

    def test_invalid_compression_ratio_rejected(self):
        with pytest.raises(ValueError):
            WiredTigerEngine(compression_ratio=0.0)

    def test_document_level_concurrency_profile(self):
        profile = WiredTigerEngine.concurrency
        assert profile.serial_write_fraction < 0.2
        assert profile.speedup(8, write_ratio=0.5) > 4.0

    def test_statistics_include_cache_and_depth(self):
        engine = WiredTigerEngine()
        engine.insert("a", small_doc())
        stats = engine.statistics()
        assert "cache" in stats and "btree_depth" in stats


class TestMmapV1Specifics:
    def test_padding_allows_in_place_growth(self):
        engine = MmapV1Engine(padding_factor=2.0)
        engine.insert("a", small_doc())
        engine.update("a", {"_id": "a", "value": "x" * 250, "n": 0})
        assert engine.statistics()["document_moves"] == 0

    def test_outgrowing_padding_moves_document(self):
        engine = MmapV1Engine(padding_factor=1.1)
        engine.insert("a", small_doc())
        engine.update("a", {"_id": "a", "value": "x" * 5000, "n": 0})
        assert engine.statistics()["document_moves"] == 1

    def test_document_move_costs_more_than_in_place(self):
        generous = MmapV1Engine(padding_factor=3.0)
        tight = MmapV1Engine(padding_factor=1.05)
        for engine in (generous, tight):
            engine.insert("a", small_doc())
        in_place = generous.update("a", {"_id": "a", "value": "y" * 210, "n": 0})
        moved = tight.update("a", {"_id": "a", "value": "y" * 2000, "n": 0})
        assert moved > in_place

    def test_collection_level_concurrency_profile(self):
        profile = MmapV1Engine.concurrency
        assert profile.serial_write_fraction > 0.8
        assert profile.speedup(8, write_ratio=1.0) < 2.0

    def test_extents_grow_geometrically(self):
        engine = MmapV1Engine()
        for index in range(200):
            engine.insert(f"d{index}", small_doc(index))
        stats = engine.statistics()
        assert stats["extents"] >= 2
        assert engine.storage_bytes() >= stats["allocated_bytes"]

    def test_page_faults_appear_when_memory_exceeded(self):
        small_memory = MmapV1Engine(memory_bytes=10_000)
        large_memory = MmapV1Engine(memory_bytes=100_000_000)
        for engine in (small_memory, large_memory):
            for index in range(100):
                engine.insert(f"d{index}", small_doc(index))
        _, constrained = small_memory.read("d50")
        _, unconstrained = large_memory.read("d50")
        assert constrained > unconstrained

    def test_invalid_padding_rejected(self):
        with pytest.raises(ValueError):
            MmapV1Engine(padding_factor=0.9)

    def test_duplicate_insert_rejected(self):
        engine = MmapV1Engine()
        engine.insert("a", small_doc())
        with pytest.raises(KeyError):
            engine.insert("a", small_doc())

    def test_storage_bytes_running_total_matches_sum(self):
        """The O(1) running footprint equals the summed extent capacities
        under an insert/update/delete churn (including document moves)."""
        engine = MmapV1Engine(padding_factor=1.2)
        for index in range(150):
            engine.insert(f"d{index}", small_doc(index))
        for index in range(0, 150, 3):
            engine.update(f"d{index}",
                          {"_id": f"d{index}", "value": "y" * (300 + index * 7),
                           "n": index})
        for index in range(0, 150, 5):
            engine.delete(f"d{index}")
        for index in range(150, 220):
            engine.insert(f"d{index}", small_doc(index))
        assert engine.storage_bytes() == sum(engine._extent_capacity)
        assert engine.statistics()["storage_bytes"] == sum(engine._extent_capacity)

    def test_free_space_hint_reuses_freed_extent_space(self):
        """Deleting records raises the hint so first-fit reuse still happens."""
        engine = MmapV1Engine()
        for index in range(300):
            engine.insert(f"d{index}", small_doc(index))
        extents_before = len(engine._extent_capacity)
        # Free a chunk of early records, then insert same-sized ones: they
        # must land in the freed space instead of growing new extents.
        for index in range(100):
            engine.delete(f"d{index}")
        for index in range(100):
            engine.insert(f"r{index}", small_doc(index))
        assert len(engine._extent_capacity) == extents_before
        assert engine.storage_bytes() == sum(engine._extent_capacity)


class TestEngineDifferential:
    """Both engines must be operationally equivalent: same documents, same
    counts for any operation sequence -- only the simulated costs differ."""

    @staticmethod
    def run_sequence(engine, seed: int = 17):
        """A seeded CRUD mix; returns (sorted documents, operation outcomes)."""
        collection = Collection("diff", engine)
        rng = random.Random(seed)
        outcomes = []
        inserted = 0
        for step in range(400):
            roll = rng.random()
            key = f"d{rng.randrange(max(inserted, 1))}"
            if roll < 0.35 or inserted < 5:
                result = collection.insert_one(
                    {"_id": f"d{inserted}", "n": inserted,
                     "payload": "x" * rng.randrange(50, 400),
                     "category": f"c{inserted % 4}"})
                outcomes.append(("insert", tuple(result.inserted_ids)))
                inserted += 1
            elif roll < 0.55:
                result = collection.update_one(
                    {"_id": key}, {"$set": {"payload": "y" * rng.randrange(50, 800)}})
                outcomes.append(("update", result.matched_count, result.modified_count))
            elif roll < 0.65:
                result = collection.update_many({"category": f"c{rng.randrange(4)}"},
                                                {"$inc": {"n": 1}})
                outcomes.append(("update_many", result.matched_count,
                                 result.modified_count))
            elif roll < 0.75:
                result = collection.delete_one({"_id": key})
                outcomes.append(("delete", result.deleted_count))
            elif roll < 0.85:
                documents = collection.find_with_cost(
                    {"category": f"c{rng.randrange(4)}"}).documents
                outcomes.append(("find", sorted(d["_id"] for d in documents)))
            else:
                outcomes.append(("count", collection.count_documents()))
            if step == 100:
                outcomes.append(("index", collection.create_index("category")))
        documents = sorted(collection.find_with_cost({}).documents,
                           key=lambda document: document["_id"])
        return documents, outcomes

    def test_seeded_sequence_yields_identical_state_and_outcomes(self):
        wired_docs, wired_outcomes = self.run_sequence(WiredTigerEngine())
        mmap_docs, mmap_outcomes = self.run_sequence(MmapV1Engine())
        assert wired_outcomes == mmap_outcomes
        assert wired_docs == mmap_docs

    def test_costs_differ_while_state_matches(self):
        wired, mmap = WiredTigerEngine(), MmapV1Engine()
        self.run_sequence(wired)
        self.run_sequence(mmap)
        assert wired.count() == mmap.count()
        assert wired.costs.total_seconds != mmap.costs.total_seconds


class TestConcurrencyProfile:
    def test_single_thread_is_never_scaled(self):
        profile = ConcurrencyProfile(0.5, 0.1, 0.9)
        assert profile.speedup(1, 0.5) == 1.0

    def test_speedup_bounded_by_thread_count(self):
        profile = ConcurrencyProfile(0.0, 0.0, 1.0)
        assert profile.speedup(8, 0.0) <= 8.0

    def test_fully_serial_workload_does_not_scale(self):
        profile = ConcurrencyProfile(1.0, 1.0, 1.0)
        assert profile.speedup(16, 1.0) == 1.0

    def test_read_heavy_scales_better_than_write_heavy_for_mmap(self):
        profile = MmapV1Engine.concurrency
        assert profile.speedup(8, write_ratio=0.05) > profile.speedup(8, write_ratio=0.95)


class TestCostParameters:
    def test_parameters_can_be_overridden(self):
        slow_disk = CostParameters(disk_write_per_kb=1e-3)
        default = WiredTigerEngine()
        slow = WiredTigerEngine(parameters=slow_disk)
        default_cost = default.insert("a", small_doc())
        slow_cost = slow.insert("a", small_doc())
        assert slow_cost > default_cost
