"""Tests for the query planner: access paths, explain, and a randomized
differential check against brute-force matching."""

from __future__ import annotations

import random

import pytest

from repro.docstore.collection import Collection
from repro.docstore.indexes import OrderedSecondaryIndex
from repro.docstore.matching import matches
from repro.docstore.mmapv1 import MmapV1Engine
from repro.docstore.planner import FULL_SCAN, ID_LOOKUP, INDEX_EQ, INDEX_RANGE
from repro.docstore.wiredtiger import WiredTigerEngine


@pytest.fixture(params=[WiredTigerEngine, MmapV1Engine], ids=["wiredtiger", "mmapv1"])
def collection(request) -> Collection:
    return Collection("users", request.param())


def load(collection: Collection, count: int = 40) -> None:
    collection.insert_many([
        {"_id": f"u{index:04d}", "n": index, "name": f"user{index}",
         "category": f"c{index % 4}"}
        for index in range(count)
    ])


class TestAccessPathSelection:
    def test_id_equality_uses_id_lookup(self, collection):
        load(collection)
        plan = collection.planner.plan({"_id": "u0003"})
        assert plan.access_path == ID_LOOKUP
        assert plan.candidate_ids == ["u0003"]

    def test_indexed_equality_uses_index_eq(self, collection):
        load(collection)
        collection.create_index("category")
        plan = collection.planner.plan({"category": "c1"})
        assert plan.access_path == INDEX_EQ
        assert len(plan.candidate_ids) == 10

    def test_in_on_indexed_field_uses_index_eq(self, collection):
        load(collection)
        collection.create_index("category")
        plan = collection.planner.plan({"category": {"$in": ["c1", "c2"]}})
        assert plan.access_path == INDEX_EQ
        assert len(plan.candidate_ids) == 20

    def test_range_on_indexed_field_uses_index_range(self, collection):
        load(collection)
        collection.create_index("n")
        plan = collection.planner.plan({"n": {"$gte": 10, "$lt": 20}})
        assert plan.access_path == INDEX_RANGE
        assert len(plan.materialize()) == 10

    def test_range_on_id_uses_the_primary_ordered_index(self, collection):
        load(collection)
        plan = collection.planner.plan({"_id": {"$gte": "u0030"}})
        assert plan.access_path == INDEX_RANGE
        assert plan.field == "_id"
        assert len(plan.materialize()) == 10

    def test_unindexed_query_falls_back_to_full_scan(self, collection):
        load(collection)
        plan = collection.planner.plan({"n": {"$gte": 10}})
        assert plan.access_path == FULL_SCAN
        assert len(plan.materialize()) == 40

    def test_contradictory_range_examines_nothing(self, collection):
        load(collection)
        collection.create_index("n")
        plan = collection.planner.plan({"n": {"$gt": 30, "$lt": 10}})
        assert plan.access_path == INDEX_RANGE
        assert plan.candidate_ids == []

    def test_none_equality_never_uses_an_index(self, collection):
        # {"name": None} also matches documents missing the field, which the
        # index cannot see: the planner must fall back to a full scan.
        load(collection)
        collection.create_index("name")
        collection.insert_one({"_id": "missing-name"})
        plan = collection.planner.plan({"name": None})
        assert plan.access_path == FULL_SCAN
        result = collection.find_with_cost({"name": None})
        assert [doc["_id"] for doc in result.documents] == ["missing-name"]

    def test_limit_caps_index_scan_reads(self, collection):
        load(collection)
        limited = collection.find_with_cost({"_id": {"$gte": "u0000"}}, limit=5)
        unlimited = collection.find_with_cost({"_id": {"$gte": "u0000"}})
        assert len(limited.documents) == 5
        assert limited.simulated_seconds < unlimited.simulated_seconds
        # The limited scan returns the *first* documents in key order.
        assert [doc["_id"] for doc in limited.documents] == [
            f"u{index:04d}" for index in range(5)]

    def test_cursor_limit_is_pushed_into_the_planner(self, collection):
        load(collection)
        documents = collection.find({"_id": {"$gte": "u0010"}}).limit(3).to_list()
        assert [doc["_id"] for doc in documents] == ["u0010", "u0011", "u0012"]


class TestIndexMaintenance:
    def test_range_index_follows_updates_and_deletes(self, collection):
        load(collection)
        collection.create_index("n")
        collection.update_one({"_id": "u0005"}, {"$set": {"n": 999}})
        plan = collection.planner.plan({"n": {"$gte": 900}})
        assert plan.access_path == INDEX_RANGE
        assert plan.materialize() == ["u0005"]
        collection.delete_one({"_id": "u0005"})
        assert collection.planner.plan({"n": {"$gte": 900}}).materialize() == []

    def test_id_range_follows_deletes(self, collection):
        load(collection, 10)
        collection.delete_many({"_id": {"$gte": "u0005"}})
        assert collection.count_documents() == 5
        assert collection.find_with_cost({"_id": {"$gte": "u0005"}}).documents == []

    def test_multikey_equality_finds_array_elements(self, collection):
        collection.create_index("tags")
        collection.insert_one({"_id": "a", "tags": ["red", "blue"]})
        collection.insert_one({"_id": "b", "tags": "red"})
        collection.insert_one({"_id": "c", "tags": ["green"]})
        plan = collection.planner.plan({"tags": "red"})
        assert plan.access_path == INDEX_EQ
        assert plan.candidate_ids == ["a", "b"]
        result = collection.find_with_cost({"tags": "red"})
        assert sorted(doc["_id"] for doc in result.documents) == ["a", "b"]

    def test_multikey_conjunction_of_points_not_lost(self, collection):
        # {"a": [1, 5]} matches both point constraints via different array
        # elements; the planner must not treat them as contradictory.
        collection.create_index("a")
        collection.insert_one({"_id": "x", "a": [1, 5]})
        for query in ({"$and": [{"a": 1}, {"a": 5}]},
                      {"a": {"$eq": 1, "$in": [5]}}):
            result = collection.find_with_cost(query)
            assert [doc["_id"] for doc in result.documents] == ["x"], query


class TestExplain:
    def test_explain_reports_the_winning_plan(self, collection):
        load(collection)
        collection.create_index("n")
        explanation = collection.explain({"n": {"$gte": 10, "$lt": 20}})
        assert explanation["winning_plan"]["access_path"] == INDEX_RANGE
        assert explanation["winning_plan"]["field"] == "n"
        assert explanation["documents"] == 40
        considered = {plan["access_path"] for plan in explanation["considered_plans"]}
        assert FULL_SCAN in considered

    def test_explain_estimates_order_paths_correctly(self, collection):
        load(collection)
        collection.create_index("n")
        explanation = collection.explain({"n": {"$gte": 35}})
        by_path = {plan["access_path"]: plan
                   for plan in explanation["considered_plans"]}
        assert (by_path[INDEX_RANGE]["estimated_cost"]
                < by_path[FULL_SCAN]["estimated_cost"])


class TestAcceptance:
    """The PR's acceptance criterion, on >= 1k documents."""

    N = 1200

    def _loaded(self, indexed: bool) -> Collection:
        collection = Collection("big", WiredTigerEngine())
        collection.insert_many([
            {"_id": f"d{index:05d}", "n": index} for index in range(self.N)
        ])
        if indexed:
            collection.create_index("n")
        return collection

    def test_range_query_examines_only_index_range_candidates(self):
        collection = self._loaded(indexed=True)
        query = {"n": {"$gte": 100, "$lt": 160}}
        explanation = collection.explain(query)
        assert explanation["winning_plan"]["access_path"] == INDEX_RANGE
        assert explanation["winning_plan"]["candidates_examined"] == 60

    def test_index_range_is_strictly_cheaper_than_full_scan(self):
        query = {"n": {"$gte": 100, "$lt": 160}}
        indexed = self._loaded(indexed=True)
        unindexed = self._loaded(indexed=False)
        explanation = indexed.explain(query)
        by_path = {plan["access_path"]: plan
                   for plan in explanation["considered_plans"]}
        assert (by_path[INDEX_RANGE]["estimated_cost"]
                < by_path[FULL_SCAN]["estimated_cost"])
        # And the actually-charged simulated cost agrees with the estimate.
        indexed_cost = indexed.find_with_cost(query).simulated_seconds
        scan_cost = unindexed.find_with_cost(query).simulated_seconds
        assert indexed_cost < scan_cost
        assert unindexed.planner.plan(query).access_path == FULL_SCAN


class TestDifferential:
    """Planner-backed find must agree exactly with brute-force matches()."""

    FIELDS = ["a", "b", "c"]
    VALUES = [None, True, False, -5, 0, 3, 7, 7.5, "k", "p", "z",
              [3, "k"], ["p"], [True, 0]]

    def _random_document(self, rng: random.Random, index: int) -> dict:
        document = {"_id": f"doc{index:04d}"}
        for field in self.FIELDS:
            if rng.random() < 0.8:
                document[field] = rng.choice(self.VALUES)
        return document

    def _random_query(self, rng: random.Random) -> dict:
        query = {}
        for field in rng.sample(self.FIELDS + ["_id"], rng.randint(1, 2)):
            shape = rng.random()
            if field == "_id":
                value = f"doc{rng.randrange(120):04d}"
                query[field] = (value if shape < 0.5
                                else {"$gte": value} if shape < 0.75
                                else {"$lt": value})
                continue
            if shape < 0.25:
                query[field] = rng.choice(self.VALUES)
            elif shape < 0.4:
                query[field] = {"$in": rng.sample(self.VALUES, rng.randint(1, 3))}
            elif shape < 0.5:
                # Conjoined point constraints: arrays may satisfy each
                # through a different element.
                query[field] = {"$eq": rng.choice(self.VALUES),
                                "$in": rng.sample(self.VALUES, rng.randint(1, 2))}
            elif shape < 0.8:
                operators = rng.sample(["$gt", "$gte", "$lt", "$lte"],
                                       rng.randint(1, 2))
                query[field] = {op: rng.choice(self.VALUES[1:11])
                                for op in operators}
            else:
                query[field] = {"$ne": rng.choice(self.VALUES)}
        return query

    @pytest.mark.parametrize("indexed", [False, True], ids=["unindexed", "indexed"])
    @pytest.mark.parametrize("engine_class", [WiredTigerEngine, MmapV1Engine],
                             ids=["wiredtiger", "mmapv1"])
    def test_planner_results_match_brute_force(self, engine_class, indexed):
        rng = random.Random(1234 if indexed else 4321)
        collection = Collection("diff", engine_class())
        if indexed:
            for field in self.FIELDS:
                collection.create_index(field)
        documents = [self._random_document(rng, index) for index in range(120)]
        collection.insert_many(documents)

        brute = {str(doc["_id"]): doc for doc in documents}
        for __ in range(150):
            query = self._random_query(rng)
            expected = sorted(
                (record_id for record_id, doc in brute.items()
                 if matches(doc, query)))
            result = collection.find_with_cost(query)
            actual = sorted(str(doc["_id"]) for doc in result.documents)
            assert actual == expected, (query, indexed)

    def test_index_backed_queries_match_after_mutations(self):
        rng = random.Random(99)
        collection = Collection("diff", WiredTigerEngine())
        collection.create_index("a")
        brute: dict[str, dict] = {}
        for index in range(200):
            roll = rng.random()
            if roll < 0.6 or not brute:
                document = self._random_document(rng, index)
                if str(document["_id"]) in brute:
                    continue
                collection.insert_one(document)
                brute[str(document["_id"])] = document
            elif roll < 0.8:
                target = rng.choice(sorted(brute))
                new_value = rng.choice(self.VALUES)
                collection.update_one({"_id": target}, {"$set": {"a": new_value}})
                brute[target] = {**brute[target], "a": new_value}
            else:
                target = rng.choice(sorted(brute))
                collection.delete_one({"_id": target})
                del brute[target]
            query = self._random_query(rng)
            expected = sorted(record_id for record_id, doc in brute.items()
                              if matches(doc, query))
            actual = sorted(str(doc["_id"])
                            for doc in collection.find_with_cost(query).documents)
            assert actual == expected, query


class TestOrderedIndexUnit:
    def test_range_scan_returns_only_window_entries(self):
        index = OrderedSecondaryIndex("n")
        for value in range(100):
            index.add(f"r{value:03d}", {"n": value})
        from repro.docstore.predicates import Interval

        ids, accesses = index.range_scan(Interval(10, 20, True, False))
        assert ids == [f"r{value:03d}" for value in range(10, 20)]
        assert accesses > 0

    def test_range_scan_is_type_segregated(self):
        index = OrderedSecondaryIndex("v")
        index.add("num", {"v": 5})
        index.add("text", {"v": "5"})
        index.add("flag", {"v": True})
        from repro.docstore.predicates import Interval

        ids, __ = index.range_scan(Interval(low=0, low_inclusive=True))
        assert ids == ["num"]
        ids, __ = index.range_scan(Interval(low="", low_inclusive=True))
        assert ids == ["text"]
