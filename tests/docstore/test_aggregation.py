"""Tests for the aggregation pipeline: stage semantics, planner and shard
pushdown, explain, distinct, sorted cursors, and randomized differential
checks against a brute-force reference and across deployment shapes."""

from __future__ import annotations

import json
import random

import pytest

from repro.docstore import (
    DocumentClient,
    DocumentServer,
    TopologySpec,
    build_topology,
)
from repro.docstore.aggregation import (
    BULK_SCAN,
    ORDERED_INDEX_WALK,
    group_token,
    split_pipeline,
)
from repro.docstore.collection import Collection
from repro.docstore.cursor import sort_key
from repro.docstore.documents import get_path
from repro.docstore.matching import matches
from repro.docstore.mmapv1 import MmapV1Engine
from repro.docstore.planner import FULL_SCAN, INDEX_EQ, INDEX_RANGE
from repro.docstore.wiredtiger import WiredTigerEngine
from repro.errors import DocumentStoreError


# -- fixtures and helpers ----------------------------------------------------------


@pytest.fixture(params=[WiredTigerEngine, MmapV1Engine], ids=["wiredtiger", "mmapv1"])
def collection(request) -> Collection:
    return Collection("events", request.param())


def make_documents(count: int, seed: int = 7) -> list[dict]:
    """Synthetic analytics documents with mixed, partially missing fields.

    ``score`` uses half-integer floats only, so float sums are exact under
    any accumulation order and differential comparisons can be equality.
    """
    rng = random.Random(seed)
    documents = []
    for index in range(count):
        document = {
            "_id": f"d{index:04d}",
            "category": f"cat{rng.randrange(4)}",
            "counter": rng.randrange(100),
        }
        roll = rng.random()
        if roll < 0.6:
            document["score"] = rng.randrange(200) / 2
        elif roll < 0.8:
            document["score"] = None
        if rng.random() < 0.8:
            document["active"] = rng.random() < 0.5
        if rng.random() < 0.3:
            document["tags"] = rng.sample(["a", "b", "c", "d"], rng.randrange(1, 3))
        documents.append(document)
    return documents


def canonical(documents: list[dict]) -> list[str]:
    return sorted(json.dumps(document, sort_keys=True, default=repr)
                  for document in documents)


# -- brute-force reference ---------------------------------------------------------


def _ref_eval(document: dict, expression) -> tuple[bool, object]:
    if isinstance(expression, str) and expression.startswith("$"):
        return get_path(document, expression[1:])
    if isinstance(expression, dict):
        return True, {name: _ref_eval(document, entry)[1]
                      for name, entry in expression.items()}
    return True, expression


def _ref_accumulate(operator: str, values: list[tuple[bool, object]]):
    if operator == "$count":
        return len(values)
    if operator in ("$sum", "$avg"):
        numbers = [value for found, value in values
                   if found and isinstance(value, (int, float))
                   and not isinstance(value, bool)]
        if operator == "$sum":
            return sum(numbers) if numbers else 0
        return sum(numbers) / len(numbers) if numbers else None
    present = [value for found, value in values
               if found and value is not None]
    if not present:
        return None
    picker = min if operator == "$min" else max
    return picker(present, key=sort_key)


def _ref_group(documents: list[dict], spec: dict) -> list[dict]:
    groups: dict[tuple, dict] = {}
    for document in documents:
        found, key = _ref_eval(document, spec["_id"])
        key = key if found else None
        entry = groups.setdefault(group_token(key), {"key": key, "docs": []})
        entry["docs"].append(document)
    rows = []
    for token in sorted(groups):
        entry = groups[token]
        row = {"_id": entry["key"]}
        for name, accumulator in spec.items():
            if name == "_id":
                continue
            (operator, operand), = accumulator.items()
            row[name] = _ref_accumulate(
                operator,
                [(True, operand) if not (isinstance(operand, str)
                                         and operand.startswith("$"))
                 else _ref_eval(document, operand)
                 for document in entry["docs"]])
        rows.append(row)
    return rows


def _ref_sort(documents: list[dict], sort_spec: dict) -> list[dict]:
    ordered = sorted(documents, key=lambda doc: str(doc.get("_id")))
    for field, direction in reversed(list(sort_spec.items())):
        ordered.sort(key=lambda doc: sort_key(get_path(doc, field)[1]),
                     reverse=direction < 0)
    return ordered


def _ref_project(documents: list[dict], projection: dict) -> list[dict]:
    include = [name for name, flag in projection.items() if flag]
    exclude = {name for name, flag in projection.items() if not flag}
    out = []
    for document in documents:
        if include:
            row = {name: document[name] for name in include if name in document}
            if "_id" not in exclude and "_id" in document:
                row["_id"] = document["_id"]
        else:
            row = {name: value for name, value in document.items()
                   if name not in exclude}
        out.append(row)
    return out


def reference_pipeline(documents: list[dict], pipeline: list[dict]) -> list[dict]:
    """Brute-force evaluation over plain Python lists."""
    current = list(documents)
    for stage in pipeline:
        (name, spec), = stage.items()
        if name == "$match":
            current = [doc for doc in current if matches(doc, spec)]
        elif name == "$project":
            current = _ref_project(current, spec)
        elif name == "$group":
            current = _ref_group(current, spec)
        elif name == "$sort":
            current = _ref_sort(current, spec)
        elif name == "$limit":
            current = current[:spec]
    return current


def ordered_output(pipeline: list[dict]) -> bool:
    """Whether the pipeline's output order is part of the contract: the last
    order-establishing stage ($sort/$group) is followed only by stages that
    preserve order."""
    deterministic = False
    for stage in pipeline:
        kind = next(iter(stage))
        if kind in ("$sort", "$group"):
            deterministic = True
        elif kind == "$match":
            pass  # filters preserve relative order
    return deterministic


# -- validation --------------------------------------------------------------------


class TestParseValidation:
    def test_rejects_unknown_stage(self, collection):
        with pytest.raises(DocumentStoreError):
            collection.aggregate([{"$lookup": {}}])

    def test_rejects_multi_key_stage(self, collection):
        with pytest.raises(DocumentStoreError):
            collection.aggregate([{"$match": {}, "$limit": 1}])

    def test_rejects_group_without_id(self, collection):
        with pytest.raises(DocumentStoreError):
            collection.aggregate([{"$group": {"n": {"$count": {}}}}])

    def test_rejects_unknown_accumulator(self, collection):
        with pytest.raises(DocumentStoreError):
            collection.aggregate([{"$group": {"_id": None, "n": {"$median": "$x"}}}])

    def test_rejects_count_with_operand(self, collection):
        with pytest.raises(DocumentStoreError):
            collection.aggregate([{"$group": {"_id": None, "n": {"$count": "$x"}}}])

    def test_rejects_bad_limit(self, collection):
        for bad in (0, -1, True, "3"):
            with pytest.raises(DocumentStoreError):
                collection.aggregate([{"$limit": bad}])

    def test_rejects_bad_sort_direction(self, collection):
        with pytest.raises(DocumentStoreError):
            collection.aggregate([{"$sort": {"a": 2}}])

    def test_rejects_operator_expression_in_accumulator(self, collection):
        with pytest.raises(DocumentStoreError):
            collection.aggregate(
                [{"$group": {"_id": None, "n": {"$sum": {"$add": [1, 2]}}}}])


# -- accumulator semantics ---------------------------------------------------------


class TestAccumulators:
    def load(self, collection):
        collection.insert_many([
            {"_id": "a", "g": 1, "v": 10, "f": 2.5},
            {"_id": "b", "g": 1, "v": True},          # bool: not a number
            {"_id": "c", "g": 1, "v": None},
            {"_id": "d", "g": 1},                      # missing v
            {"_id": "e", "g": 2, "v": 4, "f": 1.5},
            {"_id": "f", "g": 2, "v": 6},
        ])

    def test_sum_avg_skip_non_numeric(self, collection):
        self.load(collection)
        rows = collection.aggregate([{"$group": {
            "_id": "$g", "total": {"$sum": "$v"}, "mean": {"$avg": "$v"},
        }}]).documents
        assert rows == [
            {"_id": 1, "total": 10, "mean": 10.0},
            {"_id": 2, "total": 10, "mean": 5.0},
        ]

    def test_sum_of_constant_counts_documents(self, collection):
        self.load(collection)
        rows = collection.aggregate(
            [{"$group": {"_id": "$g", "n": {"$sum": 1}}}]).documents
        assert rows == [{"_id": 1, "n": 4}, {"_id": 2, "n": 2}]

    def test_min_max_ignore_null_and_missing(self, collection):
        self.load(collection)
        rows = collection.aggregate([{"$group": {
            "_id": "$g", "lo": {"$min": "$f"}, "hi": {"$max": "$f"},
        }}]).documents
        assert rows == [
            {"_id": 1, "lo": 2.5, "hi": 2.5},
            {"_id": 2, "lo": 1.5, "hi": 1.5},
        ]

    def test_empty_accumulators(self, collection):
        self.load(collection)
        rows = collection.aggregate([
            {"$match": {"g": 1}},
            {"$group": {"_id": None, "lo": {"$min": "$f2"},
                        "total": {"$sum": "$f2"}, "mean": {"$avg": "$f2"}}},
        ]).documents
        assert rows == [{"_id": None, "lo": None, "total": 0, "mean": None}]

    def test_bool_and_int_group_keys_stay_distinct(self, collection):
        collection.insert_many([
            {"_id": "a", "k": True}, {"_id": "b", "k": 1}, {"_id": "c", "k": 1.0},
        ])
        rows = collection.aggregate(
            [{"$group": {"_id": "$k", "n": {"$count": {}}}}]).documents
        assert [(row["_id"], row["n"]) for row in rows] == [(True, 1), (1, 2)]

    def test_compound_group_key(self, collection):
        self.load(collection)
        rows = collection.aggregate([{"$group": {
            "_id": {"g": "$g", "has": "$f"}, "n": {"$count": {}},
        }}]).documents
        assert {json.dumps(row["_id"], sort_keys=True, default=repr): row["n"]
                for row in rows} == {
            json.dumps({"g": 1, "has": 2.5}, sort_keys=True): 1,
            json.dumps({"g": 1, "has": None}, sort_keys=True): 3,
            json.dumps({"g": 2, "has": 1.5}, sort_keys=True): 1,
            json.dumps({"g": 2, "has": None}, sort_keys=True): 1,
        }


# -- pushdown and explain ----------------------------------------------------------


class TestPushdownExplain:
    def test_indexed_leading_match_avoids_full_scan(self, collection):
        collection.insert_many(make_documents(80))
        collection.create_index("category")
        report = collection.explain(
            [{"$match": {"category": "cat1"}},
             {"$group": {"_id": "$active", "n": {"$count": {}}}}])
        assert report["winning_plan"]["access_path"] == INDEX_EQ
        assert report["stages"][0]["pushdown"] == "planner"

    def test_indexed_range_match_uses_index_range(self, collection):
        collection.insert_many(make_documents(80))
        collection.create_index("counter")
        report = collection.explain(
            [{"$match": {"counter": {"$gte": 50}}},
             {"$group": {"_id": None, "n": {"$count": {}}}}])
        assert report["winning_plan"]["access_path"] == INDEX_RANGE

    def test_full_collection_source_is_bulk_scan(self, collection):
        collection.insert_many(make_documents(30))
        report = collection.explain(
            [{"$group": {"_id": "$category", "n": {"$count": {}}}}])
        assert report["source"]["mode"] == "bulk_scan"
        assert report["winning_plan"]["access_path"] == BULK_SCAN

    def test_sort_limit_rides_ordered_index_walk(self, collection):
        collection.insert_many(make_documents(80))
        collection.create_index("counter")
        pipeline = [{"$match": {"counter": {"$gte": 40}}},
                    {"$sort": {"counter": 1}}, {"$limit": 5}]
        report = collection.explain(pipeline)
        assert report["winning_plan"]["access_path"] == ORDERED_INDEX_WALK
        assert report["winning_plan"]["limit_pushdown"] == 5
        assert [entry["pushdown"] for entry in report["stages"]] == [
            "index_walk_filter", "ordered_index_walk", "source_limit"]
        result = collection.aggregate(pipeline)
        expected = reference_pipeline(
            collection.find({}).to_list(), pipeline)
        assert result.documents == expected

    def test_walk_not_used_when_index_does_not_cover(self, collection):
        collection.insert_many(make_documents(80))
        collection.create_index("score")  # score is missing/None on many docs
        report = collection.explain([{"$sort": {"score": 1}}, {"$limit": 5}])
        assert report["winning_plan"]["access_path"] != ORDERED_INDEX_WALK

    def test_descending_sort_stays_in_memory(self, collection):
        collection.insert_many(make_documents(40))
        collection.create_index("counter")
        report = collection.explain([{"$sort": {"counter": -1}}, {"$limit": 5}])
        assert report["winning_plan"]["access_path"] != ORDERED_INDEX_WALK

    def test_walk_seeks_into_matched_interval(self, collection):
        documents = [{"_id": f"d{index:03d}", "counter": index}
                     for index in range(200)]
        collection.insert_many(documents)
        collection.create_index("counter")
        index = collection.index_for("counter")
        before = index.tree_node_accesses()
        result = collection.aggregate(
            [{"$match": {"counter": {"$gte": 190}}},
             {"$sort": {"counter": 1}}, {"$limit": 3}])
        walked = index.tree_node_accesses() - before
        assert [doc["counter"] for doc in result.documents] == [190, 191, 192]
        # A seek touches a descent plus a few leaves, not the whole tree.
        assert walked < 40

    def test_leading_match_rides_the_plan_cache(self, collection):
        collection.insert_many(make_documents(60))
        collection.create_index("category")
        baseline = collection.planner.cache_stats()["hits"]
        for value in ("cat0", "cat1", "cat2", "cat0"):
            collection.aggregate(
                [{"$match": {"category": value}},
                 {"$group": {"_id": None, "n": {"$count": {}}}}])
        assert collection.planner.cache_stats()["hits"] >= baseline + 3

    def test_aggregation_cost_is_accounted(self, collection):
        collection.insert_many(make_documents(50))
        result = collection.aggregate(
            [{"$group": {"_id": "$category", "n": {"$count": {}}}}])
        assert result.simulated_seconds > 0
        # Bulk scan with a pushed limit charges only what it consumed.
        limited = collection.aggregate([{"$limit": 5}])
        assert 0 < limited.simulated_seconds < result.simulated_seconds


# -- randomized differential -------------------------------------------------------


def random_pipeline(rng: random.Random) -> list[dict]:
    pipeline: list[dict] = []
    if rng.random() < 0.6:
        pipeline.append({"$match": rng.choice([
            {"category": "cat1"},
            {"counter": {"$gte": rng.randrange(80)}},
            {"active": True},
            {"score": {"$ne": None}},
            {"category": {"$in": ["cat0", "cat2"]}},
        ])})
    shape = rng.random()
    if shape < 0.45:
        spec = {"_id": rng.choice(["$category", "$active", None,
                                   {"c": "$category", "a": "$active"}])}
        for name, accumulator in (
            ("n", {"$count": {}}), ("total", {"$sum": "$counter"}),
            ("mean", {"$avg": "$counter"}), ("lo", {"$min": "$score"}),
            ("hi", {"$max": "$score"}), ("ones", {"$sum": 1}),
        ):
            if rng.random() < 0.5:
                spec[name] = accumulator
        pipeline.append({"$group": spec})
        if rng.random() < 0.3:
            pipeline.append({"$limit": rng.randrange(1, 4)})
    elif shape < 0.8:
        field = rng.choice(["counter", "score", "category"])
        pipeline.append({"$sort": {field: rng.choice([1, -1])}})
        if rng.random() < 0.7:
            pipeline.append({"$limit": rng.randrange(1, 25)})
    else:
        pipeline.append({"$project": rng.choice([
            {"category": 1, "counter": 1},
            {"tags": 0, "score": 0},
            {"counter": 1, "_id": 0},
        ])})
    return pipeline


class TestRandomizedDifferential:
    def test_pipeline_matches_brute_force(self, collection):
        documents = make_documents(120)
        collection.insert_many(documents)
        collection.create_index("category")
        collection.create_index("counter")
        rng = random.Random(2024)
        for __ in range(60):
            pipeline = random_pipeline(rng)
            result = collection.aggregate(pipeline).documents
            expected = reference_pipeline(documents, pipeline)
            if ordered_output(pipeline):
                assert result == expected, pipeline
            else:
                assert canonical(result) == canonical(expected), pipeline

    def test_sharded_matches_standalone(self):
        documents = make_documents(150, seed=11)
        single = DocumentClient(DocumentServer()).collection("db", "events")
        cluster = build_topology(
            TopologySpec(shards=3, shard_key="_id", shard_strategy="hash"))
        sharded = DocumentClient(cluster).collection("db", "events")
        for handle in (single, sharded):
            handle.insert_many(documents)
            handle.create_index("category")
            handle.create_index("counter")
        cluster.maintain("db", "events")
        rng = random.Random(99)
        for __ in range(60):
            pipeline = random_pipeline(rng)
            alone = single.aggregate(pipeline)
            routed = sharded.aggregate(pipeline)
            if ordered_output(pipeline):
                assert routed == alone, pipeline
            else:
                assert canonical(routed) == canonical(alone), pipeline

    def test_replicated_matches_standalone(self):
        documents = make_documents(80, seed=3)
        single = DocumentClient(DocumentServer()).collection("db", "events")
        replica_set = build_topology(TopologySpec(replicas=3))
        replicated = DocumentClient(replica_set).collection("db", "events")
        for handle in (single, replicated):
            handle.insert_many(documents)
            handle.create_index("counter")
        rng = random.Random(5)
        for __ in range(20):
            pipeline = random_pipeline(rng)
            alone = single.aggregate(pipeline)
            routed = replicated.aggregate(pipeline)
            if ordered_output(pipeline):
                assert routed == alone, pipeline
            else:
                assert canonical(routed) == canonical(alone), pipeline


# -- the shard split ---------------------------------------------------------------


class TestShardSplit:
    def test_group_is_pushed_down(self):
        split = split_pipeline(
            [{"$match": {"a": 1}},
             {"$group": {"_id": "$c", "n": {"$count": {}}}},
             {"$sort": {"n": -1}}])
        assert split.mode == "group"
        assert split.shard_stages == [{"$match": {"a": 1}}]
        assert split.router_stages == [{"$sort": {"n": -1}}]

    def test_sort_before_group_blocks_group_pushdown(self):
        split = split_pipeline(
            [{"$sort": {"counter": 1}}, {"$limit": 10},
             {"$group": {"_id": "$category", "n": {"$count": {}}}}])
        assert split.mode == "sort"
        assert split.merge_limit == 10
        assert split.router_stages == [
            {"$group": {"_id": "$category", "n": {"$count": {}}}}]

    def test_limit_before_group_blocks_group_pushdown(self):
        split = split_pipeline(
            [{"$limit": 10},
             {"$group": {"_id": "$category", "n": {"$count": {}}}}])
        assert split.mode == "stream"
        assert split.merge_limit == 10

    def test_top_k_before_group_is_still_correct_sharded(self):
        # The differential guarantee for exactly the shape that would go
        # wrong if $group were pushed below a global top-k.
        documents = make_documents(120, seed=21)
        single = DocumentClient(DocumentServer()).collection("db", "events")
        cluster = build_topology(TopologySpec(shards=4, shard_key="_id"))
        sharded = DocumentClient(cluster).collection("db", "events")
        for handle in (single, sharded):
            handle.insert_many(documents)
        pipeline = [{"$sort": {"counter": 1}}, {"$limit": 15},
                    {"$group": {"_id": "$category", "n": {"$count": {}},
                                "total": {"$sum": "$counter"}}}]
        assert sharded.aggregate(pipeline) == single.aggregate(pipeline)

    def test_sharded_explain_reports_split_and_shard_plans(self):
        cluster = build_topology(TopologySpec(shards=3, shard_key="_id"))
        handle = DocumentClient(cluster).collection("db", "events")
        handle.insert_many(make_documents(60))
        handle.create_index("category")
        report = handle.explain(
            [{"$match": {"category": "cat1"}},
             {"$group": {"_id": "$active", "n": {"$count": {}}}}])
        assert report["sharded"] is True
        assert report["split"]["mode"] == "group"
        assert report["split"]["partial_group"] == {
            "_id": "$active", "n": {"$count": {}}}
        assert len(report["shard_plans"]) == report["shard_count"]
        for plan in report["shard_plans"].values():
            assert plan["winning_plan"]["access_path"] == INDEX_EQ
            assert plan["winning_plan"]["access_path"] != FULL_SCAN


# -- distinct ----------------------------------------------------------------------


class TestDistinct:
    def test_distinct_semantics(self, collection):
        collection.insert_many([
            {"_id": "a", "v": 1}, {"_id": "b", "v": None}, {"_id": "c"},
            {"_id": "d", "v": [2, 3, 2]}, {"_id": "e", "v": 1.0},
            {"_id": "f", "v": True},
        ])
        values = collection.distinct("v")
        # Missing contributes nothing; null is a value; arrays unwind;
        # 1 and 1.0 collapse; True stays distinct from 1.
        assert values == [True, 1, 2, 3, None]

    def test_distinct_with_query(self, collection):
        collection.insert_many(make_documents(60))
        values = collection.distinct("category", {"counter": {"$gte": 50}})
        expected = sorted(
            {doc["category"] for doc in make_documents(60)
             if doc["counter"] >= 50})
        assert values == expected

    def test_sharded_distinct_matches_standalone(self):
        documents = make_documents(100, seed=13)
        single = DocumentClient(DocumentServer()).collection("db", "events")
        cluster = build_topology(TopologySpec(shards=3, shard_key="_id"))
        sharded = DocumentClient(cluster).collection("db", "events")
        for handle in (single, sharded):
            handle.insert_many(documents)
        for field in ("category", "score", "tags", "active"):
            assert sharded.distinct(field) == single.distinct(field)
        assert (sharded.distinct("category", {"active": True})
                == single.distinct("category", {"active": True}))


# -- client cursors ----------------------------------------------------------------


class TestFindCursor:
    def test_sort_limit_matches_find_plus_sort(self):
        server = DocumentServer()
        handle = DocumentClient(server).collection("db", "events")
        documents = make_documents(60)
        handle.insert_many(documents)
        handle.create_index("counter")
        cursor = handle.find_cursor({"active": True}).sort("counter", -1).limit(5)
        expected = _ref_sort(
            [doc for doc in documents if doc.get("active") is True],
            {"counter": -1})[:5]
        assert cursor.to_list() == expected

    def test_ascending_sort_uses_ordered_walk(self):
        server = DocumentServer()
        handle = DocumentClient(server).collection("db", "events")
        handle.insert_many([{"_id": f"d{index:03d}", "counter": index}
                            for index in range(100)])
        handle.create_index("counter")
        collection = server.database("db").collection("events")
        index = collection.index_for("counter")
        before = index.tree_node_accesses()
        rows = handle.find_cursor().sort("counter").limit(4).to_list()
        assert [row["counter"] for row in rows] == [0, 1, 2, 3]
        # The walk stops after 4 documents instead of touching the tree for
        # a full materialise-and-sort.
        assert index.tree_node_accesses() - before < 30

    def test_cursor_returns_copies(self):
        handle = DocumentClient(DocumentServer()).collection("db", "events")
        handle.insert_many([{"_id": "a", "counter": 1, "inner": {"x": 1}}])
        row = handle.find_cursor().sort("counter").to_list()[0]
        row["inner"]["x"] = 99
        assert handle.find_one({"_id": "a"})["inner"]["x"] == 1

    def test_sharded_cursor_sort_matches_standalone(self):
        documents = make_documents(90, seed=17)
        single = DocumentClient(DocumentServer()).collection("db", "events")
        cluster = build_topology(TopologySpec(shards=3, shard_key="_id"))
        sharded = DocumentClient(cluster).collection("db", "events")
        for handle in (single, sharded):
            handle.insert_many(documents)
            handle.create_index("counter")
        alone = single.find_cursor().sort("counter").limit(20).to_list()
        routed = sharded.find_cursor().sort("counter").limit(20).to_list()
        assert routed == alone

    def test_skip_composes_with_ordered_fetch(self):
        handle = DocumentClient(DocumentServer()).collection("db", "events")
        handle.insert_many([{"_id": f"d{index}", "counter": index}
                            for index in range(20)])
        handle.create_index("counter")
        rows = handle.find_cursor().sort("counter").skip(5).limit(3).to_list()
        assert [row["counter"] for row in rows] == [5, 6, 7]
