"""Differential tests: a sharded cluster must behave like a single server.

Same seed, same operation sequence, any shard count -- the surviving
documents and every operation's matched/modified/deleted counts must be
identical; only the simulated costs may differ (routing, scatter-gather and
chunk migrations legitimately change service times).

Known, documented exception (matching real ``mongos``): a single-document
write that does not pin the shard key picks its victim in shard-probe
order, which can differ from a single server's insertion-order choice when
*several* documents match.  The sequences below therefore target
single-document writes by ``_id`` (the common case) and exercise
multi-match predicates through ``update_many``/``delete_many``/``find``,
whose results are order-independent.
"""

from __future__ import annotations

import random

import pytest

from repro.docstore.client import CollectionHandle, DocumentClient
from repro.docstore.server import DocumentServer
from repro.docstore.sharding import ShardedCluster
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import CORE_WORKLOADS

SHARD_COUNTS = [1, 2, 4]


def make_handle(shards: int, strategy: str = "hash") -> CollectionHandle:
    if shards == 1:
        server: DocumentServer | ShardedCluster = DocumentServer()
    else:
        server = ShardedCluster(shards=shards, strategy=strategy, split_threshold=16)
    return DocumentClient(server).collection("app", "users")


def run_sequence(handle: CollectionHandle, seed: int = 3):
    """A seeded CRUD mix; returns (sorted documents, operation outcomes)."""
    rng = random.Random(seed)
    outcomes = []
    inserted = 0
    for step in range(300):
        roll = rng.random()
        key = f"user{rng.randrange(max(inserted, 1))}"
        if roll < 0.4 or inserted < 10:
            result = handle.insert_one(
                {"_id": f"user{inserted}", "n": inserted, "group": inserted % 5})
            outcomes.append(("insert", tuple(result.inserted_ids)))
            inserted += 1
        elif roll < 0.6:
            result = handle.update_one({"_id": key}, {"$set": {"n": step}})
            outcomes.append(("update", result.matched_count, result.modified_count))
        elif roll < 0.7:
            result = handle.update_many({"group": rng.randrange(5)},
                                        {"$inc": {"touched": 1}})
            outcomes.append(("update_many", result.matched_count))
        elif roll < 0.8:
            result = handle.delete_one({"_id": key})
            outcomes.append(("delete", result.deleted_count))
        elif roll < 0.9:
            documents = handle.find({"group": rng.randrange(5)})
            outcomes.append(("find", sorted(d["_id"] for d in documents)))
        else:
            outcomes.append(("count", handle.count_documents()))
    documents = sorted(handle.find_with_cost({}).documents,
                       key=lambda document: document["_id"])
    return documents, outcomes


class TestCrudEquivalence:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("strategy", ["hash", "range"])
    def test_sharded_sequence_matches_single_server(self, shards, strategy):
        single_documents, single_outcomes = run_sequence(make_handle(1))
        sharded_documents, sharded_outcomes = run_sequence(
            make_handle(shards, strategy))
        assert sharded_outcomes == single_outcomes
        assert sharded_documents == single_documents

    def test_costs_may_differ_but_are_accounted(self):
        handle = make_handle(4)
        handle.insert_one({"_id": "u1", "n": 1})
        result = handle.find_with_cost({"n": 1})
        assert result.simulated_seconds > 0
        assert result.shard_costs


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("workload", ["A", "B"])
    def test_ycsb_run_leaves_identical_collections(self, workload):
        core = CORE_WORKLOADS[workload]

        def final_documents(shards: int):
            spec = WorkloadSpec(record_count=120, operation_count=240, threads=4,
                                mix=core.mix, distribution=core.distribution,
                                seed=13, shards=shards)
            benchmark = DocumentBenchmark.for_spec(spec, "wiredtiger")
            benchmark.execute_full()
            return sorted(benchmark.handle.find_with_cost({}).documents,
                          key=lambda document: document["_id"])

        baseline = final_documents(1)
        for shards in (2, 4):
            assert final_documents(shards) == baseline

    def test_operation_counts_identical_across_shard_counts(self):
        core = CORE_WORKLOADS["F"]
        results = []
        for shards in SHARD_COUNTS:
            spec = WorkloadSpec(record_count=80, operation_count=160, threads=2,
                                mix=core.mix, distribution=core.distribution,
                                seed=21, shards=shards)
            results.append(DocumentBenchmark.for_spec(spec, "wiredtiger").execute_full())
        counts = [result.operation_counts for result in results]
        assert counts[0] == counts[1] == counts[2]
        documents = [result.engine_statistics["documents"] for result in results]
        assert len(set(documents)) == 1
