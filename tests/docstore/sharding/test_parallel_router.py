"""The parallel dispatch layer: ShardExecutor and the router on top of it.

Three guarantee families:

* the executor itself -- shard_id-ordered results, real concurrency (a
  fan-out of sleeping tasks finishes in ~max, not ~sum), deterministic
  exception propagation, and a clean close() that degrades to serial;
* parallel == serial == standalone -- the same seeded CRUD and aggregation
  sequences produce document-for-document identical results with
  ``parallel_fanout`` on and off, so flipping the knob can never change
  answers, only wall-clock;
* failover from worker threads -- a primary killed mid-fan-out raises
  ``NotPrimaryError`` *inside* a worker, and the router's elect-and-retry
  must converge exactly as it does inline, while unrecoverable errors
  surface on the calling thread.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.docstore.client import CollectionHandle, DocumentClient
from repro.docstore.cost import CostParameters
from repro.docstore.replication.failures import FailureInjector
from repro.docstore.server import DocumentServer
from repro.docstore.sharding import ShardedCluster, ShardExecutor
from repro.docstore.topology import TopologySpec, build_topology, topology_of
from repro.errors import NoPrimaryError
from tests.docstore.sharding.test_sharded_equivalence import run_sequence


class TestShardExecutor:
    def test_results_come_back_in_given_shard_order(self):
        executor = ShardExecutor(6)
        # Later shards finish first; the result list must still follow the
        # order the ids were given in.
        def task(shard_id: int) -> int:
            time.sleep(0.002 * (6 - shard_id))
            return shard_id * 10
        results, walls = executor.scatter([0, 2, 3, 5], task)
        assert results == [0, 20, 30, 50]
        assert len(walls) == 4 and all(wall > 0.0 for wall in walls)
        executor.close()

    def test_workers_spawn_lazily_per_shard(self):
        executor = ShardExecutor(4, workers_per_shard=2)
        assert executor.active_workers() == 0
        # Single-shard dispatch stays inline: still no workers.
        results, __ = executor.scatter([2], lambda shard_id: shard_id)
        assert results == [2]
        assert executor.active_workers() == 0
        # A real fan-out runs the first shard on the caller and spawns
        # workers only for the remaining shards.
        executor.scatter([0, 1], lambda shard_id: shard_id)
        assert executor.active_workers() == 2
        executor.scatter([0, 1, 2, 3], lambda shard_id: shard_id)
        assert executor.active_workers() == 6  # shard 0 still caller-run
        executor.close()

    def test_fanout_wall_clock_is_max_not_sum(self):
        executor = ShardExecutor(4)
        nap = 0.05
        started = time.perf_counter()
        __, walls = executor.scatter(
            [0, 1, 2, 3], lambda shard_id: time.sleep(nap))
        elapsed = time.perf_counter() - started
        # Serial would cost 4 * nap; allow generous scheduling slack and
        # still require clearly-parallel behaviour.
        assert elapsed < 3 * nap
        assert all(wall >= nap for wall in walls)
        executor.close()

    def test_exception_surfaces_from_lowest_failing_shard(self):
        executor = ShardExecutor(4)
        completed: list[int] = []

        def task(shard_id: int) -> int:
            if shard_id in (1, 3):
                raise ValueError(f"shard{shard_id} failed")
            completed.append(shard_id)
            return shard_id

        with pytest.raises(ValueError, match="shard1 failed"):
            executor.scatter([0, 1, 2, 3], task)
        # Every non-failing task still ran to completion (a real scatter
        # cannot recall in-flight sub-operations).
        assert sorted(completed) == [0, 2]
        executor.close()

    def test_caller_thread_exception_also_propagates(self):
        executor = ShardExecutor(2)

        def task(shard_id: int) -> int:
            if shard_id == 0:  # shard 0 runs inline on the caller
                raise RuntimeError("inline failure")
            return shard_id

        with pytest.raises(RuntimeError, match="inline failure"):
            executor.scatter([0, 1], task)
        executor.close()

    def test_close_degrades_to_serial_and_is_idempotent(self):
        executor = ShardExecutor(3)
        executor.scatter([0, 1, 2], lambda shard_id: shard_id)
        executor.close()
        executor.close()
        assert executor.closed
        results, walls = executor.scatter([0, 1, 2], lambda shard_id: -shard_id)
        assert results == [0, -1, -2]
        assert len(walls) == 3

    def test_concurrent_callers_share_the_pool(self):
        executor = ShardExecutor(4, workers_per_shard=2)
        outputs: dict[int, list[int]] = {}
        lock = threading.Lock()

        def caller(caller_id: int) -> None:
            results, __ = executor.scatter(
                [0, 1, 2, 3], lambda shard_id: caller_id * 100 + shard_id)
            with lock:
                outputs[caller_id] = results

        threads = [threading.Thread(target=caller, args=(caller_id,))
                   for caller_id in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outputs == {caller_id: [caller_id * 100 + shard
                                       for shard in range(4)]
                           for caller_id in range(6)}
        executor.close()


def make_handle(shards: int, strategy: str = "hash",
                parallel_fanout: bool = True) -> CollectionHandle:
    if shards == 1:
        server: DocumentServer | ShardedCluster = DocumentServer()
    else:
        server = ShardedCluster(shards=shards, strategy=strategy,
                                split_threshold=16,
                                parallel_fanout=parallel_fanout)
    return DocumentClient(server).collection("app", "users")


def run_aggregations(handle: CollectionHandle, seed: int = 11):
    """Seeded aggregation + distinct mix; returns comparable outcomes."""
    rng = random.Random(seed)
    handle.insert_many([
        {"_id": f"doc{index}", "n": rng.randrange(1000),
         "group": index % 7, "flag": index % 3 == 0}
        for index in range(240)
    ])
    outcomes = []
    outcomes.append(("group", sorted(
        (row["_id"], row["total"], row["peak"]) for row in handle.aggregate([
            {"$group": {"_id": "$group", "total": {"$sum": "$n"},
                        "peak": {"$max": "$n"}}},
        ]))))
    outcomes.append(("match_group", handle.aggregate([
        {"$match": {"flag": True}},
        {"$group": {"_id": None, "count": {"$sum": 1}, "avg": {"$avg": "$n"}}},
    ])))
    outcomes.append(("sort_limit", [
        (row["_id"], row["n"]) for row in handle.aggregate([
            {"$sort": {"n": 1, "_id": 1}}, {"$limit": 25},
        ])]))
    outcomes.append(("distinct", handle.distinct("group")))
    outcomes.append(("distinct_filtered",
                     handle.distinct("group", {"n": {"$gte": 500}})))
    outcomes.append(("count", handle.count_documents({"n": {"$lt": 300}})))
    return outcomes


class TestParallelEqualsSerialEqualsStandalone:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("strategy", ["hash", "range"])
    def test_crud_sequences_identical_across_modes(self, shards, strategy):
        single = run_sequence(make_handle(1))
        parallel = run_sequence(make_handle(shards, strategy,
                                            parallel_fanout=True))
        serial = run_sequence(make_handle(shards, strategy,
                                          parallel_fanout=False))
        assert parallel == single
        assert serial == single

    @pytest.mark.parametrize("shards", [2, 4])
    def test_aggregation_mixes_identical_across_modes(self, shards):
        single = run_aggregations(make_handle(1))
        parallel = run_aggregations(make_handle(shards, parallel_fanout=True))
        serial = run_aggregations(make_handle(shards, parallel_fanout=False))
        assert parallel == single
        assert serial == single

    def test_find_dedup_does_not_conflate_id_types(self):
        # ``1`` and ``"1"`` are distinct _ids; the multi-shard dedup must
        # key on the type-tagged identity, not ``str()``.
        cluster = ShardedCluster(shards=4, shard_key="k", auto_maintenance=False)
        handle = DocumentClient(cluster).collection("app", "mixed")
        handle.insert_one({"_id": 1, "k": "a"})
        handle.insert_one({"_id": "1", "k": "b"})
        documents = handle.find_with_cost({}).documents
        assert len(documents) == 2

    def test_topology_spec_round_trips_the_fanout_knob(self):
        spec = TopologySpec(shards=4, parallel_fanout=False)
        assert TopologySpec.from_json(spec.to_json()) == spec
        assert "serial fan-out" in spec.describe()
        cluster = build_topology(spec)
        assert cluster.parallel_fanout is False
        assert topology_of(cluster) == spec
        parsed = TopologySpec.from_parameters(
            {"shards": "4", "parallel_fanout": "false"})
        assert parsed.parallel_fanout is False


class TestWorkerThreadFailover:
    def build(self, parallel_fanout: bool = True):
        cluster = ShardedCluster(shards=3, replicas=3, split_threshold=10_000,
                                 parallel_fanout=parallel_fanout)
        handle = DocumentClient(cluster).collection("app", "users")
        handle.insert_many([
            {"_id": f"user{index}", "n": index, "group": index % 5}
            for index in range(90)
        ])
        return cluster, handle

    def test_primary_killed_before_scatter_read_converges(self):
        cluster, handle = self.build()
        for shard_id in (1, 2):  # both failures land on worker threads
            FailureInjector.for_shard(cluster, shard_id).kill_primary()
        documents = handle.find({"group": 3})
        assert sorted(doc["_id"] for doc in documents) == sorted(
            f"user{index}" for index in range(90) if index % 5 == 3)
        assert cluster.router.failover_retries >= 2

    def test_primary_killed_mid_fanout_retries_on_worker(self):
        cluster, handle = self.build()
        injector = FailureInjector.for_shard(cluster, 2)
        thread_names: list[str] = []
        state = {"killed": False}

        # Sabotage shard 2's sub-operation just before its first attempt:
        # the NotPrimaryError is raised on the dispatching worker thread
        # mid-fan-out, and the elect-and-retry must happen right there.
        original = cluster.router._run_on_shard

        def sabotaged(database, collection, shard_id, operation,
                      *args, **kwargs):
            if shard_id == 2 and operation == "update_many":
                thread_names.append(threading.current_thread().name)
                if not state["killed"]:
                    state["killed"] = True
                    injector.kill_primary()
            return original(database, collection, shard_id, operation,
                            *args, **kwargs)

        cluster.router._run_on_shard = sabotaged
        try:
            result = handle.update_many({}, {"$inc": {"touched": 1}})
        finally:
            cluster.router._run_on_shard = original
        assert result.matched_count == 90
        assert result.modified_count == 90
        assert cluster.router.failover_retries == 1
        assert thread_names and all(name.startswith("shard2-fanout")
                                    for name in thread_names)
        assert handle.count_documents({"touched": 1}) == 90

    def test_majority_dead_surfaces_on_calling_thread(self):
        cluster, handle = self.build()
        injector = FailureInjector.for_shard(cluster, 1)
        injector.kill_primary()
        # Kill a second member: 1 of 3 left is below the majority of 2, so
        # the worker's election fails and the error must reach the caller.
        survivor_ids = [member.member_id
                        for member in cluster.replica_set(1).members
                        if member.up]
        injector.kill(survivor_ids[0])
        with pytest.raises(NoPrimaryError):
            handle.find({"group": 1})

    def test_serial_mode_failover_still_works(self):
        cluster, handle = self.build(parallel_fanout=False)
        FailureInjector.for_shard(cluster, 1).kill_primary()
        assert handle.count_documents({}) == 90
        assert cluster.router.failover_retries >= 1


class TestMeasuredSpans:
    def test_router_spans_carry_measured_wall_ms_children(self):
        cluster = ShardedCluster(
            shards=4, split_threshold=10_000,
            cost_parameters=CostParameters(real_service_scale=8.0))
        handle = DocumentClient(cluster).collection("app", "users")
        handle.insert_many([
            {"_id": f"user{index}", "n": index} for index in range(200)
        ])
        cluster.set_profiling(2, slow_ms=0.0)
        handle.find({"n": {"$gte": 0}})
        handle.update_many({}, {"$inc": {"n": 1}})
        entries = [entry for entry in cluster.get_slow_ops()
                   if entry["source"] == "router"]
        assert len(entries) == 2
        for entry in entries:
            children = [child for child in entry["shards"]
                        if child["shard"] != "balancer"]
            assert len(children) == 4
            assert entry["parallel"] is True
            for child in children:
                assert child["wall_ms"] > 0.0
            # The straggler is the measured slowest shard.
            slowest = max(children, key=lambda child: child["wall_ms"])
            assert entry["straggler"] == slowest["shard"]
            # Parallel dispatch: the parent's measured duration tracks the
            # slowest child, not the sum of all four.
            total = sum(child["wall_ms"] for child in children)
            assert entry["duration_ms"] < total

    def test_single_shard_ops_report_no_wall_children(self):
        cluster = ShardedCluster(shards=4, split_threshold=10_000)
        handle = DocumentClient(cluster).collection("app", "users")
        handle.insert_one({"_id": "user0", "n": 0})
        cluster.set_profiling(2, slow_ms=0.0)
        handle.find({"_id": "user0"})
        (entry,) = [entry for entry in cluster.get_slow_ops()
                    if entry["source"] == "router"]
        (child,) = entry["shards"]
        assert "wall_ms" not in child  # targeted op: no fan-out dispatch
