"""Tests for the query router and the cluster's server-compatible surface."""

from __future__ import annotations

import pytest

from repro.docstore.client import DocumentClient
from repro.docstore.sharding import ShardedCluster
from repro.errors import DocumentStoreError, NotFoundError


@pytest.fixture
def cluster() -> ShardedCluster:
    return ShardedCluster(shards=4, auto_maintenance=False)


@pytest.fixture
def users(cluster):
    handle = cluster.database("app").collection("users")
    handle.insert_many([
        {"_id": f"u{index}", "n": index, "category": f"c{index % 3}"}
        for index in range(40)
    ])
    return handle


class TestTargetedOperations:
    def test_keyed_read_targets_a_single_shard(self, cluster, users):
        result = users.find_with_cost({"_id": "u5"})
        assert [document["_id"] for document in result.documents] == ["u5"]
        assert len(result.shard_costs) == 1

    def test_insert_routes_to_the_owning_shard(self, cluster, users):
        state = cluster.sharding_state("app", "users")
        shard_id = state.manager.shard_for("u5")
        collection = cluster.shard_collection_on(shard_id, "app", "users")
        assert collection.find_one({"_id": "u5"}) is not None

    def test_documents_live_only_on_their_owning_shard(self, cluster, users):
        state = cluster.sharding_state("app", "users")
        for index in range(40):
            key = f"u{index}"
            owner = state.manager.shard_for(key)
            for shard_id in range(cluster.shard_count):
                found = cluster.shard_collection_on(
                    shard_id, "app", "users").find_one({"_id": key})
                assert (found is not None) == (shard_id == owner)

    def test_keyed_update_and_delete(self, cluster, users):
        assert users.update_one({"_id": "u3"}, {"$set": {"n": 99}}).matched_count == 1
        assert users.find_one({"_id": "u3"})["n"] == 99
        assert users.delete_one({"_id": "u3"}).deleted_count == 1
        assert users.find_one({"_id": "u3"}) is None

    def test_router_counts_targeted_operations(self, cluster, users):
        before = cluster.router.targeted_operations
        users.find_with_cost({"_id": "u1"})
        assert cluster.router.targeted_operations == before + 1


class TestScatterGather:
    def test_unkeyed_query_fans_out_to_every_shard(self, cluster, users):
        result = users.find_with_cost({"category": "c1"})
        assert len(result.documents) == 13  # 40 documents, categories c1 on 1,4,...
        assert set(result.shard_costs) == {f"shard{i}" for i in range(4)}

    def test_scatter_cost_is_the_slowest_shard(self, cluster, users):
        result = users.find_with_cost({"category": "c0"})
        assert result.simulated_seconds == pytest.approx(max(result.shard_costs.values()))

    def test_full_scan_returns_everything(self, cluster, users):
        result = users.find_with_cost({})
        assert len(result.documents) == 40
        assert result.matched_count == 40

    def test_count_documents_merges_shards(self, cluster, users):
        assert users.count_documents() == 40
        assert users.count_documents({"category": "c2"}) == 13
        assert users.count_documents({"_id": "u1"}) == 1

    def test_unkeyed_update_many_merges_counts(self, cluster, users):
        result = users.update_many({"category": "c0"}, {"$set": {"flag": True}})
        assert result.matched_count == 14
        assert result.modified_count == 14
        assert users.count_documents({"flag": True}) == 14

    def test_unkeyed_delete_many_merges_counts(self, cluster, users):
        assert users.delete_many({"category": "c1"}).deleted_count == 13
        assert users.count_documents() == 27

    def test_unkeyed_single_document_writes_affect_one_document(self, cluster, users):
        assert users.update_one({"category": "c2"}, {"$set": {"n": -1}}).matched_count == 1
        assert users.count_documents({"n": -1}) == 1
        assert users.delete_one({"category": "c2"}).deleted_count == 1
        assert users.count_documents() == 39


class TestShardKeyRules:
    def test_insert_without_shard_key_rejected(self):
        cluster = ShardedCluster(shards=2, shard_key="region")
        handle = cluster.database("app").collection("orders")
        with pytest.raises(DocumentStoreError):
            handle.insert_one({"amount": 10})

    def test_shard_key_is_immutable(self):
        cluster = ShardedCluster(shards=2, shard_key="region")
        handle = cluster.database("app").collection("orders")
        handle.insert_one({"_id": "o1", "region": "eu", "amount": 10})
        with pytest.raises(DocumentStoreError):
            handle.update_one({"_id": "o1"}, {"$set": {"region": "us"}})

    def test_replacement_must_carry_the_shard_key(self):
        cluster = ShardedCluster(shards=2, shard_key="region")
        handle = cluster.database("app").collection("orders")
        handle.insert_one({"_id": "o1", "region": "eu", "amount": 10})
        with pytest.raises(DocumentStoreError):
            handle.update_one({"region": "eu"}, {"amount": 20})
        with pytest.raises(DocumentStoreError):
            handle.update_one({"region": "eu"}, {"region": "us", "amount": 20})

    def test_replacement_with_unpinned_query_rejected(self):
        """An unpinned replacement could silently re-key a document in place."""
        cluster = ShardedCluster(shards=2, shard_key="region")
        handle = cluster.database("app").collection("orders")
        handle.insert_one({"_id": "o1", "region": "eu", "amount": 10})
        with pytest.raises(DocumentStoreError):
            handle.update_one({"amount": 10}, {"region": "us", "amount": 20})
        # The document is untouched and still found via its shard key.
        assert handle.find_one({"region": "eu"})["amount"] == 10

    def test_pinned_replacement_keeping_the_key_succeeds(self):
        cluster = ShardedCluster(shards=2, shard_key="region")
        handle = cluster.database("app").collection("orders")
        handle.insert_one({"_id": "o1", "region": "eu", "amount": 10})
        result = handle.update_one({"region": "eu"}, {"region": "eu", "amount": 20})
        assert result.matched_count == 1
        assert handle.find_one({"region": "eu"})["amount"] == 20

    def test_unique_index_only_on_the_shard_key(self, cluster, users):
        with pytest.raises(DocumentStoreError):
            users.create_index("category", unique=True)
        assert users.create_index("_id", unique=True) == "_id"

    def test_index_creation_broadcasts_to_every_shard(self, cluster, users):
        users.create_index("category")
        for shard_id in range(cluster.shard_count):
            collection = cluster.shard_collection_on(shard_id, "app", "users")
            assert "category" in collection.indexes.names()


class TestClientIntegration:
    def test_document_client_works_against_a_cluster(self):
        client = DocumentClient(ShardedCluster(shards=3))
        users = client.collection("app", "users")
        users.insert_many([{"_id": f"u{index}", "n": index} for index in range(10)])
        assert users.count_documents() == 10
        assert users.find_one({"_id": "u7"})["n"] == 7
        users.update_one({"_id": "u7"}, {"$set": {"n": 70}})
        assert users.find_one({"_id": "u7"})["n"] == 70
        assert client.latencies("insert")
        assert client.latencies("read")
        assert client.drop_database("app") is True

    def test_cluster_commands(self):
        cluster = ShardedCluster(shards=2)
        client = DocumentClient(cluster)
        client.collection("app", "users").insert_one({"_id": "u1"})
        assert client.command({"ping": 1}) == {"ok": 1}
        assert client.command({"buildInfo": 1})["sharded"] is True
        assert len(client.command({"listShards": 1})["shards"]) == 2
        status = client.command({"serverStatus": 1})
        assert status["totalDocuments"] == 1 and status["shards"] == 2
        assert client.command({"dbStats": "app"})["documents"] == 1
        coll_stats = client.command({"collStats": "app.users"})
        assert coll_stats["documents"] == 1 and coll_stats["sharded"] is True

    def test_shard_collection_command(self):
        cluster = ShardedCluster(shards=2)
        response = cluster.run_command({"shardCollection": "app.orders",
                                        "key": "region", "strategy": "range"})
        assert response["key"] == "region"
        assert cluster.sharding_state("app", "orders").manager.strategy == "range"

    def test_unknown_command_and_missing_namespaces(self):
        cluster = ShardedCluster(shards=2)
        with pytest.raises(DocumentStoreError):
            cluster.run_command({"compact": 1})
        with pytest.raises(NotFoundError):
            cluster.run_command({"dbStats": "nope"})
        with pytest.raises(NotFoundError):
            cluster.run_command({"collStats": "nope.missing"})

    def test_resharding_a_populated_namespace_rejected(self):
        cluster = ShardedCluster(shards=2)
        cluster.database("app").collection("users").insert_one({"_id": "u1"})
        with pytest.raises(DocumentStoreError):
            cluster.shard_collection("app", "users", key="other")

    def test_merged_collection_stats(self, cluster, users):
        stats = users.stats()
        assert stats["documents"] == 40
        assert stats["sharded"] is True
        assert stats["shard_key"] == "_id"
        assert len(stats["per_shard"]) == 4
        assert stats["storage_bytes"] == sum(
            shard["storage_bytes"] for shard in stats["per_shard"]
        )
