"""Tests for range-aware shard routing and the router's unified cost model."""

from __future__ import annotations

import pytest

from repro.docstore.predicates import Interval
from repro.docstore.server import DocumentServer
from repro.docstore.sharding import ShardedCluster
from repro.docstore.sharding.chunks import ChunkManager
from repro.docstore.sharding.router import combine_shard_costs


def make_range_cluster(documents: int = 200, shards: int = 4) -> ShardedCluster:
    """A range-sharded cluster with chunks split and balanced across shards."""
    cluster = ShardedCluster(shards=shards, strategy="range", split_threshold=16,
                            auto_maintenance=False)
    handle = cluster.database("app").collection("users")
    handle.insert_many([
        {"_id": f"k{index:04d}", "n": index} for index in range(documents)
    ])
    cluster.maintain("app", "users")
    return cluster


class TestShardsForInterval:
    def test_hash_strategy_cannot_target_ranges(self):
        manager = ChunkManager(shard_count=4, strategy="hash")
        assert manager.shards_for_interval(Interval(low="a")) is None

    def test_range_strategy_targets_overlapping_chunks(self):
        manager = ChunkManager(shard_count=4, strategy="range", split_threshold=2)
        manager.split_oversized({0: list(range(12))})
        for index, chunk in enumerate(manager.chunks()):
            manager.assign(chunk, index % 4)
        owners = manager.shards_for_interval(Interval(low=0, high=2,
                                                      low_inclusive=True,
                                                      high_inclusive=True))
        expected = {chunk.shard_id for chunk in manager.chunks()
                    if chunk.lower is None or chunk.lower <= 2}
        assert owners == expected
        assert owners < set(range(4))  # a narrow range targets a strict subset

    def test_unbounded_interval_covers_every_chunk(self):
        manager = ChunkManager(shard_count=2, strategy="range")
        assert manager.shards_for_interval(Interval()) == {0}

    def test_incomparable_bounds_fall_back(self):
        manager = ChunkManager(shard_count=2, strategy="range", split_threshold=2)
        manager.split_oversized({0: list(range(8))})
        assert manager.shards_for_interval(Interval(low=99)) is not None
        # Interval bounds that do not compare with the chunk bounds
        # (string vs int here) -> TypeError -> None -> scatter fallback.
        assert manager.shards_for_interval(Interval(low="zzz")) is None


class TestRangeTargeting:
    def test_chunks_are_spread_before_asserting(self):
        cluster = make_range_cluster()
        state = cluster.sharding_state("app", "users")
        assert len({chunk.shard_id for chunk in state.manager.chunks()}) > 1

    def test_range_query_counts_as_targeted_not_scatter(self):
        cluster = make_range_cluster()
        handle = cluster.database("app").collection("users")
        targeted_before = cluster.router.targeted_operations
        scatter_before = cluster.router.scatter_operations
        handle.find_with_cost({"_id": {"$gte": "k0190"}})
        assert cluster.router.targeted_operations == targeted_before + 1
        assert cluster.router.scatter_operations == scatter_before

    def test_range_query_contacts_only_owning_shards(self):
        cluster = make_range_cluster()
        handle = cluster.database("app").collection("users")
        state = cluster.sharding_state("app", "users")
        owners = state.manager.shards_for_interval(
            Interval(low="k0190", low_inclusive=True))
        assert owners is not None and len(owners) < cluster.shard_count
        result = handle.find_with_cost({"_id": {"$gte": "k0190"}})
        assert set(result.shard_costs) == {f"shard{sid}" for sid in owners}
        assert len(result.documents) == 10

    def test_range_query_on_hash_sharded_key_scatters(self):
        cluster = ShardedCluster(shards=4, strategy="hash", auto_maintenance=False)
        handle = cluster.database("app").collection("users")
        handle.insert_many([{"_id": f"k{index:04d}"} for index in range(40)])
        scatter_before = cluster.router.scatter_operations
        result = handle.find_with_cost({"_id": {"$gte": "k0030"}})
        assert cluster.router.scatter_operations == scatter_before + 1
        assert len(result.shard_costs) == 4
        assert len(result.documents) == 10

    def test_in_points_target_owning_shards_only(self):
        cluster = make_range_cluster()
        handle = cluster.database("app").collection("users")
        state = cluster.sharding_state("app", "users")
        keys = ["k0001", "k0199"]
        owners = {state.manager.shard_for(key) for key in keys}
        targeted_before = cluster.router.targeted_operations
        result = handle.find_with_cost({"_id": {"$in": keys}})
        assert cluster.router.targeted_operations == targeted_before + 1
        assert set(result.shard_costs) == {f"shard{sid}" for sid in owners}
        assert sorted(doc["_id"] for doc in result.documents) == keys

    def test_contradictory_range_contacts_no_shard(self):
        cluster = make_range_cluster()
        handle = cluster.database("app").collection("users")
        result = handle.find_with_cost({"_id": {"$gt": "k0100", "$lt": "k0050"}})
        assert result.documents == [] and result.shard_costs == {}
        assert result.simulated_seconds == 0.0

    def test_range_targeted_update_and_delete_many(self):
        cluster = make_range_cluster()
        handle = cluster.database("app").collection("users")
        scatter_before = cluster.router.scatter_operations
        updated = handle.update_many({"_id": {"$gte": "k0190"}},
                                     {"$set": {"flag": True}})
        assert updated.matched_count == 10
        deleted = handle.delete_many({"_id": {"$gte": "k0195"}})
        assert deleted.deleted_count == 5
        assert cluster.router.scatter_operations == scatter_before
        assert handle.count_documents() == 195

    def test_range_count_documents_is_targeted(self):
        cluster = make_range_cluster()
        handle = cluster.database("app").collection("users")
        targeted_before = cluster.router.targeted_operations
        assert handle.count_documents({"_id": {"$lt": "k0010"}}) == 10
        assert cluster.router.targeted_operations == targeted_before + 1


class TestShardedEqualsSingleServer:
    """Range queries must stay document-for-document equal to one server."""

    QUERIES = [
        {"_id": {"$gte": "k0150"}},
        {"_id": {"$gt": "k0010", "$lte": "k0042"}},
        {"n": {"$gte": 100, "$lt": 120}},
        {"_id": {"$in": ["k0005", "k0050", "k0150", "missing"]}},
    ]

    def _single(self, documents: int = 200):
        server = DocumentServer("wiredtiger")
        collection = server.database("app").collection("users")
        collection.insert_many([
            {"_id": f"k{index:04d}", "n": index} for index in range(documents)
        ])
        return collection

    @pytest.mark.parametrize("strategy", ["range", "hash"])
    def test_results_identical(self, strategy):
        single = self._single()
        if strategy == "range":
            cluster = make_range_cluster()
        else:
            cluster = ShardedCluster(shards=4, strategy="hash",
                                     auto_maintenance=False)
            cluster.database("app").collection("users").insert_many([
                {"_id": f"k{index:04d}", "n": index} for index in range(200)
            ])
        handle = cluster.database("app").collection("users")
        for query in self.QUERIES:
            expected = sorted(
                (doc["_id"] for doc in single.find_with_cost(query).documents))
            actual = sorted(doc["_id"] for doc in handle.find_with_cost(query).documents)
            assert actual == expected, query

    def test_limited_range_scan_on_indexed_field_identical(self):
        """Limited range scans on a non-_id indexed field: the cluster must
        return the same documents as a single server's ordered index scan,
        even when the field order disagrees with the record-id order."""
        import random

        rng = random.Random(5)
        values = list(range(200))
        rng.shuffle(values)
        documents = [{"_id": f"k{index:04d}", "n": values[index]}
                     for index in range(200)]
        server = DocumentServer("wiredtiger")
        single = server.database("app").collection("users")
        single.insert_many(documents)
        single.create_index("n")
        cluster = ShardedCluster(shards=4, strategy="range", split_threshold=16,
                                 auto_maintenance=False)
        handle = cluster.database("app").collection("users")
        handle.insert_many(documents)
        cluster.maintain("app", "users")
        handle.create_index("n")
        for low in (0, 57, 150):
            query = {"n": {"$gte": low}}
            expected = sorted(doc["_id"] for doc in
                              single.find_with_cost(query, limit=7).documents)
            actual = sorted(doc["_id"] for doc in
                            handle.find_with_cost(query, limit=7).documents)
            assert actual == expected, low

    def test_limited_in_query_on_indexed_field_identical(self):
        """Limited $in queries: a single server's equality lookup emits in
        record-id order, and the cluster merge must match it."""
        documents = [{"_id": "a", "v": 2}, {"_id": "b", "v": 1},
                     {"_id": "c", "v": 2}, {"_id": "d", "v": 1}]
        server = DocumentServer("wiredtiger")
        single = server.database("app").collection("users")
        single.insert_many(documents)
        single.create_index("v")
        cluster = ShardedCluster(shards=4, auto_maintenance=False)
        handle = cluster.database("app").collection("users")
        handle.insert_many(documents)
        handle.create_index("v")
        query = {"v": {"$in": [1, 2]}}
        expected = [doc["_id"] for doc in
                    single.find_with_cost(query, limit=2).documents]
        actual = [doc["_id"] for doc in
                  handle.find_with_cost(query, limit=2).documents]
        assert actual == expected

    def test_broad_range_covering_every_shard_counts_as_scatter(self):
        """A range overlapping every chunk did not narrow the fan-out."""
        cluster = make_range_cluster()
        handle = cluster.database("app").collection("users")
        scatter_before = cluster.router.scatter_operations
        result = handle.find_with_cost({"_id": {"$gte": ""}})
        assert len(result.documents) == 200
        assert cluster.router.scatter_operations == scatter_before + 1

    def test_mistyped_pinned_key_falls_back_to_scatter(self):
        """An equality query with a key of the wrong type must not crash the
        range-sharded router; it scatters and returns [] like one server."""
        cluster = make_range_cluster()
        handle = cluster.database("app").collection("users")
        scatter_before = cluster.router.scatter_operations
        assert handle.find_with_cost({"_id": 5}).documents == []
        assert handle.find_with_cost({"_id": {"$in": [5]}}).documents == []
        assert cluster.router.scatter_operations == scatter_before + 2

    @pytest.mark.parametrize("strategy", ["range", "hash"])
    def test_limited_range_scans_identical(self, strategy):
        """The workload-E shape: a range scan with a pushed-down limit."""
        single = self._single()
        if strategy == "range":
            cluster = make_range_cluster()
        else:
            cluster = ShardedCluster(shards=4, strategy="hash",
                                     auto_maintenance=False)
            cluster.database("app").collection("users").insert_many([
                {"_id": f"k{index:04d}", "n": index} for index in range(200)
            ])
        handle = cluster.database("app").collection("users")
        for start in ("k0000", "k0042", "k0190", "k0197"):
            query = {"_id": {"$gte": start}}
            expected = [doc["_id"] for doc in
                        single.find_with_cost(query, limit=10).documents]
            actual = [doc["_id"] for doc in
                      handle.find_with_cost(query, limit=10).documents]
            assert actual == expected, start


class TestCostModel:
    """Regression tests for the unified serial-probe vs parallel-broadcast model."""

    def test_combine_shard_costs_helper(self):
        costs = {"shard0": 1.0, "shard1": 3.0, "shard2": 2.0}
        assert combine_shard_costs(costs, parallel=True) == 3.0
        assert combine_shard_costs(costs, parallel=False) == 6.0
        assert combine_shard_costs({}, parallel=True) == 0.0

    def test_broadcast_cost_is_the_slowest_shard(self):
        cluster = ShardedCluster(shards=4, auto_maintenance=False)
        handle = cluster.database("app").collection("users")
        handle.insert_many([{"_id": f"u{index}", "g": index % 2}
                            for index in range(40)])
        result = handle.update_many({"g": 0}, {"$set": {"touched": True}})
        assert len(result.shard_costs) == 4
        assert result.simulated_seconds == pytest.approx(
            max(result.shard_costs.values()))

    def test_probe_cost_is_the_sum_of_probed_shards(self):
        cluster = ShardedCluster(shards=4, auto_maintenance=False)
        handle = cluster.database("app").collection("users")
        handle.insert_many([{"_id": f"u{index}", "g": index % 2}
                            for index in range(40)])
        result = handle.delete_one({"g": 1})
        assert result.deleted_count == 1
        assert result.simulated_seconds == pytest.approx(
            sum(result.shard_costs.values()))

    def test_scatter_read_cost_is_the_slowest_shard(self):
        cluster = ShardedCluster(shards=4, auto_maintenance=False)
        handle = cluster.database("app").collection("users")
        handle.insert_many([{"_id": f"u{index}", "g": index % 2}
                            for index in range(40)])
        result = handle.find_with_cost({"g": 0})
        assert result.simulated_seconds == pytest.approx(
            max(result.shard_costs.values()))


class TestRouterExplain:
    def test_explain_reports_targeting_and_shard_plans(self):
        cluster = make_range_cluster()
        handle = cluster.database("app").collection("users")
        explanation = handle.explain({"_id": {"$gte": "k0190"}})
        assert explanation["sharded"] is True
        assert explanation["targeting"] == "targeted"
        assert 0 < len(explanation["shards"]) < cluster.shard_count
        for plan in explanation["shard_plans"].values():
            assert plan["winning_plan"]["access_path"] == "INDEX_RANGE"

    def test_explain_scatter_on_unconstrained_query(self):
        cluster = make_range_cluster()
        handle = cluster.database("app").collection("users")
        explanation = handle.explain({"n": {"$gte": 100}})
        assert explanation["targeting"] == "scatter"
        assert len(explanation["shards"]) == cluster.shard_count
