"""Tests for chunk splitting and balancer migrations at the cluster level."""

from __future__ import annotations

import pytest

from repro.docstore.client import DocumentClient
from repro.docstore.sharding import ShardedCluster


def load(cluster: ShardedCluster, count: int):
    handle = DocumentClient(cluster).collection("app", "users")
    handle.insert_many([
        {"_id": f"user{index:04d}", "n": index} for index in range(count)
    ])
    return handle


class TestSplitting:
    def test_load_splits_oversized_chunks(self):
        cluster = ShardedCluster(shards=2, split_threshold=16, auto_maintenance=False)
        load(cluster, 100)
        assert cluster.split_chunks("app", "users") > 0
        manager = cluster.sharding_state("app", "users").manager
        manager.validate()
        assert len(manager.chunks()) > 2

    def test_every_key_owned_by_exactly_one_chunk_after_splits(self):
        cluster = ShardedCluster(shards=2, split_threshold=8, auto_maintenance=False)
        load(cluster, 120)
        cluster.split_chunks("app", "users")
        manager = cluster.sharding_state("app", "users").manager
        owners = manager.owners_of([f"user{index:04d}" for index in range(120)])
        assert all(len(chunks) == 1 for chunks in owners.values())

    def test_split_respects_the_threshold(self):
        cluster = ShardedCluster(shards=1, split_threshold=10, auto_maintenance=False)
        load(cluster, 75)
        cluster.split_chunks("app", "users")
        manager = cluster.sharding_state("app", "users").manager
        collection = cluster.shard_collection_on(0, "app", "users")
        for chunk in manager.chunks():
            owned = sum(
                1 for __, document, __cost in collection.engine.scan()
                if chunk.covers(manager.routing_point(document["_id"]))
            )
            assert owned <= 10


class TestBalancing:
    def test_range_load_converges_to_even_chunk_counts(self):
        cluster = ShardedCluster(shards=4, strategy="range", split_threshold=16,
                                 auto_maintenance=False)
        load(cluster, 200)
        cluster.maintain("app", "users")
        counts = cluster.sharding_state("app", "users").manager.chunk_counts()
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_migration_loses_no_documents(self):
        cluster = ShardedCluster(shards=4, strategy="range", split_threshold=16,
                                 auto_maintenance=False)
        handle = load(cluster, 200)
        before = sorted(d["_id"] for d in handle.find_with_cost({}).documents)
        summary = cluster.maintain("app", "users")
        assert summary["migrations"], "expected the balancer to migrate chunks"
        after = sorted(d["_id"] for d in handle.find_with_cost({}).documents)
        assert before == after
        assert handle.count_documents() == 200

    def test_migrated_documents_live_on_their_new_shard(self):
        cluster = ShardedCluster(shards=2, strategy="range", split_threshold=8,
                                 auto_maintenance=False)
        load(cluster, 60)
        cluster.maintain("app", "users")
        state = cluster.sharding_state("app", "users")
        for index in range(60):
            key = f"user{index:04d}"
            owner = state.manager.shard_for(key)
            document = cluster.shard_collection_on(
                owner, "app", "users").find_one({"_id": key})
            assert document is not None, f"{key} missing from shard {owner}"

    def test_migrations_are_recorded_with_document_counts(self):
        cluster = ShardedCluster(shards=4, strategy="range", split_threshold=16,
                                 auto_maintenance=False)
        load(cluster, 200)
        cluster.maintain("app", "users")
        state = cluster.sharding_state("app", "users")
        assert state.balancer.migrations
        for migration in state.balancer.migrations:
            assert migration.namespace == "app.users"
            assert migration.documents_moved >= 0
            assert migration.source_shard != migration.target_shard

    def test_balanced_cluster_needs_no_further_migrations(self):
        cluster = ShardedCluster(shards=4, split_threshold=16,
                                 auto_maintenance=False)
        load(cluster, 100)
        cluster.maintain("app", "users")
        assert cluster.balance("app", "users") == []

    def test_auto_maintenance_triggers_during_load(self):
        cluster = ShardedCluster(shards=4, strategy="range", split_threshold=16)
        load(cluster, 200)
        state = cluster.sharding_state("app", "users")
        state.manager.validate()
        assert len(state.manager.chunks()) > 1
        assert state.balancer.migrations
        counts = state.manager.chunk_counts()
        assert max(counts.values()) - min(counts.values()) <= 1


class TestMigrationCostAccounting:
    """Chunk migrations are charged to the operations that trigger them."""

    def test_maintain_reports_the_migrations_simulated_cost(self):
        cluster = ShardedCluster(shards=4, strategy="range", split_threshold=16,
                                 auto_maintenance=False)
        load(cluster, 200)
        summary = cluster.maintain("app", "users")
        assert summary["migrations"]
        expected = sum(m["simulated_seconds"] for m in summary["migrations"])
        assert expected > 0
        assert summary["simulated_seconds"] == pytest.approx(expected)

    def test_triggering_insert_pays_for_the_maintenance_round(self):
        cluster = ShardedCluster(shards=4, strategy="range", split_threshold=16)
        handle = DocumentClient(cluster).collection("app", "users")
        state = cluster.sharding_state("app", "users")
        charged = 0.0
        for index in range(200):
            migrations_before = len(state.balancer.migrations)
            result = handle.insert_one({"_id": f"user{index:04d}", "n": index})
            new_migrations = state.balancer.migrations[migrations_before:]
            if new_migrations:
                round_cost = sum(m.simulated_seconds for m in new_migrations)
                assert result.simulated_seconds >= round_cost
                assert result.shard_costs["balancer"] == pytest.approx(round_cost)
                charged += round_cost
        assert state.balancer.migrations, "expected migrations during the load"
        assert charged > 0
        assert cluster.router.maintenance_seconds == pytest.approx(charged)

    def test_migration_seconds_surface_in_collection_stats(self):
        cluster = ShardedCluster(shards=4, strategy="range", split_threshold=16)
        load(cluster, 200)
        statistics = cluster.collection_stats("app", "users")
        assert statistics["migrations"] > 0
        assert statistics["migration_seconds"] > 0

    def test_free_migrations_regression_benchmark_charges_measured_phase(self):
        """An insert-heavy measured phase must include its balancing cost."""
        from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
        from repro.workloads.ycsb import OperationMix

        spec = WorkloadSpec(record_count=60, operation_count=240, seed=5,
                            shards=4, shard_strategy="range",
                            mix=OperationMix(insert=1.0), distribution="uniform")
        benchmark = DocumentBenchmark.for_spec(spec, "wiredtiger")
        benchmark.load()
        cluster = benchmark.server
        state = cluster.sharding_state("benchmark", "usertable")
        migrations_before = len(state.balancer.migrations)
        charged_before = cluster.router.maintenance_seconds
        result = benchmark.run()
        migrated = state.balancer.migrations[migrations_before:]
        assert migrated, "expected the insert stream to trigger migrations"
        charged = cluster.router.maintenance_seconds - charged_before
        assert charged == pytest.approx(
            sum(m.simulated_seconds for m in migrated))
        # The measured latencies include the charge (simulated_seconds of the
        # run is at least the migration cost scaled by the speedup model).
        assert result.simulated_seconds > 0
