"""Tests for the chunk map: routing, coverage invariants and splitting."""

from __future__ import annotations

import pytest

from repro.docstore.sharding.chunks import (
    HASH_SPACE_SIZE,
    ChunkManager,
    hash_shard_key,
)
from repro.errors import DocumentStoreError


class TestHashing:
    def test_hash_is_deterministic(self):
        assert hash_shard_key("user1") == hash_shard_key("user1")

    def test_hash_spreads_values(self):
        points = {hash_shard_key(f"user{index}") for index in range(100)}
        assert len(points) == 100

    def test_hash_fits_the_routing_space(self):
        for index in range(50):
            assert 0 <= hash_shard_key(f"user{index}") < HASH_SPACE_SIZE


class TestChunkManager:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(DocumentStoreError):
            ChunkManager(4, strategy="round-robin")
        with pytest.raises(DocumentStoreError):
            ChunkManager(0)
        with pytest.raises(DocumentStoreError):
            ChunkManager(4, split_threshold=1)

    def test_hash_strategy_pre_splits_one_chunk_per_shard(self):
        manager = ChunkManager(4, strategy="hash")
        manager.validate()
        assert len(manager.chunks()) == 4
        assert manager.chunk_counts() == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_range_strategy_starts_with_a_single_chunk(self):
        manager = ChunkManager(4, strategy="range")
        manager.validate()
        assert len(manager.chunks()) == 1
        assert manager.chunks()[0].shard_id == 0

    def test_every_key_owned_by_exactly_one_chunk(self):
        for strategy in ("hash", "range"):
            manager = ChunkManager(4, strategy=strategy)
            owners = manager.owners_of([f"user{index}" for index in range(200)])
            assert all(len(chunks) == 1 for chunks in owners.values())

    def test_chunk_for_agrees_with_shard_for(self):
        manager = ChunkManager(4, strategy="hash")
        for index in range(50):
            value = f"user{index}"
            assert manager.chunk_for(value).shard_id == manager.shard_for(value)


class TestSplitting:
    def test_oversized_chunk_is_split_at_the_median(self):
        manager = ChunkManager(1, strategy="range", split_threshold=4)
        points = list(range(10))
        performed = manager.split_oversized({0: points})
        assert performed >= 1
        manager.validate()
        assert all(
            len([p for p in points if chunk.covers(p)]) <= 4
            for chunk in manager.chunks()
        )

    def test_split_keeps_ownership_unique(self):
        manager = ChunkManager(2, strategy="range", split_threshold=4)
        values = [f"user{index:03d}" for index in range(40)]
        manager.split_oversized({0: [manager.routing_point(v) for v in values]})
        owners = manager.owners_of(values)
        assert all(len(chunks) == 1 for chunks in owners.values())

    def test_identical_points_cannot_be_split(self):
        manager = ChunkManager(1, strategy="range", split_threshold=2)
        assert manager.split_oversized({0: ["same"] * 50}) == 0
        assert len(manager.chunks()) == 1

    def test_split_halves_stay_on_the_parent_shard(self):
        manager = ChunkManager(2, strategy="range", split_threshold=2)
        manager.split_oversized({0: list(range(10))})
        assert {chunk.shard_id for chunk in manager.chunks()} == {0}

    def test_splits_are_counted(self):
        manager = ChunkManager(1, strategy="range", split_threshold=2)
        manager.split_oversized({0: list(range(16))})
        assert manager.splits_performed == len(manager.chunks()) - 1


class TestAssignment:
    def test_assign_moves_a_chunk(self):
        manager = ChunkManager(2, strategy="range")
        chunk = manager.chunks()[0]
        manager.assign(chunk, 1)
        assert manager.chunk_counts() == {0: 0, 1: 1}

    def test_assign_to_missing_shard_rejected(self):
        manager = ChunkManager(2, strategy="range")
        with pytest.raises(DocumentStoreError):
            manager.assign(manager.chunks()[0], 5)
