"""Tests for cursor semantics (lazy evaluation, modifiers, projections)."""

from __future__ import annotations

import pytest

from repro.docstore.cursor import Cursor

DOCUMENTS = [
    {"_id": "a", "n": 3, "name": "carol"},
    {"_id": "b", "n": 1, "name": "alice"},
    {"_id": "c", "n": 2, "name": "bob"},
    {"_id": "d", "n": None, "name": "dave"},
]


def make_cursor(projection=None, counter=None):
    def fetch(limit=None):
        if counter is not None:
            counter.append(1)
        documents = [dict(doc) for doc in DOCUMENTS]
        return documents if limit is None else documents[:limit]

    return Cursor(fetch, projection)


class TestLaziness:
    def test_fetch_not_called_until_consumed(self):
        calls = []
        cursor = make_cursor(counter=calls)
        assert calls == []
        cursor.to_list()
        assert calls == [1]

    def test_fetch_called_only_once(self):
        calls = []
        cursor = make_cursor(counter=calls)
        cursor.to_list()
        cursor.to_list()
        len(cursor)
        assert calls == [1]

    def test_modifiers_after_consumption_rejected(self):
        cursor = make_cursor()
        cursor.to_list()
        with pytest.raises(RuntimeError):
            cursor.sort("n")


class TestModifiers:
    def test_sort_ascending_and_descending(self):
        ascending = [doc["_id"] for doc in make_cursor().sort("n")]
        assert ascending == ["d", "b", "c", "a"]  # None sorts first
        descending = [doc["_id"] for doc in make_cursor().sort("n", -1)]
        assert descending == ["a", "c", "b", "d"]

    def test_multi_key_sort(self):
        cursor = make_cursor().sort("name").sort("n")
        # Last sort applied has the lowest precedence (first key wins).
        names = [doc["name"] for doc in cursor]
        assert names == sorted(names, key=lambda value: value)

    def test_skip_and_limit(self):
        cursor = make_cursor().sort("_id").skip(1).limit(2)
        assert [doc["_id"] for doc in cursor] == ["b", "c"]

    def test_skip_beyond_end(self):
        assert make_cursor().skip(100).to_list() == []

    def test_limit_zero(self):
        assert make_cursor().limit(0).to_list() == []

    def test_first_and_len(self):
        assert make_cursor().sort("_id").first()["_id"] == "a"
        assert len(make_cursor()) == 4
        empty = Cursor(lambda limit=None: [])
        assert empty.first() is None


class TestProjection:
    def test_inclusion_keeps_id(self):
        documents = make_cursor(projection={"name": 1}).to_list()
        assert all(set(doc) == {"name", "_id"} for doc in documents)

    def test_exclusion(self):
        documents = make_cursor(projection={"name": 0}).to_list()
        assert all("name" not in doc and "_id" in doc for doc in documents)

    def test_id_can_be_excluded(self):
        documents = make_cursor(projection={"name": 1, "_id": 0}).to_list()
        assert all(set(doc) == {"name"} for doc in documents)
