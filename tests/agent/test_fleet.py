"""Tests for running fleets of agents over multiple deployments."""

from __future__ import annotations

import pytest

from repro.agent.fleet import AgentFleet
from repro.agents.testing import SleepAgent


@pytest.fixture
def evaluation_setup(control, admin, sleep_system):
    project = control.projects.create("fleet tests", admin)
    experiment = control.experiments.create(project.id, sleep_system.id, "exp",
                                            parameters={"work_units": [1, 2, 3, 4, 5, 6]})
    evaluation, jobs = control.evaluations.create(experiment.id)
    deployments = [control.deployments.register(sleep_system.id, f"node-{i}").id
                   for i in range(3)]
    return control, sleep_system, evaluation, jobs, deployments


class TestAgentFleet:
    def test_round_robin_drives_evaluation_to_completion(self, evaluation_setup, clock):
        control, system, evaluation, jobs, deployments = evaluation_setup
        fleet = AgentFleet(control, system.id, deployments, SleepAgent, clock=clock)
        report = fleet.drive_evaluation(evaluation.id)
        assert report.jobs_finished == len(jobs)
        assert control.evaluations.is_complete(evaluation.id)

    def test_work_is_spread_over_deployments(self, evaluation_setup, clock):
        control, system, evaluation, jobs, deployments = evaluation_setup
        fleet = AgentFleet(control, system.id, deployments, SleepAgent, clock=clock)
        report = fleet.drive_evaluation(evaluation.id)
        assert len(report.per_deployment) == len(deployments)
        assert sum(report.per_deployment.values()) == len(jobs)

    def test_parallel_mode_completes_too(self, evaluation_setup, clock):
        control, system, evaluation, jobs, deployments = evaluation_setup
        fleet = AgentFleet(control, system.id, deployments, SleepAgent, clock=clock)
        report = fleet.drive_evaluation(evaluation.id, parallel=True)
        assert report.jobs_finished == len(jobs)

    def test_drive_until_idle_handles_multiple_evaluations(self, evaluation_setup, clock,
                                                           admin):
        control, system, first_evaluation, _, deployments = evaluation_setup
        experiment2 = control.experiments.create(
            control.projects.list()[0].id, system.id, "second",
            parameters={"work_units": [7, 8]})
        second_evaluation, _ = control.evaluations.create(experiment2.id)
        fleet = AgentFleet(control, system.id, deployments, SleepAgent, clock=clock)
        fleet.drive_until_idle()
        assert control.evaluations.is_complete(first_evaluation.id)
        assert control.evaluations.is_complete(second_evaluation.id)

    def test_single_deployment_serialises_jobs(self, control, admin, sleep_system, clock):
        project = control.projects.create("serial", admin)
        experiment = control.experiments.create(project.id, sleep_system.id, "exp",
                                                parameters={"work_units": [1, 2, 3]})
        evaluation, jobs = control.evaluations.create(experiment.id)
        deployment = control.deployments.register(sleep_system.id, "only-node")
        fleet = AgentFleet(control, sleep_system.id, [deployment.id], SleepAgent, clock=clock)
        report = fleet.drive_evaluation(evaluation.id)
        assert report.per_deployment == {deployment.id: 3}
        assert report.rounds >= 3
