"""Tests for the Python Chronos Agent library: connection, runner, metrics, upload."""

from __future__ import annotations

import pytest

from repro.agent.base import ChronosAgent, JobContext
from repro.agent.connection import AgentConnection
from repro.agent.metrics import AgentMetrics
from repro.agent.runner import AgentRunner
from repro.agent.upload import ResultUploader
from repro.agents.testing import FlakyAgent, SleepAgent
from repro.errors import AgentError
from repro.rest.client import RestClient
from repro.util.clock import SimulatedClock


@pytest.fixture
def workspace(control, admin, sleep_system):
    """Project/experiment/evaluation plus a deployment and a connection."""
    project = control.projects.create("agent tests", admin)
    experiment = control.experiments.create(project.id, sleep_system.id, "exp",
                                            parameters={"work_units": [2, 4]})
    evaluation, jobs = control.evaluations.create(experiment.id, max_attempts=2)
    deployment = control.deployments.register(sleep_system.id, "node-1")
    connection = AgentConnection(RestClient(control.api))
    connection.login("admin", "admin")
    return control, sleep_system, deployment, evaluation, connection


class TestAgentMetrics:
    def test_phase_timing(self):
        clock = SimulatedClock()
        metrics = AgentMetrics(clock)
        metrics.start_phase("execution")
        clock.advance(2.0)
        assert metrics.stop_phase("execution") == pytest.approx(2.0)
        assert metrics.as_dict()["execution_seconds"] == pytest.approx(2.0)

    def test_counters(self):
        metrics = AgentMetrics(SimulatedClock())
        metrics.increment("operations", 5)
        metrics.increment("operations")
        metrics.set("threads", 4)
        exported = metrics.as_dict()
        assert exported["operations"] == 6
        assert exported["threads"] == 4
        assert metrics.get("missing", -1) == -1

    def test_stop_unknown_phase_is_zero(self):
        assert AgentMetrics(SimulatedClock()).stop_phase("nope") == 0.0


class TestResultUploader:
    def test_upload_and_read_back(self, tmp_path):
        uploader = ResultUploader(tmp_path)
        path = uploader.upload("job-1", {"throughput": 10}, {"raw.csv": "a,b\n1,2"})
        assert path.endswith("job-1.zip")
        assert uploader.list_uploads() == ["job-1.zip"]
        assert uploader.read("job-1")["throughput"] == 10

    def test_read_missing_raises(self, tmp_path):
        with pytest.raises(AgentError):
            ResultUploader(tmp_path).read("nope")

    def test_upload_requires_job_id(self, tmp_path):
        with pytest.raises(AgentError):
            ResultUploader(tmp_path).upload("", {})


class TestAgentConnection:
    def test_login_sets_token(self, workspace):
        control, system, deployment, _, connection = workspace
        job = connection.claim_next_job(system.id, deployment.id)
        assert job is not None and job["status"] == "running"

    def test_progress_logs_and_result(self, workspace):
        control, system, deployment, _, connection = workspace
        job = connection.claim_next_job(system.id, deployment.id)
        connection.report_progress(job["id"], 42, log="almost half")
        connection.append_log(job["id"], "more detail")
        uploaded = connection.upload_result(job["id"], {"v": 1}, {"metric": 2.0})
        assert uploaded["job"]["status"] == "finished"
        assert control.jobs.get(job["id"]).progress == 100
        assert "almost half" in control.logs.full_text(job["id"])

    def test_report_failure(self, workspace):
        control, system, deployment, _, connection = workspace
        job = connection.claim_next_job(system.id, deployment.id)
        response = connection.report_failure(job["id"], "broke")
        assert response["job"]["status"] in ("scheduled", "failed")

    def test_get_job(self, workspace):
        control, system, deployment, _, connection = workspace
        job = connection.claim_next_job(system.id, deployment.id)
        assert connection.get_job(job["id"])["id"] == job["id"]

    def test_claim_returns_none_when_idle(self, workspace):
        control, system, deployment, evaluation, connection = workspace
        while connection.claim_next_job(system.id, deployment.id):
            job = control.jobs.list(status=None)
            running = [j for j in job if j.status.value == "running"]
            for j in running:
                connection.upload_result(j.id, {"done": True})
        assert connection.claim_next_job(system.id, deployment.id) is None


class TestAgentRunner:
    def test_run_until_idle_finishes_all_jobs(self, workspace, clock):
        control, system, deployment, evaluation, connection = workspace
        agent = SleepAgent()
        runner = AgentRunner(agent, connection, system.id, deployment.id, clock=clock)
        report = runner.run_until_idle()
        assert report.jobs_finished == 2
        assert report.jobs_failed == 0
        assert agent.jobs_executed == 2
        assert control.evaluations.is_complete(evaluation.id)

    def test_lifecycle_order_and_context(self, workspace, clock):
        control, system, deployment, _, connection = workspace
        calls = []

        class RecordingAgent(ChronosAgent):
            def set_up(self, context: JobContext) -> None:
                calls.append("set_up")
                assert context.parameters["work_units"] in (2, 4)

            def warm_up(self, context: JobContext) -> None:
                calls.append("warm_up")

            def execute(self, context: JobContext):
                calls.append("execute")
                return {"ok": True}

            def analyze(self, context: JobContext, raw):
                calls.append("analyze")
                return raw

            def clean_up(self, context: JobContext) -> None:
                calls.append("clean_up")

        runner = AgentRunner(RecordingAgent(), connection, system.id, deployment.id,
                             clock=clock)
        assert runner.run_one() is True
        assert calls == ["set_up", "warm_up", "execute", "analyze", "clean_up"]

    def test_agent_exception_reported_as_failure(self, workspace, clock):
        control, system, deployment, evaluation, connection = workspace
        agent = FlakyAgent(fail_first_attempts=100)  # always fails
        runner = AgentRunner(agent, connection, system.id, deployment.id, clock=clock)
        report = runner.run_until_idle()
        assert report.jobs_failed > 0
        counts = control.jobs.counts_by_status(evaluation.id)
        assert counts["failed"] == 2  # both jobs exhausted their 2 attempts

    def test_non_dict_execute_result_is_failure(self, workspace, clock):
        control, system, deployment, _, connection = workspace

        class BrokenAgent(SleepAgent):
            def execute(self, context):
                return "not a dict"

        runner = AgentRunner(BrokenAgent(), connection, system.id, deployment.id, clock=clock)
        report = runner.run_until_idle()
        assert report.jobs_failed > 0 and report.jobs_finished == 0
        failed = [j for j in control.jobs.list() if j.status.value == "failed"]
        assert failed and "AgentError" in failed[0].error

    def test_run_one_returns_false_when_no_work(self, control, sleep_system, clock):
        deployment = control.deployments.register(sleep_system.id, "lonely-node")
        connection = AgentConnection(RestClient(control.api))
        connection.login("admin", "admin")
        runner = AgentRunner(SleepAgent(), connection, sleep_system.id, deployment.id,
                             clock=clock)
        assert runner.run_one() is False

    def test_extra_result_files_uploaded(self, workspace, clock):
        control, system, deployment, _, connection = workspace

        class FileAgent(SleepAgent):
            def extra_result_files(self, context, result):
                return {"notes.txt": "hello"}

        runner = AgentRunner(FileAgent(), connection, system.id, deployment.id, clock=clock)
        runner.run_one()
        finished = [j for j in control.jobs.list() if j.status.value == "finished"]
        result = control.results.for_job(finished[0].id)
        # Without an archive directory the file is not persisted but the result exists.
        assert result.data["work_done"] == 2

    def test_metrics_attached_to_result(self, workspace, clock):
        control, system, deployment, _, connection = workspace
        runner = AgentRunner(SleepAgent(), connection, system.id, deployment.id, clock=clock)
        runner.run_one()
        finished = [j for j in control.jobs.list() if j.status.value == "finished"]
        result = control.results.for_job(finished[0].id)
        assert "execution_seconds" in result.metrics
        assert result.metrics["work_done"] == 2
