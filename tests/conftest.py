"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.agents.mongodb_agent import register_mongodb_system
from repro.agents.testing import register_sleep_system
from repro.core.control import ChronosControl
from repro.util.clock import SimulatedClock


@pytest.fixture
def clock() -> SimulatedClock:
    """A simulated clock starting at t=0."""
    return SimulatedClock()


@pytest.fixture
def control(clock: SimulatedClock) -> ChronosControl:
    """An in-memory Chronos Control instance with the default admin user."""
    return ChronosControl(clock=clock, create_admin=True)


@pytest.fixture
def admin(control: ChronosControl):
    """The default admin user."""
    return control.users.get_by_username("admin")


@pytest.fixture
def admin_token(control: ChronosControl) -> str:
    """A valid session token for the admin user."""
    return control.users.login("admin", "admin")


@pytest.fixture
def mongodb_system(control: ChronosControl, admin):
    """The registered MongoDB SuE."""
    return register_mongodb_system(control, owner_id=admin.id)


@pytest.fixture
def sleep_system(control: ChronosControl, admin):
    """The trivial SuE used by scheduling/failure tests."""
    return register_sleep_system(control, owner_id=admin.id)


@pytest.fixture
def small_demo_parameters() -> dict:
    """Demo experiment parameters small enough for fast tests."""
    return {
        "storage_engine": ["wiredtiger", "mmapv1"],
        "threads": [1, 4],
        "record_count": 60,
        "operation_count": 120,
        "query_mix": "50:50",
        "distribution": "zipfian",
    }
