"""Integration tests for Chronos Control durability and REST-driven recovery."""

from __future__ import annotations

import pytest

from repro.agent.fleet import AgentFleet
from repro.agents.testing import FlakyAgent, SleepAgent, register_sleep_system
from repro.core.control import ChronosControl
from repro.core.enums import JobStatus
from repro.rest.client import RestClient
from repro.util.clock import SimulatedClock


class TestControlRestart:
    def test_metadata_survives_restart(self, tmp_path):
        """Chronos Control can be stopped and restarted without losing state."""
        first = ChronosControl(data_directory=tmp_path, clock=SimulatedClock())
        admin = first.users.get_by_username("admin")
        system = register_sleep_system(first, owner_id=admin.id)
        deployment = first.deployments.register(system.id, "node-1")
        project = first.projects.create("durable", admin)
        experiment = first.experiments.create(project.id, system.id, "exp",
                                              parameters={"work_units": [1, 2, 3]})
        evaluation, _ = first.evaluations.create(experiment.id)
        job = first.claim_next_job(system.id, deployment.id)
        first.report_success(job.id, {"done": 1})
        first.checkpoint()
        job2 = first.claim_next_job(system.id, deployment.id)
        first.report_success(job2.id, {"done": 2})
        first.close()

        second = ChronosControl(data_directory=tmp_path, clock=SimulatedClock(),
                                create_admin=False)
        assert second.projects.find_by_name("durable") is not None
        jobs = second.evaluations.jobs(evaluation.id)
        finished = [j for j in jobs if j.status is JobStatus.FINISHED]
        assert len(finished) == 2
        assert second.results.for_job(job.id).data == {"done": 1}
        assert len(second.evaluations.jobs(evaluation.id)) == 3

    def test_interrupted_evaluation_resumes_after_restart(self, tmp_path):
        clock = SimulatedClock()
        first = ChronosControl(data_directory=tmp_path, clock=clock, heartbeat_timeout=30)
        admin = first.users.get_by_username("admin")
        system = register_sleep_system(first, owner_id=admin.id)
        deployment = first.deployments.register(system.id, "node-1")
        project = first.projects.create("resume", admin)
        experiment = first.experiments.create(project.id, system.id, "exp",
                                              parameters={"work_units": [1, 2]})
        evaluation, _ = first.evaluations.create(experiment.id)
        first.claim_next_job(system.id, deployment.id)  # claimed, never finished
        first.close()

        # Restart: the claimed job is still "running" with a stale heartbeat.
        clock2 = SimulatedClock(start=1000.0)
        second = ChronosControl(data_directory=tmp_path, clock=clock2,
                                heartbeat_timeout=30, create_admin=False)
        report = second.recover_stalled_jobs()
        assert report.total_recovered >= 1
        fleet = AgentFleet(second, system.id, [deployment.id], SleepAgent, clock=clock2)
        fleet.drive_evaluation(evaluation.id)
        assert second.evaluations.get(evaluation.id).status.value == "finished"


class TestRestDrivenRecovery:
    def test_failed_jobs_recovered_through_the_api(self, control, admin, sleep_system, clock):
        deployment = control.deployments.register(sleep_system.id, "node-1")
        project = control.projects.create("rest recovery", admin)
        experiment = control.experiments.create(project.id, sleep_system.id, "exp",
                                                parameters={"work_units": [1, 2, 3]})
        evaluation, _ = control.evaluations.create(experiment.id, max_attempts=3)

        flaky = FlakyAgent(fail_first_attempts=2)
        fleet = AgentFleet(control, sleep_system.id, [deployment.id], lambda: flaky,
                           clock=clock)
        fleet.drive_evaluation(evaluation.id)

        token = control.users.login("admin", "admin")
        client = RestClient(control.api, token=token)
        progress = client.get(f"/api/v1/evaluations/{evaluation.id}/progress").json()
        assert progress["counts"]["finished"] == 3
        assert flaky.failures_injected == 2

    def test_multiple_sues_one_control_instance(self, control, admin, clock):
        """Requirement (ii): different SuEs evaluated through the same instance."""
        from repro.agents.kvstore_agent import KeyValueStoreAgent, register_kvstore_system
        from repro.agents.mongodb_agent import MongoDbAgent, register_mongodb_system

        mongodb = register_mongodb_system(control, owner_id=admin.id)
        kvstore = register_kvstore_system(control, owner_id=admin.id)
        project = control.projects.create("multi", admin)

        mongo_deploy = control.deployments.register(mongodb.id, "mongo-node")
        kv_deploy = control.deployments.register(kvstore.id, "kv-node")

        mongo_exp = control.experiments.create(project.id, mongodb.id, "m", parameters={
            "storage_engine": ["wiredtiger"], "threads": [1], "record_count": 40,
            "operation_count": 80, "query_mix": "90:10", "distribution": "uniform"})
        kv_exp = control.experiments.create(project.id, kvstore.id, "k", parameters={
            "engine": ["hash", "log"], "key_count": 50, "operation_count": 100,
            "value_size": 64, "write_fraction": 0.5})

        mongo_eval, _ = control.evaluations.create(mongo_exp.id)
        kv_eval, _ = control.evaluations.create(kv_exp.id)

        AgentFleet(control, mongodb.id, [mongo_deploy.id], MongoDbAgent,
                   clock=clock).drive_evaluation(mongo_eval.id)
        AgentFleet(control, kvstore.id, [kv_deploy.id], KeyValueStoreAgent,
                   clock=clock).drive_evaluation(kv_eval.id)

        assert control.evaluations.get(mongo_eval.id).status.value == "finished"
        assert control.evaluations.get(kv_eval.id).status.value == "finished"
        statistics = control.statistics()
        assert statistics["systems"] == 2
        assert statistics["jobs"]["finished"] == 3
