"""End-to-end integration test of the paper's demonstration workflow."""

from __future__ import annotations

import pytest

from repro.analysis.compare import compare_groups
from repro.core.enums import EvaluationStatus, JobStatus
from repro.demo import prepare_demo, run_demo


@pytest.fixture(scope="module")
def completed_demo():
    """Run the complete demo once (shared by the assertions below)."""
    setup = prepare_demo(parameters={
        "storage_engine": ["wiredtiger", "mmapv1"],
        "threads": {"start": 1, "stop": 8, "step": 2, "scale": "geometric"},
        "record_count": 80,
        "operation_count": 160,
        "query_mix": "50:50",
        "distribution": "zipfian",
    }, deployments_per_engine_sweep=2)
    return run_demo(setup)


class TestDemoWorkflow:
    def test_evaluation_space_is_engines_times_threads(self, completed_demo):
        control = completed_demo.control
        assert control.experiments.space_size(completed_demo.experiment.id) == 8

    def test_every_job_finished(self, completed_demo):
        control = completed_demo.control
        jobs = control.evaluations.jobs(completed_demo.evaluation.id)
        assert len(jobs) == 8
        assert all(job.status is JobStatus.FINISHED for job in jobs)
        assert completed_demo.report.jobs_failed == 0

    def test_evaluation_marked_finished(self, completed_demo):
        control = completed_demo.control
        evaluation = control.evaluations.get(completed_demo.evaluation.id)
        assert evaluation.status is EvaluationStatus.FINISHED

    def test_every_job_has_result_with_metrics(self, completed_demo):
        control = completed_demo.control
        for job in control.evaluations.jobs(completed_demo.evaluation.id):
            result = control.results.for_job(job.id)
            assert result.data["throughput_ops_per_sec"] > 0
            assert result.data["parameters"]["storage_engine"] in ("wiredtiger", "mmapv1")
            assert "execution_seconds" in result.metrics

    def test_jobs_have_logs_and_timelines(self, completed_demo):
        control = completed_demo.control
        job = control.evaluations.jobs(completed_demo.evaluation.id)[0]
        log = control.logs.full_text(job.id)
        assert "started" in log and "finished" in log
        kinds = [e.event_type.value for e in control.events.timeline("job", job.id)]
        assert kinds[0] == "scheduled" and kinds[-1] == "finished"
        assert "result_uploaded" in kinds

    def test_work_parallelised_over_both_deployments(self, completed_demo):
        assert len(completed_demo.report.per_deployment) == 2
        assert all(count > 0 for count in completed_demo.report.per_deployment.values())

    def test_comparative_shape_wiredtiger_wins_overall(self, completed_demo):
        comparison = compare_groups(completed_demo.results,
                                    "parameters.storage_engine",
                                    "throughput_ops_per_sec")
        assert comparison["winner"] == "wiredtiger"
        assert comparison["factor"] > 1.0

    def test_wiredtiger_scales_with_threads_mmapv1_plateaus(self, completed_demo):
        from repro.analysis.aggregate import pivot

        series = pivot(completed_demo.results, "parameters.threads",
                       "throughput_ops_per_sec", "parameters.storage_engine")
        wired = dict(series["wiredtiger"])
        mmap = dict(series["mmapv1"])
        assert wired[8] > wired[1] * 3          # near-linear scaling
        assert mmap[8] < mmap[1] * 2.5          # collection lock plateaus
        assert wired[8] > mmap[8] * 2           # the gap at high concurrency

    def test_storage_footprint_smaller_under_compression(self, completed_demo):
        wired_bytes = [r["storage_bytes"] for r in completed_demo.results
                       if r["parameters"]["storage_engine"] == "wiredtiger"]
        mmap_bytes = [r["storage_bytes"] for r in completed_demo.results
                      if r["parameters"]["storage_engine"] == "mmapv1"]
        assert max(wired_bytes) < min(mmap_bytes)

    def test_project_archive_bundle_contains_all_results(self, completed_demo, tmp_path):
        control = completed_demo.control
        path = control.archive.archive_project(completed_demo.project.id, tmp_path)
        bundle = control.archive.load_bundle(path)
        jobs_in_bundle = bundle["experiments"][0]["evaluations"][0]["jobs"]
        assert len(jobs_in_bundle) == 8
        assert all(entry["result"] is not None for entry in jobs_in_bundle)
