"""End-to-end: a control-plane evaluation comparing deployment topologies.

The acceptance criterion of the topology refactor: project -> system ->
deployments carrying topology specs -> scheduled jobs -> uploaded results,
for the standalone, replica-set, sharded and replicated-cluster shapes --
with the deployment's declared :class:`TopologySpec` (not job parameters)
deciding what the agent builds, and every deployment built through
``build_topology``.
"""

from __future__ import annotations

import pytest

from repro.demo import TOPOLOGY_COMPARISON, run_topology_comparison
from repro.docstore.topology import TopologySpec

SMALL_PARAMETERS = {
    "storage_engine": "wiredtiger",
    "threads": 2,
    "record_count": 60,
    "operation_count": 120,
    "query_mix": "50:50",
    "distribution": "zipfian",
    "seed": 9,
}


@pytest.fixture(scope="module")
def comparison():
    return run_topology_comparison(parameters=dict(SMALL_PARAMETERS))


class TestTopologyComparison:
    def test_every_topology_runs_to_uploaded_results(self, comparison):
        assert set(comparison.results) == set(TOPOLOGY_COMPARISON)
        for name, report in comparison.reports.items():
            assert report.jobs_failed == 0, f"{name} failed jobs"
            assert report.jobs_finished == 1
            assert len(comparison.results[name]) == 1

    def test_deployments_carry_their_declared_topology(self, comparison):
        for name, spec in TOPOLOGY_COMPARISON.items():
            deployment = comparison.control.deployments.get(
                comparison.deployment_ids[name])
            assert deployment.topology_spec() == spec

    def test_results_report_the_declared_topology(self, comparison):
        for name, spec in TOPOLOGY_COMPARISON.items():
            result = comparison.results[name][0]
            assert result["topology"] == spec.kind
            assert result["shards"] == spec.shards
            assert result["replicas"] == spec.replicas

    def test_jobs_contain_no_topology_parameters(self, comparison):
        """The shape lives on the deployment, not in the parameter space."""
        topology_fields = set(TopologySpec().as_dict()) - {"storage_engine", "kind"}
        for name, evaluation in comparison.evaluations.items():
            for job in comparison.control.evaluations.jobs(evaluation.id):
                assert not topology_fields & set(job.parameters), name

    def test_identical_seeded_workload_converges_across_topologies(self, comparison):
        counts = {name: results[0]["engine_statistics"]["documents"]
                  for name, results in comparison.results.items()}
        assert len(set(counts.values())) == 1, counts

    def test_replication_majority_costs_latency(self, comparison):
        standalone = comparison.results["standalone"][0]
        replicated = comparison.results["replica-set"][0]
        assert replicated["latency_avg_ms"] > standalone["latency_avg_ms"]

    def test_results_archived_per_evaluation(self, comparison):
        for name, evaluation in comparison.evaluations.items():
            jobs = comparison.control.evaluations.jobs(evaluation.id)
            results = comparison.control.results.for_jobs([j.id for j in jobs])
            assert len(results) == 1
            assert results[0].data["operations"] == SMALL_PARAMETERS["operation_count"]
