"""Tests for the replicated-deployment Chronos agent and its registration."""

from __future__ import annotations

from repro.agent.base import JobContext
from repro.agent.metrics import AgentMetrics
from repro.agents.replicated_agent import (
    ReplicatedMongoAgent,
    parse_write_concern,
    register_replicated_mongodb_system,
)
from repro.util.clock import SimulatedClock


def make_context(parameters: dict) -> JobContext:
    return JobContext(
        job_id="job-replicated",
        parameters=parameters,
        deployment={"host": "test"},
        metrics=AgentMetrics(SimulatedClock()),
    )


class TestReplicatedMongoAgent:
    PARAMETERS = {
        "storage_engine": "wiredtiger",
        "replicas": 3,
        "write_concern": "majority",
        "read_preference": "primary",
        "replication_lag": 2,
        "threads": 4,
        "record_count": 80,
        "operation_count": 160,
        "query_mix": "80:20",
        "distribution": "uniform",
        "seed": 1,
    }

    def run_agent(self, parameters):
        agent = ReplicatedMongoAgent()
        context = make_context(parameters)
        agent.set_up(context)
        agent.warm_up(context)
        raw = agent.execute(context)
        result = agent.analyze(context, raw)
        agent.clean_up(context)
        return agent, context, result

    def test_full_lifecycle_produces_replicated_result(self):
        __, context, result = self.run_agent(self.PARAMETERS)
        assert result["engine"] == "wiredtiger"
        assert result["replicas"] == 3
        assert result["operations"] == 160
        assert result["throughput_ops_per_sec"] > 0
        assert result["failovers"] == 0
        assert result["rolled_back_entries"] == 0
        assert context.state == {}  # clean_up cleared the benchmark

    def test_write_concern_parsing(self):
        assert parse_write_concern("majority") == "majority"
        assert parse_write_concern("2") == 2
        assert parse_write_concern(1) == 1

    def test_secondary_reads_report_staleness(self):
        parameters = dict(self.PARAMETERS, read_preference="secondary",
                          write_concern="1", replication_lag=4)
        __, __, result = self.run_agent(parameters)
        assert result["staleness_mean"] > 0

    def test_kill_primary_mid_run_fails_over_without_loss(self):
        parameters = dict(self.PARAMETERS, kill_primary_at=0.5)
        agent, context, result = self.run_agent(parameters)
        assert result["failovers"] == 1
        assert result["rolled_back_entries"] == 0  # w=majority
        assert result["failure_events"][0]["event"] == "kill"
        files = agent.extra_result_files(context, result)
        assert "failovers: 1" in files["replication_status.txt"]

    def test_single_member_degenerates_to_standalone_behaviour(self):
        parameters = dict(self.PARAMETERS, replicas=1, write_concern="1",
                          kill_primary_at=0.0)
        __, __, result = self.run_agent(parameters)
        assert result["replicas"] == 1
        assert result["failovers"] == 0

    def test_replicated_and_single_results_hold_the_same_documents(self):
        __, __, replicated = self.run_agent(self.PARAMETERS)
        single = dict(self.PARAMETERS, replicas=1, write_concern="1")
        __, __, baseline = self.run_agent(single)
        assert (replicated["engine_statistics"]["documents"]
                == baseline["engine_statistics"]["documents"])

    def test_system_registration_defines_replication_axes(self, control, admin):
        system = register_replicated_mongodb_system(control, owner_id=admin.id)
        names = [d.name for d in control.systems.parameter_definitions(system.id)]
        assert {"storage_engine", "replicas", "write_concern",
                "read_preference", "kill_primary_at"} <= set(names)
        diagrams = control.systems.diagrams(system.id)
        assert any(d["y_field"] == "latency_avg_ms" for d in diagrams)
        assert any(d["y_field"] == "rolled_back_entries" for d in diagrams)
