"""Tests for the concrete agents: MongoDB demo agent, key-value agent, test agents."""

from __future__ import annotations

import pytest

from repro.agent.base import JobContext
from repro.agent.metrics import AgentMetrics
from repro.agents.kvstore_agent import KeyValueStoreAgent, register_kvstore_system
from repro.agents.mongodb_agent import MongoDbAgent, register_mongodb_system
from repro.agents.testing import CrashingAgent, FlakyAgent, SleepAgent
from repro.errors import AgentError
from repro.util.clock import SimulatedClock


def make_context(parameters: dict) -> JobContext:
    return JobContext(
        job_id="job-test",
        parameters=parameters,
        deployment={"host": "test"},
        metrics=AgentMetrics(SimulatedClock()),
    )


class TestMongoDbAgent:
    PARAMETERS = {
        "storage_engine": "wiredtiger",
        "threads": 2,
        "record_count": 50,
        "operation_count": 100,
        "query_mix": "80:20",
        "distribution": "uniform",
        "seed": 1,
    }

    def run_agent(self, parameters):
        agent = MongoDbAgent()
        context = make_context(parameters)
        agent.set_up(context)
        agent.warm_up(context)
        raw = agent.execute(context)
        result = agent.analyze(context, raw)
        agent.clean_up(context)
        return agent, context, result

    def test_full_lifecycle_produces_result(self):
        __, context, result = self.run_agent(self.PARAMETERS)
        assert result["engine"] == "wiredtiger"
        assert result["operations"] == 100
        assert result["throughput_ops_per_sec"] > 0
        assert result["parameters"]["threads"] == 2
        assert "storage_bytes" in result
        assert context.state == {}  # clean_up cleared the benchmark

    def test_mmapv1_engine_selected_from_parameters(self):
        parameters = dict(self.PARAMETERS, storage_engine="mmapv1")
        __, __, result = self.run_agent(parameters)
        assert result["engine"] == "mmapv1"

    def test_ycsb_workload_parameter_overrides_mix(self):
        parameters = dict(self.PARAMETERS, ycsb_workload="C")
        __, __, result = self.run_agent(parameters)
        assert result["operation_counts"]["update"] == 0

    def test_metrics_collected(self):
        __, context, __ = self.run_agent(self.PARAMETERS)
        metrics = context.metrics.as_dict()
        assert metrics["records_loaded"] == 50
        assert metrics["operations"] == 100

    def test_extra_result_files_render_statistics(self):
        agent, context, result = self.run_agent(self.PARAMETERS)
        files = agent.extra_result_files(context, result)
        assert "engine_statistics.txt" in files
        assert "engine" in files["engine_statistics.txt"]

    def test_system_registration_defines_demo_parameters(self, control, admin):
        system = register_mongodb_system(control, owner_id=admin.id)
        names = [d.name for d in control.systems.parameter_definitions(system.id)]
        assert {"storage_engine", "threads", "query_mix", "distribution"} <= set(names)
        diagrams = control.systems.diagrams(system.id)
        assert any(d["kind"] == "line" for d in diagrams)
        assert any(d["kind"] == "bar" for d in diagrams)


class TestKeyValueStoreAgent:
    PARAMETERS = {"engine": "log", "key_count": 100, "operation_count": 200,
                  "value_size": 64, "write_fraction": 0.5, "seed": 2}

    def test_lifecycle(self):
        agent = KeyValueStoreAgent()
        context = make_context(self.PARAMETERS)
        agent.set_up(context)
        agent.warm_up(context)
        result = agent.analyze(context, agent.execute(context))
        agent.clean_up(context)
        assert result["engine"] == "log"
        assert result["reads"] + result["writes"] == 200
        assert result["throughput_ops_per_sec"] > 0
        assert result["parameters"]["engine"] == "log"

    def test_hash_engine(self):
        agent = KeyValueStoreAgent()
        context = make_context(dict(self.PARAMETERS, engine="hash"))
        agent.set_up(context)
        result = agent.execute(context)
        assert result["engine"] == "hash"

    def test_registration(self, control, admin):
        system = register_kvstore_system(control, owner_id=admin.id)
        names = [d.name for d in control.systems.parameter_definitions(system.id)]
        assert "engine" in names and "write_fraction" in names


class TestTestingAgents:
    def test_sleep_agent_reports_work(self):
        agent = SleepAgent()
        context = make_context({"work_units": 7})
        agent.set_up(context)
        result = agent.execute(context)
        assert result["work_done"] == 7
        assert agent.jobs_executed == 1

    def test_flaky_agent_fails_first_attempts(self):
        agent = FlakyAgent(fail_first_attempts=2)
        context = make_context({"work_units": 1})
        agent.set_up(context)
        with pytest.raises(AgentError):
            agent.execute(context)
        with pytest.raises(AgentError):
            agent.execute(context)
        assert agent.execute(context)["work_done"] == 1
        assert agent.failures_injected == 2

    def test_flaky_agent_failure_rate_deterministic(self):
        first = FlakyAgent(failure_rate=0.5, seed=9)
        second = FlakyAgent(failure_rate=0.5, seed=9)

        def outcomes(agent):
            results = []
            context = make_context({"work_units": 1})
            agent.set_up(context)
            for _ in range(10):
                try:
                    agent.execute(context)
                    results.append(True)
                except AgentError:
                    results.append(False)
            return results

        assert outcomes(first) == outcomes(second)

    def test_crashing_agent_raises_system_exit(self):
        agent = CrashingAgent()
        context = make_context({"work_units": 1})
        agent.set_up(context)
        with pytest.raises(SystemExit):
            agent.execute(context)
