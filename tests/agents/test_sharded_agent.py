"""Tests for the sharded-deployment Chronos agent and its system registration."""

from __future__ import annotations

from repro.agent.base import JobContext
from repro.agent.metrics import AgentMetrics
from repro.agents.sharded_agent import (
    ShardedMongoAgent,
    register_sharded_mongodb_system,
)
from repro.util.clock import SimulatedClock


def make_context(parameters: dict) -> JobContext:
    return JobContext(
        job_id="job-sharded",
        parameters=parameters,
        deployment={"host": "test"},
        metrics=AgentMetrics(SimulatedClock()),
    )


class TestShardedMongoAgent:
    PARAMETERS = {
        "storage_engine": "wiredtiger",
        "shards": 4,
        "shard_strategy": "hash",
        "threads": 4,
        "record_count": 80,
        "operation_count": 160,
        "query_mix": "80:20",
        "distribution": "uniform",
        "seed": 1,
    }

    def run_agent(self, parameters):
        agent = ShardedMongoAgent()
        context = make_context(parameters)
        agent.set_up(context)
        agent.warm_up(context)
        raw = agent.execute(context)
        result = agent.analyze(context, raw)
        agent.clean_up(context)
        return agent, context, result

    def test_full_lifecycle_produces_sharded_result(self):
        __, context, result = self.run_agent(self.PARAMETERS)
        assert result["engine"] == "wiredtiger"
        assert result["shards"] == 4
        assert result["operations"] == 160
        assert result["throughput_ops_per_sec"] > 0
        assert result["chunks"] >= 4
        assert "migrations" in result and "chunk_distribution" in result
        assert context.state == {}  # clean_up cleared the benchmark

    def test_range_strategy_selected_from_parameters(self):
        parameters = dict(self.PARAMETERS, shard_strategy="range")
        __, __, result = self.run_agent(parameters)
        assert result["engine_statistics"]["strategy"] == "range"

    def test_single_shard_degenerates_to_one_server(self):
        parameters = dict(self.PARAMETERS, shards=1)
        __, __, result = self.run_agent(parameters)
        assert result["shards"] == 1
        assert result["chunks"] == 1  # single-server stats carry no chunk table

    def test_ycsb_workload_parameter_overrides_mix(self):
        parameters = dict(self.PARAMETERS, ycsb_workload="C")
        __, __, result = self.run_agent(parameters)
        assert result["operation_counts"]["update"] == 0

    def test_sharded_and_single_results_hold_the_same_documents(self):
        __, __, sharded = self.run_agent(self.PARAMETERS)
        __, __, single = self.run_agent(dict(self.PARAMETERS, shards=1))
        assert (sharded["engine_statistics"]["documents"]
                == single["engine_statistics"]["documents"])

    def test_deployment_declared_topology_outranks_parameter_defaults(self):
        # Job parameter sets materialize the registration's defaults for
        # every parameter an experiment leaves unset (shard_key="_id",
        # shards=2 here); a topology declared on the deployment must not be
        # reshaped by them.
        agent = ShardedMongoAgent()
        context = JobContext(
            job_id="job-declared",
            parameters={"storage_engine": "wiredtiger", "shards": 2,
                        "shard_key": "_id", "shard_strategy": "hash",
                        "threads": 2, "record_count": 40,
                        "operation_count": 60, "query_mix": "80:20",
                        "distribution": "uniform", "seed": 1},
            deployment={"host": "test", "topology": {
                "shards": 4, "shard_key": "region",
                "shard_strategy": "range"}},
            metrics=AgentMetrics(SimulatedClock()),
        )
        topology = agent.topology_for(context)
        assert topology.shards == 4
        assert topology.shard_key == "region"
        assert topology.shard_strategy == "range"

    def test_sparse_declaration_leaves_undeclared_fields_to_the_job(self):
        # A shape-only declaration ({"shards": 4}) must not pin the storage
        # engine: an experiment sweeping it still works on that deployment.
        agent = ShardedMongoAgent()
        context = JobContext(
            job_id="job-sparse",
            parameters={"storage_engine": "mmapv1", "shards": 2},
            deployment={"host": "test", "topology": {"shards": 4}},
            metrics=AgentMetrics(SimulatedClock()),
        )
        topology = agent.topology_for(context)
        assert topology.shards == 4
        assert topology.storage_engine == "mmapv1"

    def test_extra_result_files_render_cluster_statistics(self):
        agent, context, result = self.run_agent(self.PARAMETERS)
        files = agent.extra_result_files(context, result)
        assert "cluster_statistics.txt" in files
        assert "chunks:" in files["cluster_statistics.txt"]

    def test_system_registration_defines_scale_out_axes(self, control, admin):
        system = register_sharded_mongodb_system(control, owner_id=admin.id)
        names = [d.name for d in control.systems.parameter_definitions(system.id)]
        assert {"storage_engine", "shards", "shard_strategy", "threads"} <= set(names)
        diagrams = control.systems.diagrams(system.id)
        assert any(d["y_field"] == "throughput_ops_per_sec" for d in diagrams)
        assert any(d["y_field"] == "migrations" for d in diagrams)
