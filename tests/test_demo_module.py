"""Tests for the demo helper module and the package entry points."""

from __future__ import annotations

import pytest

import repro
from repro.core.control import ChronosControl
from repro.demo import (
    DEFAULT_DEMO_PARAMETERS,
    build_demo_control,
    prepare_demo,
    run_demo,
    run_full_demo,
)
from repro.util.clock import SimulatedClock


class TestPackageSurface:
    def test_version_exposed(self):
        assert repro.__version__
        assert repro.ChronosControl is ChronosControl

    def test_default_demo_parameters_cover_both_engines(self):
        assert DEFAULT_DEMO_PARAMETERS["storage_engine"] == ["wiredtiger", "mmapv1"]
        assert "query_mix" in DEFAULT_DEMO_PARAMETERS


class TestPrepareDemo:
    def test_build_demo_control_uses_simulated_clock(self):
        control = build_demo_control()
        assert isinstance(control.clock, SimulatedClock)

    def test_prepare_creates_all_entities(self):
        setup = prepare_demo(parameters={
            "storage_engine": ["wiredtiger"],
            "threads": [1, 2],
            "record_count": 40,
            "operation_count": 80,
            "query_mix": "90:10",
            "distribution": "uniform",
        })
        assert setup.system.name == "mongodb"
        assert setup.project.name == "MongoDB storage engines"
        assert len(setup.deployment_ids) == 1
        jobs = setup.control.evaluations.jobs(setup.evaluation.id)
        assert len(jobs) == 2

    def test_prepare_reuses_registered_system(self):
        control = build_demo_control()
        first = prepare_demo(control=control, parameters={
            "storage_engine": ["wiredtiger"], "threads": [1], "record_count": 30,
            "operation_count": 60, "query_mix": "90:10", "distribution": "uniform"})
        second = prepare_demo(control=control, parameters={
            "storage_engine": ["mmapv1"], "threads": [1], "record_count": 30,
            "operation_count": 60, "query_mix": "90:10", "distribution": "uniform"})
        assert first.system.id == second.system.id
        assert len(control.systems.list()) == 1

    def test_multiple_deployments_created_on_request(self):
        setup = prepare_demo(parameters={
            "storage_engine": ["wiredtiger"], "threads": [1], "record_count": 30,
            "operation_count": 60, "query_mix": "90:10", "distribution": "uniform"},
            deployments_per_engine_sweep=3)
        assert len(setup.deployment_ids) == 3


class TestRunDemo:
    @pytest.fixture(scope="class")
    def completed(self):
        return run_full_demo(parameters={
            "storage_engine": ["wiredtiger", "mmapv1"],
            "threads": [1, 4],
            "record_count": 50,
            "operation_count": 100,
            "query_mix": "50:50",
            "distribution": "zipfian",
        }, deployments=2)

    def test_all_jobs_finish(self, completed):
        assert completed.report.jobs_finished == 4
        assert completed.report.jobs_failed == 0

    def test_results_attached_to_setup(self, completed):
        assert len(completed.results) == 4
        engines = {result["parameters"]["storage_engine"] for result in completed.results}
        assert engines == {"wiredtiger", "mmapv1"}

    def test_run_demo_is_idempotent_per_evaluation(self, completed):
        # Driving the same evaluation again finds no more work.
        again = run_demo(completed)
        assert again.report.jobs_finished == 4
