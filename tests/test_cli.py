"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        arguments = build_parser().parse_args(["demo"])
        assert arguments.threads == [1, 2, 4, 8, 16]
        assert arguments.query_mix == "50:50"

    def test_demo_custom_arguments(self):
        arguments = build_parser().parse_args([
            "demo", "--threads", "1", "4", "--records", "50",
            "--query-mix", "95:5", "--distribution", "uniform", "--deployments", "2"])
        assert arguments.threads == [1, 4]
        assert arguments.deployments == 2

    def test_invalid_distribution_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--distribution", "gaussian"])


class TestCommands:
    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "Chronos" in output and "E1-E12" in output
        assert "docstore.replication" in output
        assert "docstore.topology" in output

    def test_demo_command_prints_table_and_winner(self, capsys):
        exit_code = main(["demo", "--threads", "1", "4", "--records", "60",
                          "--operations", "120", "--no-diagrams"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "finished: 4, failed: 0" in output
        assert "winner: wiredtiger" in output
        assert "| wiredtiger | 4 |" in output or "| wiredtiger | 1 |" in output

    def test_demo_command_with_diagrams(self, capsys):
        exit_code = main(["demo", "--threads", "1", "--records", "40",
                          "--operations", "80"])
        assert exit_code == 0
        assert "Throughput vs threads" in capsys.readouterr().out

    def test_demo_command_writes_report(self, capsys, tmp_path):
        exit_code = main(["demo", "--threads", "1", "--records", "40",
                          "--operations", "80", "--no-diagrams",
                          "--report-dir", str(tmp_path)])
        assert exit_code == 0
        assert "report written to" in capsys.readouterr().out
        assert list(tmp_path.glob("*-report.md"))

    def test_workloads_command(self, capsys):
        exit_code = main(["workloads", "--records", "40", "--operations", "80",
                          "--threads", "4"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for workload in ("A", "B", "C", "D", "E", "F"):
            assert f"| {workload} |" in output

    def test_sharded_command_sweeps_shard_counts(self, capsys):
        exit_code = main(["sharded", "--shards", "1", "2", "--records", "60",
                          "--operations", "120", "--workload", "A"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "YCSB workload A" in output
        assert "| 1 |" in output and "| 2 |" in output

    def test_sharded_command_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sharded", "--strategy", "random"])

    def test_replicated_command_sweeps_concerns_and_preferences(self, capsys):
        exit_code = main(["replicated", "--records", "60", "--operations", "120",
                          "--write-concerns", "1", "majority",
                          "--read-preferences", "primary", "secondary",
                          "--kill-primary"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "| majority | secondary |" in output
        assert "killing the primary mid-run" in output
        # Every majority row reports zero lost writes despite the crash.
        for line in output.splitlines():
            if line.startswith("| majority"):
                assert line.rstrip().endswith("| 0 |")

    def test_replicated_command_rejects_unknown_preference(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replicated", "--read-preferences", "backup"])

    def test_topologies_command_compares_every_shape(self, capsys):
        exit_code = main(["topologies", "--records", "60", "--operations", "120",
                          "--threads", "4"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for kind in ("standalone", "replica_set", "sharded_cluster",
                     "replicated_cluster"):
            assert kind in output
        assert "failed jobs: 0" in output


class TestExplainCommand:
    def test_explain_reports_index_range(self, capsys):
        exit_code = main(["explain", "--records", "200",
                          "--query", '{"counter": {"$gte": 150}}'])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert '"access_path": "INDEX_RANGE"' in output
        assert '"FULL_SCAN"' in output  # the considered alternative

    def test_explain_full_scan_without_index(self, capsys):
        exit_code = main(["explain", "--records", "50", "--index", "category",
                          "--query", '{"counter": {"$gte": 10}}'])
        assert exit_code == 0
        assert '"access_path": "FULL_SCAN"' in capsys.readouterr().out

    def test_explain_sharded_reports_targeting(self, capsys):
        exit_code = main(["explain", "--records", "120", "--shards", "2",
                          "--strategy", "range",
                          "--query", '{"_id": {"$gte": "user90"}}'])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert '"targeting": "targeted"' in output
        assert '"sharded": true' in output

    def test_explain_rejects_invalid_json(self, capsys):
        assert main(["explain", "--query", "{not json"]) == 2
        assert "invalid --query JSON" in capsys.readouterr().err
