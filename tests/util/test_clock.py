"""Tests for the clock abstraction and stopwatch."""

from __future__ import annotations

import pytest

from repro.util.clock import SimulatedClock, Stopwatch, SystemClock


class TestSimulatedClock:
    def test_starts_at_configured_time(self):
        assert SimulatedClock().now() == 0.0
        assert SimulatedClock(start=100.0).now() == 100.0

    def test_advance_moves_time_forward(self):
        clock = SimulatedClock()
        clock.advance(5.0)
        assert clock.now() == 5.0

    def test_sleep_advances_without_blocking(self):
        clock = SimulatedClock()
        clock.sleep(3600.0)
        assert clock.now() == 3600.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_elapsed_since(self):
        clock = SimulatedClock()
        start = clock.now()
        clock.advance(2.5)
        assert clock.elapsed_since(start) == pytest.approx(2.5)


class TestSystemClock:
    def test_now_is_monotonic(self):
        clock = SystemClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_sleep_accepts_zero_and_negative(self):
        clock = SystemClock()
        clock.sleep(0)
        clock.sleep(-1)  # must not raise


class TestStopwatch:
    def test_measures_elapsed_simulated_time(self):
        clock = SimulatedClock()
        watch = Stopwatch(clock).start()
        clock.advance(4.0)
        assert watch.stop() == pytest.approx(4.0)

    def test_elapsed_while_running(self):
        clock = SimulatedClock()
        watch = Stopwatch(clock).start()
        clock.advance(1.5)
        assert watch.elapsed == pytest.approx(1.5)

    def test_accumulates_across_start_stop_cycles(self):
        clock = SimulatedClock()
        watch = Stopwatch(clock)
        watch.start()
        clock.advance(1.0)
        watch.stop()
        watch.start()
        clock.advance(2.0)
        assert watch.stop() == pytest.approx(3.0)

    def test_context_manager(self):
        clock = SimulatedClock()
        with Stopwatch(clock) as watch:
            clock.advance(2.0)
        assert watch.elapsed == pytest.approx(2.0)

    def test_stop_without_start_returns_zero(self):
        assert Stopwatch(SimulatedClock()).stop() == 0.0
