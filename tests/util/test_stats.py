"""Tests for the shared mean/percentile helpers."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.util.stats import mean, percentile


class TestMean:
    def test_empty_series_has_mean_zero(self):
        assert mean([]) == 0.0

    def test_single_element(self):
        assert mean([7.5]) == 7.5

    def test_average(self):
        assert mean([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_accepts_any_iterable(self):
        assert mean(value for value in (2.0, 4.0)) == 3.0


class TestPercentile:
    def test_empty_series_rejected(self):
        with pytest.raises(ValidationError):
            percentile([], 50)

    def test_rank_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            percentile([1.0], -1)
        with pytest.raises(ValidationError):
            percentile([1.0], 101)

    def test_single_element_is_every_percentile(self):
        for rank in (0, 50, 99, 100):
            assert percentile([42.0], rank) == 42.0

    def test_interpolation_between_samples(self):
        data = [10.0, 20.0, 30.0, 40.0]
        assert percentile(data, 0) == 10.0
        assert percentile(data, 100) == 40.0
        assert percentile(data, 50) == 25.0
        assert percentile(data, 25) == pytest.approx(17.5)

    def test_matches_the_runner_and_metrics_consumers(self):
        # Both layers import this implementation; spot-check the shared result.
        from repro.analysis.metrics import percentile as metrics_percentile

        data = [1.0, 2.0, 4.0, 8.0]
        assert metrics_percentile(data, 95) == percentile(data, 95)
