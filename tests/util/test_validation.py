"""Tests for validation helpers and JSON utilities."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.util import jsonutil
from repro.util.rng import derive_rng, make_rng
from repro.util.validation import (
    ensure_identifier,
    ensure_in,
    ensure_non_empty,
    ensure_non_negative,
    ensure_positive,
    ensure_type,
)


class TestEnsureHelpers:
    def test_non_empty_accepts_strings(self):
        assert ensure_non_empty("hello", "x") == "hello"

    @pytest.mark.parametrize("value", ["", "   ", None, 5])
    def test_non_empty_rejects(self, value):
        with pytest.raises(ValidationError):
            ensure_non_empty(value, "x")

    def test_positive_accepts_numbers(self):
        assert ensure_positive(2, "x") == 2
        assert ensure_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("value", [0, -1, True, "3", None])
    def test_positive_rejects(self, value):
        with pytest.raises(ValidationError):
            ensure_positive(value, "x")

    def test_non_negative_accepts_zero(self):
        assert ensure_non_negative(0, "x") == 0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValidationError):
            ensure_non_negative(-0.1, "x")

    def test_ensure_type(self):
        assert ensure_type([1], list, "x") == [1]
        with pytest.raises(ValidationError):
            ensure_type("a", int, "x")

    def test_ensure_in(self):
        assert ensure_in("a", ["a", "b"], "x") == "a"
        with pytest.raises(ValidationError):
            ensure_in("c", ["a", "b"], "x")

    def test_ensure_identifier(self):
        assert ensure_identifier("my-system_1.0", "x") == "my-system_1.0"
        with pytest.raises(ValidationError):
            ensure_identifier("bad name!", "x")


class TestJsonUtil:
    def test_round_trip(self):
        value = {"b": [1, 2], "a": {"nested": True}}
        assert jsonutil.loads(jsonutil.dumps(value)) == value

    def test_dumps_sorts_keys(self):
        assert jsonutil.dumps({"b": 1, "a": 2}) == '{"a": 2, "b": 1}'

    def test_dumps_handles_sets_and_enums(self):
        from repro.core.enums import JobStatus

        text = jsonutil.dumps({"states": {JobStatus.FAILED.value, "x"}, "s": JobStatus.RUNNING})
        assert "failed" in text and "running" in text

    def test_deep_copy_json_is_independent(self):
        original = {"a": [1, 2, 3]}
        copied = jsonutil.deep_copy_json(original)
        copied["a"].append(4)
        assert original["a"] == [1, 2, 3]


class TestRng:
    def test_same_seed_same_sequence(self):
        first = [make_rng(7).random() for _ in range(5)]
        second = [make_rng(7).random() for _ in range(5)]
        assert first == second

    def test_string_seeds_supported(self):
        assert make_rng("job-1").random() == make_rng("job-1").random()

    def test_derive_rng_is_deterministic_per_label(self):
        parent_a, parent_b = make_rng(1), make_rng(1)
        assert derive_rng(parent_a, "x").random() == derive_rng(parent_b, "x").random()

    def test_derived_streams_differ_by_label(self):
        parent = make_rng(1)
        a = derive_rng(parent, "a")
        parent2 = make_rng(1)
        b = derive_rng(parent2, "b")
        assert a.random() != b.random()
