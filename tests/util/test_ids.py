"""Tests for identifier and token generation."""

from __future__ import annotations

import threading

from repro.util.ids import IdGenerator, new_id, new_token, new_uuid


class TestIdGenerator:
    def test_sequential_per_prefix(self):
        ids = IdGenerator()
        assert ids.next("job") == "job-000001"
        assert ids.next("job") == "job-000002"
        assert ids.next("project") == "project-000001"

    def test_width_is_configurable(self):
        ids = IdGenerator(width=3)
        assert ids.next("x") == "x-001"

    def test_reset_restarts_counters(self):
        ids = IdGenerator()
        ids.next("job")
        ids.reset()
        assert ids.next("job") == "job-000001"

    def test_thread_safety_produces_unique_ids(self):
        ids = IdGenerator()
        seen: list[str] = []
        lock = threading.Lock()

        def worker():
            for _ in range(200):
                value = ids.next("job")
                with lock:
                    seen.append(value)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == len(set(seen)) == 800


class TestModuleHelpers:
    def test_new_id_uses_prefix(self):
        value = new_id("test-prefix")
        assert value.startswith("test-prefix-")

    def test_new_token_is_unpredictable_and_long(self):
        first, second = new_token(), new_token()
        assert first != second
        assert len(first) >= 24

    def test_new_uuid_format(self):
        value = new_uuid()
        assert len(value.split("-")) == 5
