"""Tests for the key-access distributions and the record generator."""

from __future__ import annotations

import random

import pytest

from repro.errors import ValidationError
from repro.workloads.distributions import (
    HotspotGenerator,
    LatestGenerator,
    UniformGenerator,
    ZipfianGenerator,
    chi_square_uniformity,
    make_distribution,
)
from repro.workloads.generator import RecordGenerator


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("uniform", UniformGenerator), ("zipfian", ZipfianGenerator),
        ("latest", LatestGenerator), ("hotspot", HotspotGenerator),
    ])
    def test_make_distribution(self, name, cls):
        assert isinstance(make_distribution(name, 100), cls)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            make_distribution("gaussian", 100)

    def test_item_count_must_be_positive(self):
        with pytest.raises(ValidationError):
            UniformGenerator(0)


class TestDistributionBehaviour:
    def draw(self, distribution, count=3000, seed=11):
        rng = random.Random(seed)
        return [distribution.next_key(rng) for _ in range(count)]

    def test_all_keys_within_bounds(self):
        for name in ("uniform", "zipfian", "latest", "hotspot"):
            samples = self.draw(make_distribution(name, 50))
            assert all(0 <= key < 50 for key in samples)

    def test_uniform_covers_key_space_evenly(self):
        samples = self.draw(UniformGenerator(20))
        statistic = chi_square_uniformity(samples, 20)
        assert statistic < 60  # well below a heavily skewed distribution

    def test_zipfian_is_much_more_skewed_than_uniform(self):
        uniform = chi_square_uniformity(self.draw(UniformGenerator(100)), 20)
        zipfian = chi_square_uniformity(self.draw(ZipfianGenerator(100)), 20)
        assert zipfian > uniform * 3

    def test_zipfian_hot_key_dominates(self):
        samples = self.draw(ZipfianGenerator(1000), count=5000)
        counts = {}
        for key in samples:
            counts[key] = counts.get(key, 0) + 1
        top_share = max(counts.values()) / len(samples)
        assert top_share > 0.05  # a single key takes a visible share

    def test_latest_prefers_recent_keys(self):
        distribution = LatestGenerator(1000)
        samples = self.draw(distribution, count=4000)
        recent = sum(1 for key in samples if key >= 900)
        assert recent / len(samples) > 0.3

    def test_hotspot_fraction_respected(self):
        distribution = HotspotGenerator(1000, hot_fraction=0.1, hot_operation_fraction=0.9)
        samples = self.draw(distribution, count=4000)
        hot = sum(1 for key in samples if key < 100)
        assert 0.8 < hot / len(samples) < 0.99

    def test_hotspot_invalid_fractions(self):
        with pytest.raises(ValidationError):
            HotspotGenerator(100, hot_fraction=0.0)

    def test_grow_extends_key_space(self):
        distribution = ZipfianGenerator(10)
        distribution.grow(100)
        assert distribution.item_count == 100
        samples = self.draw(distribution, count=500)
        assert all(key < 100 for key in samples)
        # growing never shrinks
        distribution.grow(50)
        assert distribution.item_count == 100

    def test_same_seed_reproducible(self):
        distribution = ZipfianGenerator(100)
        assert self.draw(distribution, seed=3) == self.draw(distribution, seed=3)


class TestRecordGenerator:
    def test_record_shape(self):
        generator = RecordGenerator(field_count=3, field_length=10)
        record = generator.record(7, random.Random(1))
        assert record["_id"] == "user7"
        assert {"field0", "field1", "field2", "counter", "category", "active"} <= set(record)
        assert len(record["field0"]) == 10

    def test_keys_are_stable(self):
        generator = RecordGenerator()
        assert generator.key(3) == "user3"

    def test_update_fragment_targets_existing_field(self):
        generator = RecordGenerator(field_count=2, field_length=5)
        fragment = generator.update_fragment(random.Random(1))
        field = next(iter(fragment["$set"]))
        assert field in ("field0", "field1")

    def test_growing_update_is_larger(self):
        generator = RecordGenerator(field_count=2, field_length=10)
        rng = random.Random(1)
        normal = generator.update_fragment(rng)
        grown = generator.growing_update(rng, growth_factor=5)
        assert len(next(iter(grown["$set"].values()))) > len(next(iter(normal["$set"].values())))

    def test_approximate_record_bytes_scales(self):
        small = RecordGenerator(field_count=2, field_length=10).approximate_record_bytes()
        large = RecordGenerator(field_count=10, field_length=100).approximate_record_bytes()
        assert large > small

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValidationError):
            RecordGenerator(field_count=0)
