"""Tests for the YCSB workloads and the document benchmark client."""

from __future__ import annotations

import pytest

from repro.docstore.server import DocumentServer
from repro.errors import ValidationError
from repro.workloads.runner import BenchmarkResult, DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import CORE_WORKLOADS, OperationMix, mix_from_ratio, ycsb_workload


class TestOperationMix:
    def test_must_sum_to_one(self):
        OperationMix(read=0.5, update=0.5)
        with pytest.raises(ValidationError):
            OperationMix(read=0.5, update=0.4)

    def test_write_fraction(self):
        mix = OperationMix(read=0.5, update=0.3, insert=0.1, read_modify_write=0.1)
        assert mix.write_fraction == pytest.approx(0.5)

    def test_as_dict(self):
        assert OperationMix(read=1.0).as_dict()["read"] == 1.0


class TestYcsbWorkloads:
    def test_core_and_analytics_workloads_defined(self):
        assert set(CORE_WORKLOADS) == {"A", "B", "C", "D", "E", "F", "G"}

    def test_lookup_is_case_insensitive(self):
        assert ycsb_workload("a").name == "A"

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValidationError):
            ycsb_workload("Z")

    def test_workload_characteristics(self):
        assert CORE_WORKLOADS["A"].mix.update == pytest.approx(0.5)
        assert CORE_WORKLOADS["C"].mix.read == pytest.approx(1.0)
        assert CORE_WORKLOADS["D"].distribution == "latest"
        assert CORE_WORKLOADS["E"].mix.scan == pytest.approx(0.95)
        assert CORE_WORKLOADS["G"].mix.analytics_fraction == pytest.approx(0.9)

    def test_mix_from_ratio(self):
        mix = mix_from_ratio("95:5")
        assert mix.read == pytest.approx(0.95)
        assert mix.update == pytest.approx(0.05)
        with pytest.raises(ValidationError):
            mix_from_ratio("50:30:20")


class TestWorkloadSpec:
    def test_defaults_are_valid(self):
        spec = WorkloadSpec()
        assert spec.record_count > 0 and spec.threads == 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadSpec(record_count=0)
        with pytest.raises(ValidationError):
            WorkloadSpec(threads=0)


class TestDocumentBenchmark:
    def make_benchmark(self, engine="wiredtiger", **overrides) -> DocumentBenchmark:
        spec = WorkloadSpec(record_count=80, operation_count=150,
                            warmup_operations=20, seed=3, **overrides)
        return DocumentBenchmark(DocumentServer(engine), spec)

    def test_load_inserts_records(self):
        benchmark = self.make_benchmark()
        cost = benchmark.load()
        assert cost > 0
        assert benchmark.handle.count_documents() == 80

    def test_full_run_produces_result(self):
        result = self.make_benchmark().execute_full()
        assert isinstance(result, BenchmarkResult)
        assert result.operations == 150
        assert result.throughput_ops_per_sec > 0
        assert result.latency_p99_ms >= result.latency_p50_ms
        assert sum(result.operation_counts.values()) == 150

    def test_result_as_dict_is_json_compatible(self):
        import json

        result = self.make_benchmark().execute_full()
        assert json.loads(json.dumps(result.as_dict()))["engine"] == "wiredtiger"

    def test_operation_mix_respected(self):
        benchmark = self.make_benchmark(mix=OperationMix(read=1.0))
        result = benchmark.execute_full()
        assert result.operation_counts["read"] == 150
        assert result.operation_counts["update"] == 0

    def test_inserts_grow_the_collection(self):
        benchmark = self.make_benchmark(mix=OperationMix(insert=1.0))
        benchmark.load()
        benchmark.run()
        assert benchmark.handle.count_documents() == 80 + 150

    def test_scan_and_rmw_operations_run(self):
        benchmark = self.make_benchmark(
            mix=OperationMix(scan=0.5, read_modify_write=0.5), scan_length=5)
        result = benchmark.execute_full()
        assert result.operation_counts["scan"] > 0
        assert result.operation_counts["read_modify_write"] > 0

    def test_deterministic_given_seed(self):
        first = self.make_benchmark().execute_full()
        second = self.make_benchmark().execute_full()
        assert first.throughput_ops_per_sec == pytest.approx(second.throughput_ops_per_sec)

    def test_threads_increase_wiredtiger_throughput(self):
        single = self.make_benchmark(threads=1).execute_full()
        many = self.make_benchmark(threads=8).execute_full()
        assert many.throughput_ops_per_sec > single.throughput_ops_per_sec * 2

    def test_mmapv1_write_throughput_plateaus(self):
        single = self.make_benchmark(engine="mmapv1", threads=1,
                                     mix=OperationMix(update=1.0)).execute_full()
        many = self.make_benchmark(engine="mmapv1", threads=8,
                                   mix=OperationMix(update=1.0)).execute_full()
        assert many.throughput_ops_per_sec < single.throughput_ops_per_sec * 2

    def test_wiredtiger_beats_mmapv1_on_write_heavy_multithreaded(self):
        spec = dict(threads=8, mix=OperationMix(read=0.5, update=0.5))
        wired = self.make_benchmark(engine="wiredtiger", **spec).execute_full()
        mmap = self.make_benchmark(engine="mmapv1", **spec).execute_full()
        assert wired.throughput_ops_per_sec > mmap.throughput_ops_per_sec

    def test_engine_statistics_included(self):
        result = self.make_benchmark().execute_full()
        assert result.engine_statistics["engine"] == "wiredtiger"
        assert result.engine_statistics["documents"] >= 80
