"""Tests for the REST application: versioning, middleware, error mapping, client."""

from __future__ import annotations

import pytest

from repro.errors import (
    ApiError,
    AuthenticationError,
    ConflictError,
    NotFoundError,
    PermissionDeniedError,
    ValidationError,
)
from repro.rest.application import RestApplication
from repro.rest.auth import TokenAuthMiddleware
from repro.rest.client import RestClient
from repro.rest.http import Request, json_response


@pytest.fixture
def application() -> RestApplication:
    app = RestApplication()

    def echo(request: Request):
        return json_response({"body": request.body, "query": request.query})

    def fail(request: Request):
        kind = request.path_params["kind"]
        errors = {
            "not-found": NotFoundError("missing"),
            "conflict": ConflictError("duplicate"),
            "validation": ValidationError("bad input"),
            "auth": AuthenticationError("who are you"),
            "forbidden": PermissionDeniedError("not yours"),
            "api": ApiError("teapot", status=418),
            "crash": RuntimeError("boom"),
        }
        raise errors[kind]

    v1 = app.version("v1")
    v1.post("/echo", echo)
    v1.get("/fail/{kind}", fail)
    v2 = app.version("v2")
    v2.get("/new-feature", lambda request: json_response({"version": 2}))
    return app


class TestVersioning:
    def test_both_versions_served(self, application):
        assert application.request("POST", "/api/v1/echo", body={"a": 1}).ok
        assert application.request("GET", "/api/v2/new-feature").json() == {"version": 2}

    def test_v1_route_not_available_under_v2(self, application):
        assert application.request("POST", "/api/v2/echo", body={}).status == 404

    def test_versions_listed(self, application):
        assert application.versions() == ["v1", "v2"]


class TestErrorMapping:
    @pytest.mark.parametrize("kind,status", [
        ("not-found", 404), ("conflict", 409), ("validation", 400),
        ("auth", 401), ("forbidden", 403), ("api", 418), ("crash", 500),
    ])
    def test_exceptions_map_to_status_codes(self, application, kind, status):
        response = application.request("GET", f"/api/v1/fail/{kind}")
        assert response.status == status
        assert "message" in response.body["error"]

    def test_unknown_route_404(self, application):
        assert application.request("GET", "/api/v1/nope").status == 404

    def test_wrong_method_405(self, application):
        assert application.request("GET", "/api/v1/echo").status == 405


class TestMiddleware:
    def test_middleware_wraps_handlers(self, application):
        calls = []

        def middleware(request, handler):
            calls.append(request.path)
            response = handler(request)
            response.headers["X-Middleware"] = "yes"
            return response

        application.add_middleware(middleware)
        response = application.request("POST", "/api/v1/echo", body={})
        assert response.headers["X-Middleware"] == "yes"
        assert calls == ["/api/v1/echo"]

    def test_token_auth_middleware(self):
        app = RestApplication()
        app.version("v1").get("/private", lambda r: json_response({"user": r.context["auth"]["name"]}))
        app.version("v1").get("/public/info", lambda r: json_response({"ok": True}))

        def validator(token: str):
            if token != "secret":
                raise AuthenticationError("bad token")
            return {"name": "alice"}

        app.add_middleware(TokenAuthMiddleware(validator, public_paths=("/info",)))
        assert app.request("GET", "/api/v1/public/info").ok
        assert app.request("GET", "/api/v1/private").status == 401
        ok = app.request("GET", "/api/v1/private",
                         headers={"Authorization": "Bearer secret"})
        assert ok.json() == {"user": "alice"}

    def test_token_via_query_parameter(self):
        app = RestApplication()
        app.version("v1").get("/private", lambda r: json_response({"ok": True}))
        app.add_middleware(TokenAuthMiddleware(lambda token: {"token": token}))
        assert app.request("GET", "/api/v1/private", query={"token": "x"}).ok


class TestRestClient:
    def test_verbs_and_token_header(self, application):
        client = RestClient(application, token="secret")
        response = client.post("/api/v1/echo", {"a": 1})
        assert response.json()["body"] == {"a": 1}
        assert client.requests_sent == 1

    def test_raise_for_status(self, application):
        client = RestClient(application)
        with pytest.raises(ApiError):
            client.get("/api/v1/fail/not-found")

    def test_raise_for_status_disabled(self, application):
        client = RestClient(application, raise_for_status=False)
        assert client.get("/api/v1/fail/not-found").status == 404

    def test_query_parameters_forwarded(self, application):
        client = RestClient(application)
        response = client.post("/api/v1/echo", None)
        assert response.ok
