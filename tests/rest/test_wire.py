"""Tests for serving the REST API over real HTTP sockets."""

from __future__ import annotations

import pytest

from repro.errors import ApiError
from repro.rest.wire import HttpRestClient, HttpServerAdapter


@pytest.fixture
def http_server(control):
    with HttpServerAdapter(control.api, port=0) as adapter:
        yield adapter


class TestHttpTransport:
    def test_info_endpoint_over_http(self, http_server):
        client = HttpRestClient(http_server.base_url)
        response = client.get("/api/v1/info")
        assert response.ok
        assert response.json()["name"] == "Chronos Control"

    def test_login_and_authenticated_request(self, http_server):
        client = HttpRestClient(http_server.base_url)
        token = client.post("/api/v1/login",
                            {"username": "admin", "password": "admin"}).json()["token"]
        client.set_token(token)
        projects = client.get("/api/v1/projects").json()["projects"]
        assert projects == []

    def test_error_statuses_propagate(self, http_server):
        client = HttpRestClient(http_server.base_url, raise_for_status=False)
        assert client.get("/api/v1/projects").status == 401
        assert client.get("/api/v1/bogus").status == 404

    def test_raise_for_status(self, http_server):
        client = HttpRestClient(http_server.base_url)
        with pytest.raises(ApiError):
            client.get("/api/v1/projects")

    def test_full_agent_cycle_over_http(self, control, http_server, sleep_system, admin):
        project = control.projects.create("wire", admin)
        deployment = control.deployments.register(sleep_system.id, "node-1")
        experiment = control.experiments.create(project.id, sleep_system.id, "exp",
                                                parameters={"work_units": [3]})
        control.evaluations.create(experiment.id)

        client = HttpRestClient(http_server.base_url)
        token = client.post("/api/v1/login",
                            {"username": "admin", "password": "admin"}).json()["token"]
        client.set_token(token)
        job = client.post("/api/v1/agents/next-job", {
            "system_id": sleep_system.id, "deployment_id": deployment.id}).json()["job"]
        client.patch(f"/api/v1/jobs/{job['id']}/progress", {"progress": 60})
        client.post(f"/api/v1/jobs/{job['id']}/result", {"data": {"work_done": 3}})
        assert control.jobs.get(job["id"]).status.value == "finished"

    def test_query_parameters_over_http(self, control, http_server, sleep_system):
        control.deployments.register(sleep_system.id, "node-1")
        client = HttpRestClient(http_server.base_url)
        token = client.post("/api/v1/login",
                            {"username": "admin", "password": "admin"}).json()["token"]
        client.set_token(token)
        listed = client.get("/api/v1/deployments",
                            query={"system_id": sleep_system.id}).json()["deployments"]
        assert len(listed) == 1
