"""Tests for the HTTP primitives and the router."""

from __future__ import annotations

import pytest

from repro.rest.http import Request, Response, error_response, json_response
from repro.rest.router import Router


def ok_handler(request: Request) -> Response:
    return json_response({"path_params": request.path_params})


class TestRequestResponse:
    def test_header_lookup_is_case_insensitive(self):
        request = Request("GET", "/x", headers={"Authorization": "Bearer t"})
        assert request.header("authorization") == "Bearer t"
        assert request.header("missing", "default") == "default"

    def test_require_body_raises_on_missing(self):
        from repro.errors import ApiError

        with pytest.raises(ApiError):
            Request("POST", "/x").require_body()
        assert Request("POST", "/x", body={"a": 1}).require_body() == {"a": 1}

    def test_response_reason_and_ok(self):
        assert Response(200).ok and Response(200).reason == "OK"
        assert not Response(404).ok and Response(404).reason == "Not Found"
        assert Response(999).reason == "Unknown"

    def test_json_and_error_responses(self):
        response = json_response({"a": 1}, status=201)
        assert response.status == 201 and response.json() == {"a": 1}
        response = error_response("nope", 403)
        assert response.body["error"]["message"] == "nope"


class TestRouter:
    def test_static_route_resolution(self):
        router = Router(prefix="/api/v1")
        router.get("/projects", ok_handler)
        handler, params, status = router.resolve("GET", "/api/v1/projects")
        assert handler is ok_handler and params == {} and status == 200

    def test_path_parameters_extracted(self):
        router = Router(prefix="/api/v1")
        router.get("/jobs/{job_id}/logs", ok_handler)
        handler, params, _ = router.resolve("GET", "/api/v1/jobs/job-7/logs")
        assert params == {"job_id": "job-7"}

    def test_unknown_path_is_404(self):
        router = Router()
        router.get("/a", ok_handler)
        _, __, status = router.resolve("GET", "/b")
        assert status == 404

    def test_wrong_method_is_405(self):
        router = Router()
        router.get("/a", ok_handler)
        handler, __, status = router.resolve("POST", "/a")
        assert handler is None and status == 405

    def test_all_verbs_registerable(self):
        router = Router()
        for method in ("get", "post", "put", "patch", "delete"):
            getattr(router, method)("/thing/{id}", ok_handler)
        assert len(router.routes()) == 5

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            Router().add("OPTIONS", "/x", ok_handler)

    def test_trailing_slashes_normalised(self):
        router = Router(prefix="/api/v1/")
        router.get("projects/", ok_handler)
        handler, __, status = router.resolve("GET", "/api/v1/projects")
        assert handler is ok_handler and status == 200

    def test_length_mismatch_does_not_match(self):
        router = Router()
        router.get("/a/{x}", ok_handler)
        assert router.resolve("GET", "/a")[2] == 404
        assert router.resolve("GET", "/a/1/2")[2] == 404
