"""Tests for diagram rendering (ASCII + SVG) and result export."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.analysis.aggregate import ResultTable
from repro.analysis.diagrams import (
    BarDiagram,
    LineDiagram,
    PieDiagram,
    available_diagram_types,
    build_diagram,
    diagram_from_spec,
    register_diagram_type,
)
from repro.analysis.export import results_to_csv, results_to_json, write_csv, write_diagram_svg
from repro.errors import ValidationError

RESULTS = [
    {"parameters": {"engine": "wt", "threads": 1}, "throughput": 100.0},
    {"parameters": {"engine": "wt", "threads": 4}, "throughput": 350.0},
    {"parameters": {"engine": "mmap", "threads": 1}, "throughput": 110.0},
    {"parameters": {"engine": "mmap", "threads": 4}, "throughput": 150.0},
]


class TestDiagramConstruction:
    def test_build_diagram_by_kind(self):
        assert isinstance(build_diagram("bar", "t"), BarDiagram)
        assert isinstance(build_diagram("line", "t"), LineDiagram)
        assert isinstance(build_diagram("pie", "t"), PieDiagram)
        with pytest.raises(ValidationError):
            build_diagram("scatter", "t")

    def test_custom_diagram_type_registration(self):
        class Dotted(LineDiagram):
            pass

        register_diagram_type("dotted", Dotted)
        assert "dotted" in available_diagram_types()
        assert isinstance(build_diagram("dotted", "t"), Dotted)

    def test_add_series_and_points(self):
        diagram = build_diagram("line", "t")
        diagram.add_series("a", [(1, 1.0)])
        diagram.add_point("a", 2, 2.0)
        assert diagram.series["a"] == [(1, 1.0), (2, 2.0)]

    def test_diagram_from_spec_groups_results(self):
        spec = {"kind": "line", "title": "tp", "x_field": "parameters.threads",
                "y_field": "throughput", "group_field": "parameters.engine"}
        diagram = diagram_from_spec(spec, RESULTS)
        assert set(diagram.series) == {"wt", "mmap"}


class TestRendering:
    def make_bar(self):
        return build_diagram("bar", "Throughput").add_series(
            "engines", [("wt", 350.0), ("mmap", 150.0)])

    def test_bar_ascii_contains_labels_and_bars(self):
        art = self.make_bar().render_ascii()
        assert "Throughput" in art and "wt" in art and "#" in art

    def test_bar_svg_is_wellformed(self):
        svg = self.make_bar().render_svg()
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "rect" in svg

    def test_line_ascii_and_svg(self):
        diagram = build_diagram("line", "Scaling", x_label="threads", y_label="ops/s")
        diagram.add_series("wt", [(1, 100.0), (4, 350.0)])
        diagram.add_series("mmap", [(1, 110.0), (4, 150.0)])
        art = diagram.render_ascii()
        assert "wt" in art and "*" in art
        svg = diagram.render_svg()
        assert "<line" in svg and "wt" in svg

    def test_pie_ascii_shows_percentages(self):
        diagram = build_diagram("pie", "Mix").add_series(
            "ops", [("read", 95.0), ("update", 5.0)])
        art = diagram.render_ascii()
        assert "95.0%" in art and "5.0%" in art

    def test_pie_svg_has_wedges(self):
        diagram = build_diagram("pie", "Mix").add_series(
            "ops", [("read", 75.0), ("update", 25.0)])
        assert diagram.render_svg().count("<path") == 2

    def test_empty_diagram_rejected(self):
        with pytest.raises(ValidationError):
            build_diagram("bar", "empty").render_ascii()

    def test_svg_escapes_text(self):
        diagram = build_diagram("bar", "a < b").add_series("s", [("x", 1.0)])
        assert "a &lt; b" in diagram.render_svg()


class TestExport:
    def test_csv_round_trip(self):
        table = ResultTable.from_results(RESULTS, ["parameters.engine", "throughput"])
        text = results_to_csv(table)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 4
        assert rows[0]["parameters.engine"] == "wt"

    def test_json_export(self):
        text = results_to_json(RESULTS)
        assert json.loads(text)[0]["throughput"] == 100.0

    def test_write_csv_and_svg_files(self, tmp_path):
        table = ResultTable.from_results(RESULTS, ["throughput"])
        csv_path = write_csv(table, tmp_path / "out" / "results.csv")
        assert csv_path.exists() and csv_path.read_text().startswith("throughput")
        diagram = build_diagram("bar", "t").add_series("s", [("x", 1.0)])
        svg_path = write_diagram_svg(diagram, tmp_path / "out" / "diagram.svg")
        assert svg_path.exists() and "<svg" in svg_path.read_text()
