"""Tests for the analysis metrics, aggregation and comparison helpers."""

from __future__ import annotations

import pytest

from repro.analysis.aggregate import ResultTable, aggregate_metric, group_results, pivot
from repro.analysis.compare import compare_groups, crossover_points, speedup_table
from repro.analysis.metrics import (
    execution_time,
    latency_percentiles,
    percentile,
    summarize,
    throughput,
)
from repro.errors import ValidationError

RESULTS = [
    {"parameters": {"engine": "wt", "threads": 1}, "throughput": 100.0, "latency": 1.0},
    {"parameters": {"engine": "wt", "threads": 4}, "throughput": 350.0, "latency": 1.2},
    {"parameters": {"engine": "mmap", "threads": 1}, "throughput": 110.0, "latency": 1.1},
    {"parameters": {"engine": "mmap", "threads": 4}, "throughput": 150.0, "latency": 2.5},
]


class TestMetrics:
    def test_summarize_statistics(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1 and summary.maximum == 5
        assert summary.p50 == 3.0
        assert summary.stddev == pytest.approx(1.4142, rel=1e-3)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValidationError):
            summarize([])

    def test_percentile_interpolation(self):
        data = [10.0, 20.0, 30.0, 40.0]
        assert percentile(data, 0) == 10.0
        assert percentile(data, 100) == 40.0
        assert percentile(data, 50) == 25.0
        with pytest.raises(ValidationError):
            percentile(data, 150)

    def test_throughput(self):
        assert throughput(1000, 2.0) == 500.0
        assert throughput(1000, 0.0) == 0.0
        with pytest.raises(ValidationError):
            throughput(-1, 1.0)

    def test_latency_percentiles_in_ms(self):
        values = [0.001] * 90 + [0.1] * 10
        result = latency_percentiles(values)
        assert result["p50"] == pytest.approx(1.0, rel=0.01)
        assert result["p99"] == pytest.approx(100.0, rel=0.01)
        assert result["p95"] > result["p50"]
        assert latency_percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_execution_time(self):
        assert execution_time(10.0, 12.5) == 2.5
        with pytest.raises(ValidationError):
            execution_time(10.0, 5.0)


class TestAggregation:
    def test_result_table_projection_and_markdown(self):
        table = ResultTable.from_results(RESULTS, ["parameters.engine", "throughput"])
        assert len(table) == 4
        assert table.column("throughput") == [100.0, 350.0, 110.0, 150.0]
        markdown = table.to_markdown()
        assert markdown.splitlines()[0].startswith("| parameters.engine")
        assert "350.00" in markdown

    def test_result_table_sort_and_filter(self):
        table = ResultTable.from_results(RESULTS, ["parameters.threads", "throughput"])
        ordered = table.sort_by("throughput")
        assert ordered.column("throughput")[0] == 100.0
        filtered = table.filter(lambda row: row["throughput"] > 120)
        assert len(filtered) == 2

    def test_unknown_column_rejected(self):
        table = ResultTable.from_results(RESULTS, ["throughput"])
        with pytest.raises(ValidationError):
            table.column("missing")

    def test_group_results(self):
        groups = group_results(RESULTS, "parameters.engine")
        assert set(groups) == {"wt", "mmap"}
        assert len(groups["wt"]) == 2

    def test_aggregate_metric(self):
        stats = aggregate_metric(RESULTS, "throughput")
        assert stats["count"] == 4
        assert stats["max"] == 350.0
        with pytest.raises(ValidationError):
            aggregate_metric(RESULTS, "parameters.engine")

    def test_pivot_builds_sorted_series(self):
        series = pivot(RESULTS, "parameters.threads", "throughput", "parameters.engine")
        assert series["wt"] == [(1, 100.0), (4, 350.0)]
        assert series["mmap"] == [(1, 110.0), (4, 150.0)]
        single = pivot(RESULTS, "parameters.threads", "throughput")
        assert set(single) == {"all"}


class TestComparison:
    def test_compare_groups_picks_winner(self):
        comparison = compare_groups(RESULTS, "parameters.engine", "throughput")
        assert comparison["winner"] == "wt"
        assert comparison["runner_up"] == "mmap"
        assert comparison["factor"] == pytest.approx((225.0) / (130.0))

    def test_compare_lower_is_better(self):
        comparison = compare_groups(RESULTS, "parameters.engine", "latency",
                                    higher_is_better=False)
        assert comparison["winner"] == "wt"

    def test_compare_needs_two_groups(self):
        with pytest.raises(ValidationError):
            compare_groups(RESULTS[:2], "parameters.engine", "throughput")

    def test_speedup_table_and_crossover(self):
        table = speedup_table(RESULTS, "parameters.threads", "throughput",
                              "parameters.engine", baseline_group="mmap")
        assert table[0]["parameters.threads"] == 1
        assert table[0]["wt_speedup"] == pytest.approx(100.0 / 110.0)
        assert table[1]["wt_speedup"] == pytest.approx(350.0 / 150.0)
        crossings = crossover_points(table, "wt_speedup")
        assert len(crossings) == 1  # wt loses at 1 thread, wins at 4

    def test_speedup_requires_known_baseline(self):
        with pytest.raises(ValidationError):
            speedup_table(RESULTS, "parameters.threads", "throughput",
                          "parameters.engine", baseline_group="nope")
