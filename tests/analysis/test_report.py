"""Tests for the evaluation report generator (the Fig. 3d page as a document)."""

from __future__ import annotations

import pytest

from repro.analysis.report import evaluation_report
from repro.demo import prepare_demo, run_demo
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def completed_demo():
    setup = prepare_demo(parameters={
        "storage_engine": ["wiredtiger", "mmapv1"],
        "threads": [1, 4],
        "record_count": 50,
        "operation_count": 100,
        "query_mix": "50:50",
        "distribution": "zipfian",
    })
    return run_demo(setup)


class TestEvaluationReport:
    def test_report_contains_job_table_and_metrics(self, completed_demo):
        report = evaluation_report(completed_demo.control, completed_demo.evaluation.id)
        assert report.evaluation_id == completed_demo.evaluation.id
        assert "## Job results" in report.markdown
        assert "| parameters.storage_engine" in report.markdown
        assert "throughput_ops_per_sec" in report.markdown
        assert "## Metric summaries" in report.markdown

    def test_report_includes_configured_diagrams(self, completed_demo):
        report = evaluation_report(completed_demo.control, completed_demo.evaluation.id)
        assert "Throughput vs threads" in report.diagrams
        assert "## Throughput vs threads" in report.markdown

    def test_report_names_the_winner(self, completed_demo):
        report = evaluation_report(completed_demo.control, completed_demo.evaluation.id)
        assert "## Comparison" in report.markdown
        assert "**wiredtiger**" in report.markdown

    def test_custom_columns(self, completed_demo):
        report = evaluation_report(completed_demo.control, completed_demo.evaluation.id,
                                   parameter_fields=["threads"],
                                   metric_fields=["latency_p95_ms"])
        assert "| parameters.threads | latency_p95_ms |" in report.markdown
        assert "storage_bytes" not in report.markdown.split("## Job results")[1].split("##")[0]

    def test_write_produces_markdown_and_svg_files(self, completed_demo, tmp_path):
        report = evaluation_report(completed_demo.control, completed_demo.evaluation.id)
        path = report.write(tmp_path)
        assert path.exists()
        content = path.read_text()
        assert content.startswith("# Evaluation report")
        svg_files = list(tmp_path.glob("*.svg"))
        assert len(svg_files) == len(report.diagrams)
        assert all(f"({svg.name})" in content for svg in svg_files)

    def test_report_without_results_rejected(self, completed_demo):
        control = completed_demo.control
        experiment = completed_demo.experiment
        empty_evaluation, _ = control.evaluations.create(experiment.id)
        with pytest.raises(ValidationError):
            evaluation_report(control, empty_evaluation.id)
