"""Tests for the key-value store SuE (second system)."""

from __future__ import annotations

import pytest

from repro.errors import DocumentStoreError
from repro.kvstore.store import HashEngine, KeyValueStore, LogStructuredEngine


@pytest.fixture(params=["hash", "log"])
def store(request) -> KeyValueStore:
    return KeyValueStore(engine=request.param)


class TestKeyValueStoreContract:
    def test_put_get_delete(self, store):
        store.put("a", "1")
        assert store.get("a") == "1"
        store.put("a", "2")
        assert store.get("a") == "2"
        store.delete("a")
        assert store.get("a") is None

    def test_scan_returns_live_entries_sorted(self, store):
        for key in ("b", "a", "c"):
            store.put(key, key.upper())
        store.delete("b")
        assert store.scan() == [("a", "A"), ("c", "C")]

    def test_costs_accumulate(self, store):
        store.put("a", "x" * 500)
        store.get("a")
        stats = store.statistics()
        assert stats["simulated_seconds"] > 0
        assert stats["operations"] >= 2
        assert stats["keys"] == 1

    def test_get_with_cost(self, store):
        store.put("a", "1")
        value, cost = store.get_with_cost("a")
        assert value == "1" and cost > 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(DocumentStoreError):
            KeyValueStore(engine="btree")


class TestEngineDifferences:
    def test_log_engine_writes_cheaper_than_hash(self):
        hash_engine, log_engine = HashEngine(), LogStructuredEngine()
        payload = "x" * 2000
        hash_cost = sum(hash_engine.put(f"k{i}", payload) for i in range(50))
        log_cost = sum(log_engine.put(f"k{i}", payload) for i in range(50))
        assert log_cost < hash_cost

    def test_log_engine_space_amplification_until_compaction(self):
        engine = LogStructuredEngine(compaction_threshold=10.0)
        for _ in range(5):
            engine.put("same-key", "v" * 100)
        assert engine.storage_bytes() > 5 * 100 * 0.9
        engine.compact()
        assert engine.count() == 1
        assert engine.storage_bytes() < 200

    def test_automatic_compaction_triggers(self):
        engine = LogStructuredEngine(compaction_threshold=2.0)
        for round_number in range(10):
            for _ in range(10):
                engine.put(f"key-{round_number % 3}", "v" * 50)
        assert engine.compactions > 0

    def test_compaction_threshold_validated(self):
        with pytest.raises(DocumentStoreError):
            LogStructuredEngine(compaction_threshold=1.0)

    def test_delete_in_log_engine_appends_tombstone(self):
        engine = LogStructuredEngine(compaction_threshold=100.0)
        engine.put("a", "1")
        engine.delete("a")
        assert engine.get("a") == (None, pytest.approx(engine.parameters.base_operation))
        assert engine.count() == 0

    def test_statistics_shape(self):
        for engine in (HashEngine(), LogStructuredEngine()):
            engine.put("a", "1")
            stats = engine.statistics()
            assert {"engine", "keys", "storage_bytes", "operations",
                    "simulated_seconds"} <= set(stats)
