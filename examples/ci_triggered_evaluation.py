"""Scheduling an evaluation through the REST API, as a build bot would.

Section 2.2: "the API offers methods to, for example, schedule an evaluation
which is caused by a successful build of the SuE's build bot."  This example
plays the role of that build bot: it only ever talks to Chronos Control
through the versioned REST API (v2 ``/schedule`` for the trigger, v1
endpoints for monitoring), never through the Python service objects.

Run with::

    python examples/ci_triggered_evaluation.py
"""

from __future__ import annotations

from repro.agent.fleet import AgentFleet
from repro.agents.mongodb_agent import MongoDbAgent, register_mongodb_system
from repro.core.control import ChronosControl
from repro.rest.client import RestClient
from repro.util.clock import SimulatedClock


def main() -> None:
    control = ChronosControl(clock=SimulatedClock())
    admin = control.users.get_by_username("admin")

    # One-time set-up done by the team: system, deployment, project, experiment.
    system = register_mongodb_system(control, owner_id=admin.id)
    deployment = control.deployments.register(system.id, "ci-runner",
                                              environment={"host": "ci"})
    project = control.projects.create("Continuous benchmarking", admin)
    experiment = control.experiments.create(
        project_id=project.id, system_id=system.id,
        name="per-commit regression check",
        parameters={
            "storage_engine": ["wiredtiger"],
            "threads": [1, 4],
            "record_count": 150,
            "operation_count": 300,
            "query_mix": "90:10",
            "distribution": "uniform",
        },
    )

    # --- the build bot: REST only -----------------------------------------------------
    bot = RestClient(control.api)
    token = bot.post("/api/v1/login", {"username": "admin", "password": "admin"}).json()["token"]
    bot.set_token(token)

    build_id = "build-4711"
    response = bot.post("/api/v2/schedule", {
        "experiment_id": experiment.id,
        "name": f"evaluation for {build_id}",
        "deployment_ids": [deployment.id],
        "triggered_by": build_id,
    })
    evaluation_id = response.json()["evaluation"]["id"]
    print(f"build bot scheduled evaluation {evaluation_id} "
          f"({response.json()['job_count']} jobs) for {build_id}")

    # --- agents do the work (normally running on the CI workers) -----------------------
    fleet = AgentFleet(control, system.id, [deployment.id], MongoDbAgent,
                       clock=control.clock)
    fleet.drive_evaluation(evaluation_id)

    # --- the build bot polls progress and fetches results over REST --------------------
    progress = bot.get(f"/api/v1/evaluations/{evaluation_id}/progress").json()
    print(f"progress reported by the API: {progress['counts']}")
    results = bot.get(f"/api/v1/evaluations/{evaluation_id}/results").json()["results"]
    for result in results:
        data = result["data"]
        print(f"  threads={data['parameters']['threads']}: "
              f"{data['throughput_ops_per_sec']:.0f} ops/s")
    statistics = bot.get("/api/v2/statistics").json()["statistics"]
    print(f"instance statistics: {statistics['jobs']}")


if __name__ == "__main__":
    main()
