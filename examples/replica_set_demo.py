"""Replication demo: a replica set surviving the loss of its primary.

Walks through the full replication story:

* declare a three-member :class:`~repro.docstore.topology.TopologySpec` and
  let the topology layer build the
  :class:`~repro.docstore.replication.replica_set.ReplicaSet` behind the
  unchanged :class:`~repro.docstore.client.DocumentClient`,
* write with ``w=majority`` so every acknowledged write reaches a majority
  before the client continues,
* read from secondaries and watch them trail the primary (real eventual
  consistency, bounded by the configured replication lag),
* kill the primary mid-workload with a
  :class:`~repro.docstore.replication.failures.FailureInjector`, watch the
  majority elect the freshest secondary, and
* prove durability: every write acknowledged at ``w=majority`` is still
  there -- and contrast with ``w=1``, where the same crash loses the
  unreplicated tail.

Run with::

    python examples/replica_set_demo.py
"""

from __future__ import annotations

from repro.docstore.client import DocumentClient
from repro.docstore.replication import FailureInjector, ReplicaSet
from repro.docstore.topology import TopologySpec, build_topology

MEMBERS = 3
LAG = 4
WRITES_BEFORE_KILL = 40
WRITES_AFTER_KILL = 20


def build_replica_set(write_concern, read_preference: str = "primary") -> ReplicaSet:
    """The deployment shape is declared data; the topology layer builds it."""
    replica_set = build_topology(TopologySpec(
        replicas=MEMBERS, write_concern=write_concern,
        read_preference=read_preference, replication_lag=LAG))
    assert isinstance(replica_set, ReplicaSet)
    return replica_set


def run_crash_scenario(write_concern) -> tuple[ReplicaSet, int, int]:
    """Insert, crash the primary, fail over, keep going; count survivors."""
    replica_set = build_replica_set(write_concern)
    handle = DocumentClient(replica_set).collection("app", "events")
    acknowledged = []
    for index in range(WRITES_BEFORE_KILL):
        result = handle.insert_one({"_id": f"event{index:03d}", "sequence": index})
        acknowledged.extend(result.inserted_ids)

    injector = FailureInjector(replica_set)
    victim = injector.kill_primary()
    print(f"  killed primary member{victim}; next operation triggers the election")

    for index in range(WRITES_BEFORE_KILL, WRITES_BEFORE_KILL + WRITES_AFTER_KILL):
        result = handle.insert_one({"_id": f"event{index:03d}", "sequence": index})
        acknowledged.extend(result.inserted_ids)

    surviving = {document["_id"]
                 for document in handle.find_with_cost({}).documents}
    lost = [record_id for record_id in acknowledged if record_id not in surviving]
    return replica_set, len(acknowledged), len(lost)


def main() -> None:
    print(f"== Replica set: {MEMBERS} members, replication lag {LAG} entries ==")
    print()

    print("== Status and staleness (w=1, secondary reads) ==")
    replica_set = build_replica_set(1, read_preference="secondary")
    handle = DocumentClient(replica_set).collection("app", "events")
    for index in range(30):
        handle.insert_one({"_id": f"event{index:03d}", "sequence": index})
    primary_count = 30
    secondary_count = handle.count_documents({})
    status = replica_set.replica_set_status()
    for member in status["members"]:
        print(f"  member{member['member_id']}: {member['role']:<9} "
              f"optime={member['optime']} lag={member['lag_entries']}")
    print(f"  primary holds {primary_count} documents, a secondary read "
          f"sees {secondary_count} (staleness mean "
          f"{replica_set.replication_summary()['staleness_mean']:.2f} entries)")
    print()

    print("== Crash the primary at w=majority ==")
    replica_set, acknowledged, lost = run_crash_scenario("majority")
    summary = replica_set.replication_summary()
    election = summary["elections"][-1]
    print(f"  election: term {election['term']}, member{election['winner']} won "
          f"with {election['votes']} votes "
          f"({election['simulated_seconds'] * 1000:.1f} ms simulated)")
    print(f"  acknowledged writes: {acknowledged}, lost after failover: {lost}")
    assert lost == 0, "w=majority must never lose an acknowledged write"
    print()

    print("== The same crash at w=1 ==")
    replica_set, acknowledged, lost = run_crash_scenario(1)
    print(f"  acknowledged writes: {acknowledged}, lost after failover: {lost} "
          f"(rolled back: {replica_set.rolled_back_entries})")
    print()

    print("== Takeaway ==")
    print("  w=majority buys zero acknowledged-write loss at the cost of the")
    print("  replication round-trip; w=1 acknowledges faster but the tail of")
    print("  unreplicated writes dies with the primary.")


if __name__ == "__main__":
    main()
