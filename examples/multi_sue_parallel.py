"""Two Systems under Evaluation, multiple deployments, parallel job execution.

Demonstrates requirement (ii) of the paper: Chronos supports different SuEs at
the same time and parallelises evaluations over multiple identical
deployments.  The MongoDB SuE runs on two deployments while the key-value
store SuE runs on a third, all through one Chronos Control instance.

Run with::

    python examples/multi_sue_parallel.py
"""

from __future__ import annotations

from repro.agent.fleet import AgentFleet
from repro.agents.kvstore_agent import KeyValueStoreAgent, register_kvstore_system
from repro.agents.mongodb_agent import MongoDbAgent, register_mongodb_system
from repro.analysis.aggregate import ResultTable
from repro.core.control import ChronosControl
from repro.util.clock import SimulatedClock


def main() -> None:
    control = ChronosControl(clock=SimulatedClock())
    admin = control.users.get_by_username("admin")
    project = control.projects.create("Multi-SuE evaluation", admin)

    # --- SuE A: the document store on two identical deployments ------------------
    mongodb = register_mongodb_system(control, owner_id=admin.id)
    mongodb_deployments = [
        control.deployments.register(mongodb.id, f"mongo-node-{index}",
                                     environment={"host": f"node{index}"}).id
        for index in (1, 2)
    ]
    mongodb_experiment = control.experiments.create(
        project_id=project.id, system_id=mongodb.id, name="engines on two nodes",
        parameters={
            "storage_engine": ["wiredtiger", "mmapv1"],
            "threads": [1, 2, 4],
            "record_count": 150,
            "operation_count": 300,
            "query_mix": "80:20",
            "distribution": "zipfian",
        },
    )
    mongodb_evaluation, mongodb_jobs = control.evaluations.create(
        mongodb_experiment.id, deployment_ids=mongodb_deployments
    )

    # --- SuE B: the key-value store on its own deployment -------------------------
    kvstore = register_kvstore_system(control, owner_id=admin.id)
    kvstore_deployment = control.deployments.register(kvstore.id, "kv-node-1").id
    kvstore_experiment = control.experiments.create(
        project_id=project.id, system_id=kvstore.id, name="hash vs log engine",
        parameters={
            "engine": ["hash", "log"],
            "key_count": 500,
            "operation_count": 1000,
            "value_size": 128,
            "write_fraction": 0.5,
        },
    )
    kvstore_evaluation, kvstore_jobs = control.evaluations.create(
        kvstore_experiment.id, deployment_ids=[kvstore_deployment]
    )

    print(f"MongoDB evaluation : {len(mongodb_jobs)} jobs on "
          f"{len(mongodb_deployments)} deployments")
    print(f"KV-store evaluation: {len(kvstore_jobs)} jobs on 1 deployment")
    print()

    # --- run both fleets -----------------------------------------------------------
    mongodb_fleet = AgentFleet(control, mongodb.id, mongodb_deployments,
                               MongoDbAgent, clock=control.clock)
    kvstore_fleet = AgentFleet(control, kvstore.id, [kvstore_deployment],
                               KeyValueStoreAgent, clock=control.clock)
    mongodb_report = mongodb_fleet.drive_evaluation(mongodb_evaluation.id)
    kvstore_report = kvstore_fleet.drive_evaluation(kvstore_evaluation.id)

    print("MongoDB jobs per deployment:", mongodb_report.per_deployment)
    print("KV-store jobs per deployment:", kvstore_report.per_deployment)
    print()

    # --- results ---------------------------------------------------------------------
    mongodb_results = [result.data for result in control.results.for_jobs(
        [job.id for job in control.evaluations.jobs(mongodb_evaluation.id)])]
    kvstore_results = [result.data for result in control.results.for_jobs(
        [job.id for job in control.evaluations.jobs(kvstore_evaluation.id)])]

    print("MongoDB results:")
    print(ResultTable.from_results(mongodb_results, [
        "parameters.storage_engine", "parameters.threads", "throughput_ops_per_sec",
    ]).sort_by("parameters.threads").to_markdown())
    print()
    print("Key-value store results:")
    print(ResultTable.from_results(kvstore_results, [
        "parameters.engine", "throughput_ops_per_sec", "storage_bytes",
    ]).to_markdown())
    print()
    print("Chronos instance statistics:", control.statistics())


if __name__ == "__main__":
    main()
