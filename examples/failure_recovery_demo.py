"""Automated failure handling and recovery of failed evaluation runs.

Demonstrates requirement (iii): an agent that crashes on its first attempts
has its jobs automatically re-scheduled, and a job whose agent disappears
(heartbeat timeout) is recovered by the failure handler.

Run with::

    python examples/failure_recovery_demo.py
"""

from __future__ import annotations

from repro.agent.connection import AgentConnection
from repro.agent.fleet import AgentFleet
from repro.agent.runner import AgentRunner
from repro.agents.testing import FlakyAgent, register_sleep_system
from repro.core.control import ChronosControl
from repro.rest.client import RestClient
from repro.util.clock import SimulatedClock


def main() -> None:
    clock = SimulatedClock()
    control = ChronosControl(clock=clock, heartbeat_timeout=60.0)
    admin = control.users.get_by_username("admin")
    system = register_sleep_system(control, owner_id=admin.id)
    deployment = control.deployments.register(system.id, "worker-1")
    project = control.projects.create("Reliability tests", admin)
    experiment = control.experiments.create(
        project_id=project.id, system_id=system.id, name="flaky workload",
        parameters={"work_units": [5, 10, 15, 20]},
    )
    evaluation, jobs = control.evaluations.create(experiment.id, max_attempts=3)
    print(f"evaluation {evaluation.id} with {len(jobs)} jobs, 3 attempts each")

    # --- an agent that fails its first two executions -------------------------------
    flaky = FlakyAgent(fail_first_attempts=2)
    fleet = AgentFleet(control, system.id, [deployment.id], lambda: flaky, clock=clock)
    report = fleet.drive_evaluation(evaluation.id)
    print(f"finished: {report.jobs_finished}, failures injected: {flaky.failures_injected}")
    counts = control.jobs.counts_by_status(evaluation.id)
    print(f"job states after automatic retries: {counts}")
    print()

    # --- a stalled job recovered by the heartbeat timeout ----------------------------
    experiment2 = control.experiments.create(
        project_id=project.id, system_id=system.id, name="stall recovery",
        parameters={"work_units": 5},
    )
    evaluation2, _ = control.evaluations.create(experiment2.id)
    stalled_job = control.claim_next_job(system.id, deployment.id)
    print(f"job {stalled_job.id} claimed and then abandoned (agent crash)")
    clock.advance(120.0)  # beyond the 60 s heartbeat timeout
    recovery = control.recover_stalled_jobs()
    print(f"recovery pass re-scheduled: {recovery.stalled_jobs_recovered}")
    control.scheduler.release_deployment(deployment.id)

    # a healthy agent picks the job up again and finishes the evaluation
    client = RestClient(control.api)
    connection = AgentConnection(client)
    connection.login("admin", "admin")
    runner = AgentRunner(FlakyAgent(), connection, system.id, deployment.id, clock=clock)
    runner.run_until_idle()
    print(f"evaluation 2 complete: {control.jobs.counts_by_status(evaluation2.id)}")

    # --- the job timeline shows the whole story ----------------------------------------
    print()
    print(f"timeline of the recovered job {stalled_job.id}:")
    for event in control.events.timeline("job", stalled_job.id):
        print(f"  [{event.timestamp:8.1f}] {event.event_type.value:12} {event.message}")


if __name__ == "__main__":
    main()
