"""The paper's demonstration: comparative evaluation of two MongoDB storage engines.

Reproduces the complete workflow of Section 3 / Figure 3:

* (3a) creation of the experiment sweeping storage engine x thread count,
* (3b) an evaluation whose jobs are monitored while they run,
* (3c) job details: status, progress, log output and the event timeline,
* (3d) result analysis: throughput and latency diagrams per engine, plus the
  "who wins by what factor" comparison.

Run with::

    python examples/mongodb_storage_engines.py
"""

from __future__ import annotations

from repro.analysis.aggregate import ResultTable
from repro.analysis.compare import compare_groups, speedup_table
from repro.analysis.diagrams import diagram_from_spec
from repro.demo import prepare_demo, run_demo


def main() -> None:
    parameters = {
        "storage_engine": ["wiredtiger", "mmapv1"],
        "threads": {"start": 1, "stop": 16, "step": 2, "scale": "geometric"},
        "record_count": 300,
        "operation_count": 600,
        "query_mix": "50:50",
        "distribution": "zipfian",
    }
    setup = prepare_demo(parameters=parameters)
    control = setup.control

    print("== Experiment (Fig. 3a) ==")
    print(f"system    : {setup.system.name}")
    print(f"experiment: {setup.experiment.name}")
    print(f"parameters: {setup.experiment.parameters}")
    print(f"evaluation: {setup.evaluation.id} "
          f"({control.experiments.space_size(setup.experiment.id)} jobs)")
    print()

    setup = run_demo(setup)

    print("== Evaluation details (Fig. 3b) ==")
    progress = control.evaluations.progress(setup.evaluation.id)
    print(f"status: {progress['status']}, jobs: {progress['jobs']}, "
          f"counts: {progress['counts']}")
    print()

    jobs = control.evaluations.jobs(setup.evaluation.id)
    sample_job = jobs[0]
    print("== Job details (Fig. 3c) ==")
    print(f"job {sample_job.id}: status={sample_job.status.value}, "
          f"progress={sample_job.progress}%")
    print("timeline:")
    for event in control.events.timeline("job", sample_job.id):
        print(f"  [{event.timestamp:8.3f}] {event.event_type.value:12} {event.message}")
    print("log output:")
    for line in control.logs.full_text(sample_job.id).splitlines():
        print(f"  {line}")
    print()

    print("== Result analysis (Fig. 3d) ==")
    table = ResultTable.from_results(setup.results, [
        "parameters.storage_engine", "parameters.threads",
        "throughput_ops_per_sec", "latency_p95_ms", "storage_bytes",
    ]).sort_by("parameters.threads")
    print(table.to_markdown())
    print()

    for spec in control.systems.diagrams(setup.system.id):
        diagram = diagram_from_spec(
            {**spec,
             "x_field": _result_field(spec["x_field"]),
             "group_field": _result_field(spec["group_field"]) if spec.get("group_field") else None},
            setup.results,
        )
        print(diagram.render_ascii())
        print()

    comparison = compare_groups(setup.results, "parameters.storage_engine",
                                "throughput_ops_per_sec")
    print(f"winner: {comparison['winner']} "
          f"({comparison['factor']:.2f}x the throughput of {comparison['runner_up']})")
    print()
    print("speed-up per thread count (baseline: mmapv1):")
    for row in speedup_table(setup.results, "parameters.threads",
                             "throughput_ops_per_sec", "parameters.storage_engine",
                             baseline_group="mmapv1"):
        print(f"  threads={row['parameters.threads']:>3}  "
              f"wiredtiger/mmapv1 = {row.get('wiredtiger_speedup', 0):.2f}x")


def _result_field(field: str) -> str:
    """Map system diagram fields onto the paths used in the result documents."""
    if field in ("threads", "storage_engine"):
        return f"parameters.{field}"
    return field


if __name__ == "__main__":
    main()
