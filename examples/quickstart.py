"""Quickstart: register an SuE, define an experiment, run it, print the results.

This is the smallest end-to-end use of the toolkit: everything runs
in-process against one Chronos Control instance and one deployment of the
simulated MongoDB SuE.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.aggregate import ResultTable
from repro.demo import prepare_demo, run_demo


def main() -> None:
    # 1. Set up Chronos Control, register the MongoDB SuE, create a project,
    #    an experiment and an evaluation (one job per parameter combination).
    setup = prepare_demo(parameters={
        "storage_engine": ["wiredtiger", "mmapv1"],
        "threads": [1, 4],
        "record_count": 200,
        "operation_count": 400,
        "query_mix": "95:5",
        "distribution": "zipfian",
    })
    jobs = setup.control.evaluations.jobs(setup.evaluation.id)
    print(f"Project     : {setup.project.name}")
    print(f"Experiment  : {setup.experiment.name}")
    print(f"Evaluation  : {setup.evaluation.id} with {len(jobs)} jobs")
    print()

    # 2. Run the evaluation with the MongoDB Chronos agent.
    setup = run_demo(setup)
    print(f"Finished jobs: {setup.report.jobs_finished}, failed: {setup.report.jobs_failed}")
    print()

    # 3. Print the result table the Chronos web UI would visualise (Fig. 3d).
    table = ResultTable.from_results(setup.results, [
        "parameters.storage_engine",
        "parameters.threads",
        "throughput_ops_per_sec",
        "latency_avg_ms",
        "latency_p95_ms",
    ]).sort_by("parameters.threads")
    print(table.to_markdown())


if __name__ == "__main__":
    main()
