"""Observability demo: the operation profiler and slow-op log end to end.

Walks through the PR 8 observability stack:

* turn on full profiling (level 2, ``slow_ms=0``) on a standalone server,
  run a few operations and read their spans back from the slow-op log --
  access path, plan-cache state, docs examined vs returned, lock wait,
* flip to level 1 and watch only operations slower than the threshold land
  in the log (the MongoDB ``system.profile`` behaviour),
* inspect ``server_status()["metrics"]``: operation counters, latency
  histograms with p50/p95/p99, the server-wide plan-cache rollup and the
  per-collection lock report,
* profile a 4-shard replicated cluster and read a scatter-gather span --
  per-shard child costs, *measured* per-shard ``wall_ms`` from the PR 10
  parallel fan-out executor, the parallel flag, the straggler shard (the
  measured slowest of the fan-out) -- plus the merged log with entries
  sourced from the router and every member, and
* attach the FTDC-style :class:`MetricsSampler` to a workload run and dump
  its bounded time series.

Run with::

    PYTHONPATH=src python examples/profiler_demo.py
"""

from __future__ import annotations

import json

from repro.docstore.client import DocumentClient
from repro.docstore.topology import TopologySpec, build_topology
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import OperationMix

RECORDS = 400


def seed(handle) -> None:
    handle.insert_many([
        {"_id": f"k{index:04d}", "counter": index, "category": f"cat{index % 5}"}
        for index in range(RECORDS)
    ])
    handle.create_index("counter")


def show(title: str, entries) -> None:
    print(f"\n{title}")
    for entry in entries:
        line = (f"  {entry['op']:<9} {entry.get('access_path', '-'):<17} "
                f"cache={entry.get('plan_cache', '-'):<7} "
                f"exam/ret={entry['docs_examined']}/{entry['docs_returned']} "
                f"sim={entry['simulated_ms']:.3f}ms")
        walls = {}
        if entry.get("shards"):
            names = [child["shard"] for child in entry["shards"]]
            line += (f" shards={names}"
                     f"{' parallel' if entry.get('parallel') else ''}")
            if entry.get("straggler"):
                line += f" straggler={entry['straggler']}"
            walls = {child["shard"]: child["wall_ms"]
                     for child in entry["shards"] if "wall_ms" in child}
        if entry.get("source"):
            line += f" source={entry['source']}"
        print(line)
        if walls:
            measured = ", ".join(f"{shard}={wall:.2f}ms"
                                 for shard, wall in sorted(walls.items()))
            print(f"            measured walls: {measured}")


def standalone_profiling() -> None:
    print("=== standalone: level 2 records every operation ===")
    server = build_topology(TopologySpec())
    handle = DocumentClient(server).collection("demo", "events")
    seed(handle)
    server.set_profiling(2, slow_ms=0.0)

    handle.find_one({"_id": "k0042"})                      # ID_LOOKUP
    handle.find({"counter": {"$gte": 380}})                # INDEX_RANGE
    handle.find({"category": "cat3"})                      # FULL_SCAN
    handle.find({"counter": {"$gte": 100}})                # plan-cache hit
    handle.update_one({"_id": "k0042"}, {"$inc": {"counter": 1}})
    handle.aggregate([{"$match": {"counter": {"$gte": 200}}},
                      {"$group": {"_id": "$category", "n": {"$count": {}}}}])
    show("slow-op log (all ops):", server.get_slow_ops())

    print("\n=== standalone: level 1 records only slow operations ===")
    full_scan_ms = handle.find_with_cost(
        {"category": "cat1"}).simulated_seconds * 1000.0
    server.set_profiling(1, slow_ms=full_scan_ms * 0.5)
    server.profiler.reset()  # drop the level-2 entries for a clean contrast
    handle.find_one({"_id": "k0007"})          # fast -- not recorded
    handle.find({"category": "cat2"})          # full scan -- recorded
    show(f"slow-op log (threshold {full_scan_ms * 0.5:.3f} sim ms):",
         server.get_slow_ops())

    status = server.server_status()
    metrics = status["metrics"]
    print("\noperation counters:",
          {name: count for name, count in sorted(metrics["counters"].items())
           if name.startswith("operations.")})
    for name, histogram in sorted(metrics["histograms"].items()):
        if name.startswith("latency."):
            print(f"  {name}: n={histogram['count']} "
                  f"p50={histogram['p50_ms']:.3f}ms "
                  f"p95={histogram['p95_ms']:.3f}ms "
                  f"p99={histogram['p99_ms']:.3f}ms")
    print("planner rollup:", metrics["planner"])
    print("locks:", status["locks"])


def cluster_profiling() -> None:
    print("\n=== 4-shard x 3-replica cluster: scatter-gather spans ===")
    cluster = build_topology(TopologySpec(
        shards=4, replicas=3, shard_key="_id", shard_strategy="hash"))
    handle = DocumentClient(cluster).collection("demo", "events")
    seed(handle)
    cluster.set_profiling(2, slow_ms=0.0)

    handle.find_with_cost({"_id": "k0101"})            # targeted: one shard
    handle.find_with_cost({"counter": {"$gte": 350}})  # scatter: all shards
    handle.aggregate([{"$group": {"_id": "$category", "n": {"$count": {}}}}])

    entries = cluster.get_slow_ops()
    router_spans = [entry for entry in entries if entry["source"] == "router"]
    show("router spans (mongos view):", router_spans)
    fanned = [entry for entry in router_spans
              if any("wall_ms" in child for child in entry.get("shards", []))]
    if fanned:
        span = fanned[0]
        slowest = max((child for child in span["shards"]
                       if "wall_ms" in child),
                      key=lambda child: child["wall_ms"])
        print(f"\n  straggler of the {span['op']} fan-out is the *measured* "
              f"slowest shard: {span['straggler']} "
              f"({slowest['wall_ms']:.2f}ms wall) -- the executor ran all "
              f"{len(span['shards'])} shards concurrently, so the span's "
              f"duration tracks that straggler, not the sum")
    shard_side = [entry for entry in entries if entry["source"] != "router"]
    show(f"first shard-side spans (of {len(shard_side)}):", shard_side[:4])
    print("\nmerged top():",
          json.dumps(cluster.top(), indent=2, sort_keys=True)[:400], "...")


def sampled_workload() -> None:
    print("\n=== workload runner with the FTDC-style sampler ===")
    spec = WorkloadSpec(
        record_count=300, operation_count=200,
        mix=OperationMix(read=0.6, update=0.2, insert=0.1, scan=0.1),
        profile_level=2, slow_ms=0.0)
    benchmark = DocumentBenchmark.for_spec(spec)
    sampler = benchmark.attach_sampler(interval_seconds=0.01)
    result = benchmark.execute_full()
    print(f"ran {result.operations} ops at "
          f"{result.throughput_ops_per_sec:,.0f} simulated ops/s; "
          f"slow-op log holds {len(benchmark.slow_ops())} entries")
    series = sampler.series()
    print(f"sampler took {len(series)} snapshots; final counters:",
          {name: count
           for name, count in sorted(series[-1]["metrics"]["counters"].items())
           if name.startswith("operations.")})


def main() -> None:
    standalone_profiling()
    cluster_profiling()
    sampled_workload()


if __name__ == "__main__":
    main()
