"""Scale-out demo: a YCSB workload against a 4-shard document-store cluster.

Walks through the full sharding story:

* declare a four-shard :class:`~repro.docstore.topology.TopologySpec` and let
  the topology layer build the
  :class:`~repro.docstore.sharding.cluster.ShardedCluster` behind a
  ``mongos``-style query router,
* run YCSB workload B against it through the unchanged
  :class:`~repro.docstore.client.DocumentClient` machinery,
* inspect the chunk table, split and migration bookkeeping,
* compare throughput against a single server with the same workload, and
* prove the routed results are equivalent: the sharded cluster ends up with
  exactly the same documents as the single server, document for document.

Run with::

    python examples/sharded_cluster_demo.py
"""

from __future__ import annotations

from repro.docstore.server import DocumentServer
from repro.docstore.sharding import ShardedCluster
from repro.docstore.topology import TopologySpec
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import CORE_WORKLOADS

WORKLOAD = "B"
SHARDS = 4
THREADS = 8


def build_spec(shards: int) -> WorkloadSpec:
    workload = CORE_WORKLOADS[WORKLOAD]
    return WorkloadSpec(record_count=300, operation_count=600, threads=THREADS,
                        mix=workload.mix, distribution=workload.distribution,
                        seed=11, shards=shards)


def build_benchmark(shards: int) -> DocumentBenchmark:
    """The deployment shape is declared data; the topology layer builds it."""
    topology = TopologySpec(shards=shards, storage_engine="wiredtiger")
    return DocumentBenchmark.for_topology(topology, build_spec(shards))


def collection_documents(benchmark: DocumentBenchmark) -> list[dict]:
    documents = benchmark.handle.find_with_cost({}).documents
    return sorted(documents, key=lambda document: document["_id"])


def main() -> None:
    workload = CORE_WORKLOADS[WORKLOAD]
    print(f"== YCSB workload {WORKLOAD} ({workload.description}) ==")
    print(f"cluster: {SHARDS} shards, single server baseline, {THREADS} threads")
    print()

    sharded = build_benchmark(SHARDS)
    single = build_benchmark(1)
    print(f"declared topology: {sharded.topology.as_dict()}")
    print()
    sharded_result = sharded.execute_full()
    single_result = single.execute_full()

    cluster: ShardedCluster = sharded.server
    assert isinstance(cluster, ShardedCluster)
    assert isinstance(single.server, DocumentServer)

    print("== Chunk table (after splits and balancing) ==")
    for chunk in cluster.chunk_map("benchmark", "usertable"):
        lower = "-inf" if chunk["lower"] is None else chunk["lower"]
        upper = "+inf" if chunk["upper"] is None else chunk["upper"]
        print(f"  shard{chunk['shard']}: [{lower}, {upper})")
    statistics = sharded_result.engine_statistics
    print(f"chunks: {statistics['chunks']}, splits: {statistics['splits']}, "
          f"migrations: {statistics['migrations']}")
    print(f"chunk distribution: {statistics['chunk_distribution']}")
    print(f"documents per shard: "
          f"{[server.server_status()['totalDocuments'] for server in cluster.shards]}")
    print(f"router: {cluster.router.targeted_operations} targeted, "
          f"{cluster.router.scatter_operations} scatter-gather operations")
    print()

    print("== Throughput ==")
    print("| deployment | throughput (ops/s) | p95 (ms) |")
    print("| --- | --- | --- |")
    print(f"| 1 server | {single_result.throughput_ops_per_sec:,.0f} "
          f"| {single_result.latency_p95_ms:.3f} |")
    print(f"| {SHARDS} shards | {sharded_result.throughput_ops_per_sec:,.0f} "
          f"| {sharded_result.latency_p95_ms:.3f} |")
    speedup = (sharded_result.throughput_ops_per_sec
               / single_result.throughput_ops_per_sec)
    print(f"scale-out speedup: {speedup:.2f}x")
    print()

    print("== Equivalence ==")
    sharded_documents = collection_documents(sharded)
    single_documents = collection_documents(single)
    assert sharded_documents == single_documents, "sharded results diverged!"
    print(f"sharded cluster and single server hold identical results: "
          f"{len(sharded_documents)} documents match document-for-document")


if __name__ == "__main__":
    main()
