"""Registering a new System under Evaluation from a declarative bundle.

Reproduces the first workflow of Section 3 / Figure 2: a new SuE is made known
to Chronos Control, either programmatically or from an extension bundle (the
stand-in for the git/mercurial extension repositories of the original).  The
example writes a bundle to a temporary directory, registers it, and shows the
parameter definitions and diagram configuration Chronos now knows about.

Run with::

    python examples/register_system.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.core.control import ChronosControl
from repro.core.parameters import ParameterDefinition
from repro.util.clock import SimulatedClock

BUNDLE_MANIFEST = {
    "name": "redis-like-cache",
    "description": "An in-memory cache evaluated for hit ratio and latency",
    "parameters": [
        {"name": "eviction_policy", "kind": "checkbox",
         "options": ["lru", "lfu", "random"], "description": "cache eviction policy"},
        {"name": "cache_size_mb", "kind": "interval",
         "description": "cache size sweep"},
        {"name": "zipf_theta", "kind": "value", "default": 0.99,
         "description": "skew of the access distribution"},
        {"name": "enable_pipelining", "kind": "boolean", "default": False,
         "description": "whether the client pipelines requests"},
    ],
    "result_config": {
        "metrics": ["hit_ratio", "latency_p99_ms"],
        "diagrams": [
            {"kind": "line", "title": "Hit ratio vs cache size",
             "x_field": "cache_size_mb", "y_field": "hit_ratio",
             "group_field": "eviction_policy"},
        ],
    },
}


def main() -> None:
    control = ChronosControl(clock=SimulatedClock())
    admin = control.users.get_by_username("admin")

    # --- variant 1: register from an extension bundle directory ----------------------
    with tempfile.TemporaryDirectory() as directory:
        bundle_dir = Path(directory) / "redis-like-cache"
        bundle_dir.mkdir()
        (bundle_dir / "system.json").write_text(json.dumps(BUNDLE_MANIFEST, indent=2))
        system = control.systems.register_from_bundle(bundle_dir, owner_id=admin.id)

    print(f"registered system {system.name!r} ({system.id}) from a bundle")
    print("parameter definitions:")
    for definition in control.systems.parameter_definitions(system.id):
        print(f"  - {definition.name:20} {definition.kind.value:9} "
              f"options={list(definition.options) or '-'} default={definition.default!r}")
    print("diagrams:")
    for spec in control.systems.diagrams(system.id):
        print(f"  - {spec['kind']:5} {spec['title']!r} "
              f"({spec['y_field']} over {spec['x_field']})")
    print()

    # --- variant 2: register programmatically (what the web UI form does) -------------
    ui_system = control.systems.register(
        name="message-queue",
        parameters=[
            ParameterDefinition.from_dict({"name": "brokers", "kind": "interval",
                                           "description": "number of broker nodes"}),
            ParameterDefinition.from_dict({"name": "durable", "kind": "boolean",
                                           "default": True}),
        ],
        description="A distributed message queue",
        owner_id=admin.id,
    )
    print(f"registered system {ui_system.name!r} ({ui_system.id}) via the API")

    # An experiment against the new system is validated against its definitions.
    project = control.projects.create("New systems", admin)
    experiment = control.experiments.create(
        project_id=project.id, system_id=system.id, name="eviction policy sweep",
        parameters={
            "eviction_policy": ["lru", "lfu"],
            "cache_size_mb": {"start": 64, "stop": 256, "step": 64},
            "zipf_theta": 0.99,
            "enable_pipelining": [True, False],
        },
    )
    print(f"experiment {experiment.name!r} expands into "
          f"{control.experiments.space_size(experiment.id)} jobs")


if __name__ == "__main__":
    main()
