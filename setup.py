"""Setup shim so ``pip install -e . --no-use-pep517`` works offline.

The evaluation environment has no network access and no ``wheel`` package,
so the modern PEP 517 editable-install path (which needs ``bdist_wheel``)
cannot run.  This classic setup script lets pip fall back to the legacy
``setup.py develop`` editable install.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Chronos: The Swiss Army Knife for Database "
        "Evaluations' (EDBT 2020): an Evaluation-as-a-Service toolkit with "
        "simulated database substrates."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
