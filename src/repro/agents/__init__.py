"""Concrete Chronos Agents for the Systems under Evaluation of this repository.

* :class:`~repro.agents.mongodb_agent.MongoDbAgent` -- the paper's demo: the
  comparative evaluation of the wiredTiger and mmapv1 storage engines.
* :class:`~repro.agents.sharded_agent.ShardedMongoAgent` -- the scale-out
  scenario: YCSB workloads against a sharded cluster behind a query router,
  sweeping shard count and placement strategy.
* :class:`~repro.agents.replicated_agent.ReplicatedMongoAgent` -- the
  durability/availability scenario: YCSB workloads against a replica set,
  sweeping write concern and read preference, optionally killing the
  primary mid-run.
* :class:`~repro.agents.kvstore_agent.KeyValueStoreAgent` -- a second SuE
  demonstrating that multiple systems can be evaluated through the same
  Chronos Control instance.
* :mod:`~repro.agents.testing` -- trivial and failure-injecting agents used by
  tests and the failure-handling experiments.
"""

from repro.agents.kvstore_agent import KeyValueStoreAgent, register_kvstore_system
from repro.agents.mongodb_agent import MongoDbAgent, register_mongodb_system
from repro.agents.replicated_agent import (
    ReplicatedMongoAgent,
    register_replicated_mongodb_system,
)
from repro.agents.sharded_agent import (
    ShardedMongoAgent,
    register_sharded_mongodb_system,
)
from repro.agents.testing import FlakyAgent, SleepAgent, register_sleep_system

__all__ = [
    "MongoDbAgent",
    "register_mongodb_system",
    "ShardedMongoAgent",
    "register_sharded_mongodb_system",
    "ReplicatedMongoAgent",
    "register_replicated_mongodb_system",
    "KeyValueStoreAgent",
    "register_kvstore_system",
    "SleepAgent",
    "FlakyAgent",
    "register_sleep_system",
]
