"""Concrete Chronos Agents for the Systems under Evaluation of this repository.

* :class:`~repro.agents.mongo_agent.MongoAgent` -- the one document-store
  agent, parameterized by a deployment
  :class:`~repro.docstore.topology.TopologySpec`.  The three mongo system
  names are thin registrations over it:

  * ``mongodb`` (:mod:`~repro.agents.mongodb_agent`) -- the paper's demo:
    the comparative evaluation of the wiredTiger and mmapv1 storage engines.
  * ``mongodb-sharded`` (:mod:`~repro.agents.sharded_agent`) -- the
    scale-out scenario: YCSB workloads against a sharded cluster behind a
    query router, sweeping shard count and placement strategy.
  * ``mongodb-replicated`` (:mod:`~repro.agents.replicated_agent`) -- the
    durability/availability scenario: YCSB workloads against a replica set,
    sweeping write concern and read preference, optionally killing the
    primary mid-run.

* :class:`~repro.agents.kvstore_agent.KeyValueStoreAgent` -- a second SuE
  demonstrating that multiple systems can be evaluated through the same
  Chronos Control instance.
* :mod:`~repro.agents.testing` -- trivial and failure-injecting agents used by
  tests and the failure-handling experiments.
"""

from repro.agents.kvstore_agent import KeyValueStoreAgent, register_kvstore_system
from repro.agents.mongo_agent import MongoAgent
from repro.agents.mongodb_agent import MongoDbAgent, register_mongodb_system
from repro.agents.replicated_agent import (
    ReplicatedMongoAgent,
    register_replicated_mongodb_system,
)
from repro.agents.sharded_agent import (
    ShardedMongoAgent,
    register_sharded_mongodb_system,
)
from repro.agents.testing import FlakyAgent, SleepAgent, register_sleep_system

__all__ = [
    "MongoAgent",
    "MongoDbAgent",
    "register_mongodb_system",
    "ShardedMongoAgent",
    "register_sharded_mongodb_system",
    "ReplicatedMongoAgent",
    "register_replicated_mongodb_system",
    "KeyValueStoreAgent",
    "register_kvstore_system",
    "SleepAgent",
    "FlakyAgent",
    "register_sleep_system",
]
