"""The ``mongodb`` system: the paper's storage-engine demonstration scenario.

The demo compares the two MongoDB storage engines *wiredTiger* and *mmapv1*
on a standalone server.  Since the topology refactor the lifecycle lives in
:class:`~repro.agents.mongo_agent.MongoAgent`; this module only keeps the
system registration (the parameters the demo's experiment sweeps plus the
diagrams of Fig. 3d) and the backwards-compatible agent name.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.agents.mongo_agent import MongoAgent
from repro.core.enums import DiagramKind
from repro.core.parameters import checkbox, interval, ratio, value
from repro.core.systems import diagram_spec, result_config

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl
    from repro.core.entities import System

MONGODB_SYSTEM_NAME = "mongodb"


def register_mongodb_system(control: "ChronosControl", owner_id: str = "") -> "System":
    """Register the MongoDB SuE with its demo parameters and diagrams."""
    parameters = [
        checkbox("storage_engine", ["wiredtiger", "mmapv1"],
                 "MongoDB storage engine to evaluate"),
        interval("threads", "number of concurrent client threads"),
        value("record_count", "documents loaded before the measurement", default=500),
        value("operation_count", "operations in the measured phase", default=1000),
        ratio("query_mix", "read:update ratio of the benchmark"),
        checkbox("distribution", ["uniform", "zipfian", "latest", "hotspot"],
                 "key access distribution"),
        value("ycsb_workload", "optional YCSB core workload overriding the mix",
              default="", required=False),
        value("seed", "random seed for reproducible runs", default=42, required=False),
    ]
    configuration = result_config(
        metrics=["throughput_ops_per_sec", "latency_avg_ms", "latency_p95_ms",
                 "latency_p99_ms", "storage_bytes"],
        diagrams=[
            diagram_spec(DiagramKind.LINE, "Throughput vs threads",
                         x_field="threads", y_field="throughput_ops_per_sec",
                         group_field="storage_engine"),
            diagram_spec(DiagramKind.LINE, "p95 latency vs threads",
                         x_field="threads", y_field="latency_p95_ms",
                         group_field="storage_engine"),
            diagram_spec(DiagramKind.BAR, "Storage footprint",
                         x_field="storage_engine", y_field="storage_bytes"),
        ],
    )
    return control.systems.register(
        name=MONGODB_SYSTEM_NAME,
        parameters=parameters,
        result_configuration=configuration,
        description="Document database with interchangeable storage engines "
                    "(wiredTiger vs mmapv1 demo)",
        owner_id=owner_id,
    )


class MongoDbAgent(MongoAgent):
    """The ``mongodb`` registration: a standalone server unless the
    deployment (or the job) declares another topology."""

    system_name = MONGODB_SYSTEM_NAME

    def __init__(self, server_factory: Any = None):
        super().__init__(server_factory=server_factory)
