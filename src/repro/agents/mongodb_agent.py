"""The MongoDB Chronos Agent: the paper's demonstration scenario.

The demo compares the two MongoDB storage engines *wiredTiger* and *mmapv1*.
This agent is the Chronos integration of the document-store evaluation
client: for every job it

1. starts (simulates) a server with the storage engine the job's parameters
   ask for and loads the benchmark collection (``set_up``),
2. warms the caches (``warm_up``),
3. runs the operation mix for the job's thread count (``execute``), and
4. reports throughput / latency as the result JSON (``analyze``).

The system registration helper defines exactly the parameters the demo's
experiment sweeps (storage engine, number of client threads, record and
operation counts, read/write ratio, key distribution) plus the diagrams shown
in Fig. 3d.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.agent.base import ChronosAgent, JobContext
from repro.core.enums import DiagramKind
from repro.core.parameters import checkbox, interval, ratio, value
from repro.core.systems import diagram_spec, result_config
from repro.docstore.server import DocumentServer
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import mix_from_ratio, ycsb_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl
    from repro.core.entities import System

MONGODB_SYSTEM_NAME = "mongodb"


def register_mongodb_system(control: "ChronosControl", owner_id: str = "") -> "System":
    """Register the MongoDB SuE with its demo parameters and diagrams."""
    parameters = [
        checkbox("storage_engine", ["wiredtiger", "mmapv1"],
                 "MongoDB storage engine to evaluate"),
        interval("threads", "number of concurrent client threads"),
        value("record_count", "documents loaded before the measurement", default=500),
        value("operation_count", "operations in the measured phase", default=1000),
        ratio("query_mix", "read:update ratio of the benchmark"),
        checkbox("distribution", ["uniform", "zipfian", "latest", "hotspot"],
                 "key access distribution"),
        value("ycsb_workload", "optional YCSB core workload overriding the mix",
              default="", required=False),
        value("seed", "random seed for reproducible runs", default=42, required=False),
    ]
    configuration = result_config(
        metrics=["throughput_ops_per_sec", "latency_avg_ms", "latency_p95_ms",
                 "latency_p99_ms", "storage_bytes"],
        diagrams=[
            diagram_spec(DiagramKind.LINE, "Throughput vs threads",
                         x_field="threads", y_field="throughput_ops_per_sec",
                         group_field="storage_engine"),
            diagram_spec(DiagramKind.LINE, "p95 latency vs threads",
                         x_field="threads", y_field="latency_p95_ms",
                         group_field="storage_engine"),
            diagram_spec(DiagramKind.BAR, "Storage footprint",
                         x_field="storage_engine", y_field="storage_bytes"),
        ],
    )
    return control.systems.register(
        name=MONGODB_SYSTEM_NAME,
        parameters=parameters,
        result_configuration=configuration,
        description="Document database with interchangeable storage engines "
                    "(wiredTiger vs mmapv1 demo)",
        owner_id=owner_id,
    )


class MongoDbAgent(ChronosAgent):
    """Chronos Agent wrapping the document-store evaluation client."""

    system_name = MONGODB_SYSTEM_NAME

    def __init__(self, server_factory=DocumentServer):
        self._server_factory = server_factory

    # -- lifecycle -----------------------------------------------------------------------

    def set_up(self, context: JobContext) -> None:
        parameters = context.parameters
        engine = parameters.get("storage_engine", "wiredtiger")
        spec = self._workload_spec(parameters)
        server = self._server_factory(storage_engine=engine)
        benchmark = DocumentBenchmark(server, spec)
        context.state["benchmark"] = benchmark
        context.log(f"starting {engine} deployment, loading {spec.record_count} records")
        load_seconds = benchmark.load()
        context.metrics.set("load_simulated_seconds", load_seconds)
        context.metrics.set("records_loaded", spec.record_count)

    def warm_up(self, context: JobContext) -> None:
        benchmark: DocumentBenchmark = context.state["benchmark"]
        warm_seconds = benchmark.warm_up()
        context.metrics.set("warmup_simulated_seconds", warm_seconds)
        context.log("warm-up finished")

    def execute(self, context: JobContext) -> dict[str, Any]:
        benchmark: DocumentBenchmark = context.state["benchmark"]
        context.log(
            f"running {benchmark.spec.operation_count} operations with "
            f"{benchmark.spec.threads} threads"
        )
        result = benchmark.run()
        context.metrics.set("operations", result.operations)
        context.metrics.set("throughput_ops_per_sec", result.throughput_ops_per_sec)
        return result.as_dict()

    def analyze(self, context: JobContext, raw: dict[str, Any]) -> dict[str, Any]:
        """Attach the job parameters so every result is self-describing."""
        analysed = dict(raw)
        analysed["parameters"] = dict(context.parameters)
        analysed["storage_bytes"] = raw.get("engine_statistics", {}).get("storage_bytes", 0)
        return analysed

    def clean_up(self, context: JobContext) -> None:
        context.state.pop("benchmark", None)

    def extra_result_files(self, context: JobContext,
                           result: dict[str, Any]) -> dict[str, str] | None:
        """Store the raw engine statistics in the result archive."""
        statistics = result.get("engine_statistics", {})
        lines = [f"{key}: {statistics[key]}" for key in sorted(statistics)]
        return {"engine_statistics.txt": "\n".join(lines)}

    # -- helpers -----------------------------------------------------------------------------

    @staticmethod
    def _workload_spec(parameters: dict[str, Any]) -> WorkloadSpec:
        workload_name = parameters.get("ycsb_workload") or ""
        if workload_name:
            workload = ycsb_workload(workload_name)
            mix = workload.mix
            distribution = workload.distribution
        else:
            mix = mix_from_ratio(parameters.get("query_mix", "95:5"))
            distribution = parameters.get("distribution", "zipfian")
        return WorkloadSpec(
            record_count=int(parameters.get("record_count", 500)),
            operation_count=int(parameters.get("operation_count", 1000)),
            threads=int(parameters.get("threads", 1)),
            mix=mix,
            distribution=distribution,
            seed=int(parameters.get("seed", 42)),
        )
