"""Chronos Agent for the key-value store SuE (second system, requirement ii)."""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any

from repro.agent.base import ChronosAgent, JobContext
from repro.core.enums import DiagramKind
from repro.core.parameters import checkbox, value
from repro.core.systems import diagram_spec, result_config
from repro.kvstore.store import KeyValueStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl
    from repro.core.entities import System

KVSTORE_SYSTEM_NAME = "kvstore"


def register_kvstore_system(control: "ChronosControl", owner_id: str = "") -> "System":
    """Register the key-value store SuE."""
    parameters = [
        checkbox("engine", ["hash", "log"], "key-value engine"),
        value("key_count", "number of keys loaded", default=1000),
        value("operation_count", "operations in the measured phase", default=2000),
        value("value_size", "value size in bytes", default=256),
        value("write_fraction", "fraction of put operations", default=0.5),
        value("seed", "random seed", default=7, required=False),
    ]
    configuration = result_config(
        metrics=["throughput_ops_per_sec", "latency_avg_ms", "storage_bytes"],
        diagrams=[
            diagram_spec(DiagramKind.BAR, "Throughput by engine",
                         x_field="engine", y_field="throughput_ops_per_sec"),
            diagram_spec(DiagramKind.PIE, "Operations",
                         x_field="operation", y_field="count"),
        ],
    )
    return control.systems.register(
        name=KVSTORE_SYSTEM_NAME,
        parameters=parameters,
        result_configuration=configuration,
        description="Embedded key-value store with hash and log-structured engines",
        owner_id=owner_id,
    )


class KeyValueStoreAgent(ChronosAgent):
    """Evaluation client for the key-value store."""

    system_name = KVSTORE_SYSTEM_NAME

    def set_up(self, context: JobContext) -> None:
        parameters = context.parameters
        store = KeyValueStore(engine=parameters.get("engine", "hash"))
        rng = random.Random(int(parameters.get("seed", 7)))
        value_size = int(parameters.get("value_size", 256))
        key_count = int(parameters.get("key_count", 1000))
        payload = "x" * value_size
        for index in range(key_count):
            store.put(f"key{index}", payload)
        context.state.update({"store": store, "rng": rng, "key_count": key_count,
                              "value_size": value_size})
        context.log(f"loaded {key_count} keys into the {store.engine.name} engine")

    def warm_up(self, context: JobContext) -> None:
        store: KeyValueStore = context.state["store"]
        rng: random.Random = context.state["rng"]
        for _ in range(min(100, context.state["key_count"])):
            store.get(f"key{rng.randrange(context.state['key_count'])}")

    def execute(self, context: JobContext) -> dict[str, Any]:
        store: KeyValueStore = context.state["store"]
        rng: random.Random = context.state["rng"]
        key_count = context.state["key_count"]
        payload = "y" * context.state["value_size"]
        operation_count = int(context.parameters.get("operation_count", 2000))
        write_fraction = float(context.parameters.get("write_fraction", 0.5))

        latencies: list[float] = []
        reads = writes = 0
        for _ in range(operation_count):
            key = f"key{rng.randrange(key_count)}"
            if rng.random() < write_fraction:
                latencies.append(store.put(key, payload))
                writes += 1
            else:
                __, cost = store.get_with_cost(key)
                latencies.append(cost)
                reads += 1
        total = sum(latencies)
        return {
            "engine": store.engine.name,
            "operations": operation_count,
            "reads": reads,
            "writes": writes,
            "simulated_seconds": total,
            "throughput_ops_per_sec": operation_count / total if total else 0.0,
            "latency_avg_ms": (total / operation_count) * 1000.0 if operation_count else 0.0,
            "storage_bytes": store.engine.storage_bytes(),
            "engine_statistics": store.statistics(),
        }

    def analyze(self, context: JobContext, raw: dict[str, Any]) -> dict[str, Any]:
        analysed = dict(raw)
        analysed["parameters"] = dict(context.parameters)
        return analysed

    def clean_up(self, context: JobContext) -> None:
        context.state.clear()
