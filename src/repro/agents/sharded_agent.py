"""The ``mongodb-sharded`` system: the scale-out evaluation scenario.

Registers the sharded document-store SuE (shard count x placement strategy x
engine) and binds the shared :class:`~repro.agents.mongo_agent.MongoAgent`
to it with a two-shard default topology and cluster statistics in the
results.  The deployment itself is built by the topology layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.agents.mongo_agent import FACET_CLUSTER, MongoAgent
from repro.core.enums import DiagramKind
from repro.core.parameters import checkbox, interval, ratio, value
from repro.core.systems import diagram_spec, result_config

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl
    from repro.core.entities import System

SHARDED_MONGODB_SYSTEM_NAME = "mongodb-sharded"


def register_sharded_mongodb_system(control: "ChronosControl",
                                    owner_id: str = "") -> "System":
    """Register the sharded document-store SuE with its evaluation axes."""
    parameters = [
        checkbox("storage_engine", ["wiredtiger", "mmapv1"],
                 "storage engine every shard runs"),
        interval("shards", "number of shards in the cluster"),
        checkbox("shard_strategy", ["hash", "range"],
                 "chunk placement strategy of the shard key"),
        interval("threads", "number of concurrent client threads"),
        value("record_count", "documents loaded before the measurement", default=500),
        value("operation_count", "operations in the measured phase", default=1000),
        ratio("query_mix", "read:update ratio of the benchmark"),
        checkbox("distribution", ["uniform", "zipfian", "latest", "hotspot"],
                 "key access distribution"),
        value("ycsb_workload", "optional YCSB core workload overriding the mix",
              default="", required=False),
        value("shard_key", "field the collection is sharded on",
              default="_id", required=False),
        value("seed", "random seed for reproducible runs", default=42, required=False),
    ]
    configuration = result_config(
        metrics=["throughput_ops_per_sec", "latency_avg_ms", "latency_p95_ms",
                 "latency_p99_ms", "storage_bytes", "chunks", "migrations"],
        diagrams=[
            diagram_spec(DiagramKind.LINE, "Throughput vs shards",
                         x_field="shards", y_field="throughput_ops_per_sec",
                         group_field="storage_engine"),
            diagram_spec(DiagramKind.LINE, "p95 latency vs shards",
                         x_field="shards", y_field="latency_p95_ms",
                         group_field="storage_engine"),
            diagram_spec(DiagramKind.BAR, "Chunk migrations",
                         x_field="shards", y_field="migrations"),
        ],
    )
    return control.systems.register(
        name=SHARDED_MONGODB_SYSTEM_NAME,
        parameters=parameters,
        result_configuration=configuration,
        description="Sharded document database behind a mongos-style query "
                    "router (scale-out scenario)",
        owner_id=owner_id,
    )


class ShardedMongoAgent(MongoAgent):
    """The ``mongodb-sharded`` registration: two shards unless specified."""

    system_name = SHARDED_MONGODB_SYSTEM_NAME
    topology_defaults = {"shards": 2}
    result_facets = (FACET_CLUSTER,)
