"""The sharded-deployment Chronos Agent: scale-out evaluation scenario.

Where :class:`~repro.agents.mongodb_agent.MongoDbAgent` compares storage
engines on one server, this agent evaluates a *sharded* document-store
deployment: for every job it starts a
:class:`~repro.docstore.sharding.cluster.ShardedCluster` with the requested
shard count, key strategy and storage engine, loads and balances the
benchmark collection, runs the operation mix through the query router, and
reports the usual throughput/latency metrics plus the cluster's chunk and
migration statistics.

The registered system sweeps a new evaluation axis the single-server demo
cannot express: shard count x placement strategy x engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.agent.base import ChronosAgent, JobContext
from repro.core.enums import DiagramKind
from repro.core.parameters import checkbox, interval, ratio, value
from repro.core.systems import diagram_spec, result_config
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import mix_from_ratio, ycsb_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl
    from repro.core.entities import System

SHARDED_MONGODB_SYSTEM_NAME = "mongodb-sharded"


def register_sharded_mongodb_system(control: "ChronosControl",
                                    owner_id: str = "") -> "System":
    """Register the sharded document-store SuE with its evaluation axes."""
    parameters = [
        checkbox("storage_engine", ["wiredtiger", "mmapv1"],
                 "storage engine every shard runs"),
        interval("shards", "number of shards in the cluster"),
        checkbox("shard_strategy", ["hash", "range"],
                 "chunk placement strategy of the shard key"),
        interval("threads", "number of concurrent client threads"),
        value("record_count", "documents loaded before the measurement", default=500),
        value("operation_count", "operations in the measured phase", default=1000),
        ratio("query_mix", "read:update ratio of the benchmark"),
        checkbox("distribution", ["uniform", "zipfian", "latest", "hotspot"],
                 "key access distribution"),
        value("ycsb_workload", "optional YCSB core workload overriding the mix",
              default="", required=False),
        value("shard_key", "field the collection is sharded on",
              default="_id", required=False),
        value("seed", "random seed for reproducible runs", default=42, required=False),
    ]
    configuration = result_config(
        metrics=["throughput_ops_per_sec", "latency_avg_ms", "latency_p95_ms",
                 "latency_p99_ms", "storage_bytes", "chunks", "migrations"],
        diagrams=[
            diagram_spec(DiagramKind.LINE, "Throughput vs shards",
                         x_field="shards", y_field="throughput_ops_per_sec",
                         group_field="storage_engine"),
            diagram_spec(DiagramKind.LINE, "p95 latency vs shards",
                         x_field="shards", y_field="latency_p95_ms",
                         group_field="storage_engine"),
            diagram_spec(DiagramKind.BAR, "Chunk migrations",
                         x_field="shards", y_field="migrations"),
        ],
    )
    return control.systems.register(
        name=SHARDED_MONGODB_SYSTEM_NAME,
        parameters=parameters,
        result_configuration=configuration,
        description="Sharded document database behind a mongos-style query "
                    "router (scale-out scenario)",
        owner_id=owner_id,
    )


class ShardedMongoAgent(ChronosAgent):
    """Chronos Agent driving YCSB workloads against a sharded cluster."""

    system_name = SHARDED_MONGODB_SYSTEM_NAME

    # -- lifecycle -----------------------------------------------------------------------

    def set_up(self, context: JobContext) -> None:
        parameters = context.parameters
        engine = parameters.get("storage_engine", "wiredtiger")
        spec = self._workload_spec(parameters)
        benchmark = DocumentBenchmark.for_spec(spec, storage_engine=engine)
        context.state["benchmark"] = benchmark
        context.log(
            f"starting {engine} cluster with {spec.shards} shard(s) "
            f"({spec.shard_strategy} strategy), loading {spec.record_count} records"
        )
        load_seconds = benchmark.load()
        context.metrics.set("load_simulated_seconds", load_seconds)
        context.metrics.set("records_loaded", spec.record_count)

    def warm_up(self, context: JobContext) -> None:
        benchmark: DocumentBenchmark = context.state["benchmark"]
        warm_seconds = benchmark.warm_up()
        context.metrics.set("warmup_simulated_seconds", warm_seconds)
        context.log("warm-up finished")

    def execute(self, context: JobContext) -> dict[str, Any]:
        benchmark: DocumentBenchmark = context.state["benchmark"]
        context.log(
            f"running {benchmark.spec.operation_count} operations with "
            f"{benchmark.spec.threads} threads on {benchmark.spec.shards} shard(s)"
        )
        result = benchmark.run()
        context.metrics.set("operations", result.operations)
        context.metrics.set("throughput_ops_per_sec", result.throughput_ops_per_sec)
        return result.as_dict()

    def analyze(self, context: JobContext, raw: dict[str, Any]) -> dict[str, Any]:
        """Attach parameters plus cluster-level chunk/balancer statistics."""
        analysed = dict(raw)
        statistics = raw.get("engine_statistics", {})
        analysed["parameters"] = dict(context.parameters)
        analysed["storage_bytes"] = statistics.get("storage_bytes", 0)
        analysed["chunks"] = statistics.get("chunks", 1)
        analysed["migrations"] = statistics.get("migrations", 0)
        analysed["chunk_distribution"] = statistics.get("chunk_distribution", {})
        return analysed

    def clean_up(self, context: JobContext) -> None:
        context.state.pop("benchmark", None)

    def extra_result_files(self, context: JobContext,
                           result: dict[str, Any]) -> dict[str, str] | None:
        """Archive the cluster's chunk table next to the result JSON."""
        statistics = result.get("engine_statistics", {})
        lines = [f"shard_key: {statistics.get('shard_key', '_id')}",
                 f"strategy: {statistics.get('strategy', 'hash')}",
                 f"chunks: {statistics.get('chunks', 1)}",
                 f"splits: {statistics.get('splits', 0)}",
                 f"migrations: {statistics.get('migrations', 0)}",
                 f"chunk_distribution: {statistics.get('chunk_distribution', {})}"]
        return {"cluster_statistics.txt": "\n".join(lines)}

    # -- helpers -----------------------------------------------------------------------------

    @staticmethod
    def _workload_spec(parameters: dict[str, Any]) -> WorkloadSpec:
        workload_name = parameters.get("ycsb_workload") or ""
        if workload_name:
            workload = ycsb_workload(workload_name)
            mix = workload.mix
            distribution = workload.distribution
        else:
            mix = mix_from_ratio(parameters.get("query_mix", "95:5"))
            distribution = parameters.get("distribution", "zipfian")
        return WorkloadSpec(
            record_count=int(parameters.get("record_count", 500)),
            operation_count=int(parameters.get("operation_count", 1000)),
            threads=int(parameters.get("threads", 1)),
            mix=mix,
            distribution=distribution,
            seed=int(parameters.get("seed", 42)),
            shards=int(parameters.get("shards", 2)),
            shard_key=parameters.get("shard_key", "_id") or "_id",
            shard_strategy=parameters.get("shard_strategy", "hash"),
        )
