"""The ``mongodb-replicated`` system: the durability/availability scenario.

Registers the replicated document-store SuE (write concern x read preference
x member count, with and without a primary failure) and binds the shared
:class:`~repro.agents.mongo_agent.MongoAgent` to it with a three-member
default topology and replication statistics in the results.  Failure
injection (``kill_primary_at``) lives in the shared agent, so every
registration -- and every deployment-declared replica-set topology -- can
use it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.agents.mongo_agent import FACET_REPLICATION, MongoAgent
from repro.core.enums import DiagramKind
from repro.core.parameters import checkbox, interval, ratio, value
from repro.core.systems import diagram_spec, result_config
from repro.docstore.topology import parse_write_concern  # noqa: F401 - re-export

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl
    from repro.core.entities import System

REPLICATED_MONGODB_SYSTEM_NAME = "mongodb-replicated"


def register_replicated_mongodb_system(control: "ChronosControl",
                                       owner_id: str = "") -> "System":
    """Register the replicated document-store SuE with its evaluation axes."""
    parameters = [
        checkbox("storage_engine", ["wiredtiger", "mmapv1"],
                 "storage engine every member runs"),
        interval("replicas", "replica-set members (1 primary + N-1 secondaries)"),
        checkbox("write_concern", ["1", "2", "majority"],
                 "members that must acknowledge every write"),
        checkbox("read_preference", ["primary", "secondary", "nearest"],
                 "member selection for reads"),
        value("replication_lag", "oplog entries secondaries may trail behind",
              default=0, required=False),
        value("kill_primary_at",
              "fraction of the measured phase after which the primary is "
              "killed (0 disables failure injection)",
              default=0.0, required=False),
        interval("threads", "number of concurrent client threads"),
        value("record_count", "documents loaded before the measurement", default=500),
        value("operation_count", "operations in the measured phase", default=1000),
        ratio("query_mix", "read:update ratio of the benchmark"),
        checkbox("distribution", ["uniform", "zipfian", "latest", "hotspot"],
                 "key access distribution"),
        value("ycsb_workload", "optional YCSB core workload overriding the mix",
              default="", required=False),
        value("seed", "random seed for reproducible runs", default=42, required=False),
    ]
    configuration = result_config(
        metrics=["throughput_ops_per_sec", "latency_avg_ms", "latency_p95_ms",
                 "latency_p99_ms", "failovers", "rolled_back_entries",
                 "staleness_mean"],
        diagrams=[
            diagram_spec(DiagramKind.LINE, "Latency vs write concern",
                         x_field="write_concern", y_field="latency_avg_ms",
                         group_field="storage_engine"),
            diagram_spec(DiagramKind.LINE, "Throughput vs read preference",
                         x_field="read_preference",
                         y_field="throughput_ops_per_sec",
                         group_field="storage_engine"),
            diagram_spec(DiagramKind.BAR, "Rolled-back writes",
                         x_field="write_concern", y_field="rolled_back_entries"),
        ],
    )
    return control.systems.register(
        name=REPLICATED_MONGODB_SYSTEM_NAME,
        parameters=parameters,
        result_configuration=configuration,
        description="Replicated document database (replica set with an oplog, "
                    "elections, write/read concern and failure injection)",
        owner_id=owner_id,
    )


class ReplicatedMongoAgent(MongoAgent):
    """The ``mongodb-replicated`` registration: three members unless specified."""

    system_name = REPLICATED_MONGODB_SYSTEM_NAME
    topology_defaults = {"replicas": 3}
    result_facets = (FACET_REPLICATION,)
