"""The replicated-deployment Chronos Agent: durability/availability scenario.

Where :class:`~repro.agents.sharded_agent.ShardedMongoAgent` evaluates
scale-out, this agent evaluates a *replicated* document-store deployment:
for every job it starts a
:class:`~repro.docstore.replication.replica_set.ReplicaSet` with the
requested member count, write concern, read preference and replication lag,
optionally kills the primary mid-run through a
:class:`~repro.docstore.replication.failures.FailureInjector`, and reports
the usual throughput/latency metrics plus the replication statistics the
scenario is about: failovers, elections, rolled-back (lost) acknowledged
writes and secondary-read staleness.

The registered system sweeps the consistency/availability axis the other
demos cannot express: write concern x read preference x member count, with
and without a primary failure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.agent.base import ChronosAgent, JobContext
from repro.core.enums import DiagramKind
from repro.core.parameters import checkbox, interval, ratio, value
from repro.core.systems import diagram_spec, result_config
from repro.docstore.replication.failures import FailureInjector
from repro.docstore.replication.replica_set import ReplicaSet
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import mix_from_ratio, ycsb_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl
    from repro.core.entities import System

REPLICATED_MONGODB_SYSTEM_NAME = "mongodb-replicated"


def parse_write_concern(raw: Any) -> int | str:
    """``"majority"`` stays a string, anything else becomes an int."""
    if raw == "majority":
        return "majority"
    return int(raw)


def register_replicated_mongodb_system(control: "ChronosControl",
                                       owner_id: str = "") -> "System":
    """Register the replicated document-store SuE with its evaluation axes."""
    parameters = [
        checkbox("storage_engine", ["wiredtiger", "mmapv1"],
                 "storage engine every member runs"),
        interval("replicas", "replica-set members (1 primary + N-1 secondaries)"),
        checkbox("write_concern", ["1", "2", "majority"],
                 "members that must acknowledge every write"),
        checkbox("read_preference", ["primary", "secondary", "nearest"],
                 "member selection for reads"),
        value("replication_lag", "oplog entries secondaries may trail behind",
              default=0, required=False),
        value("kill_primary_at",
              "fraction of the measured phase after which the primary is "
              "killed (0 disables failure injection)",
              default=0.0, required=False),
        interval("threads", "number of concurrent client threads"),
        value("record_count", "documents loaded before the measurement", default=500),
        value("operation_count", "operations in the measured phase", default=1000),
        ratio("query_mix", "read:update ratio of the benchmark"),
        checkbox("distribution", ["uniform", "zipfian", "latest", "hotspot"],
                 "key access distribution"),
        value("ycsb_workload", "optional YCSB core workload overriding the mix",
              default="", required=False),
        value("seed", "random seed for reproducible runs", default=42, required=False),
    ]
    configuration = result_config(
        metrics=["throughput_ops_per_sec", "latency_avg_ms", "latency_p95_ms",
                 "latency_p99_ms", "failovers", "rolled_back_entries",
                 "staleness_mean"],
        diagrams=[
            diagram_spec(DiagramKind.LINE, "Latency vs write concern",
                         x_field="write_concern", y_field="latency_avg_ms",
                         group_field="storage_engine"),
            diagram_spec(DiagramKind.LINE, "Throughput vs read preference",
                         x_field="read_preference",
                         y_field="throughput_ops_per_sec",
                         group_field="storage_engine"),
            diagram_spec(DiagramKind.BAR, "Rolled-back writes",
                         x_field="write_concern", y_field="rolled_back_entries"),
        ],
    )
    return control.systems.register(
        name=REPLICATED_MONGODB_SYSTEM_NAME,
        parameters=parameters,
        result_configuration=configuration,
        description="Replicated document database (replica set with an oplog, "
                    "elections, write/read concern and failure injection)",
        owner_id=owner_id,
    )


class ReplicatedMongoAgent(ChronosAgent):
    """Chronos Agent driving YCSB workloads against a replica set."""

    system_name = REPLICATED_MONGODB_SYSTEM_NAME

    # -- lifecycle -----------------------------------------------------------------------

    def set_up(self, context: JobContext) -> None:
        parameters = context.parameters
        engine = parameters.get("storage_engine", "wiredtiger")
        spec = self._workload_spec(parameters)
        benchmark = DocumentBenchmark.for_spec(spec, storage_engine=engine)
        context.state["benchmark"] = benchmark
        context.log(
            f"starting {engine} replica set with {spec.replicas} member(s), "
            f"w={spec.write_concern!r}, reads={spec.read_preference}, "
            f"lag={spec.replication_lag}; loading {spec.record_count} records"
        )
        load_seconds = benchmark.load()
        context.metrics.set("load_simulated_seconds", load_seconds)
        context.metrics.set("records_loaded", spec.record_count)

    def warm_up(self, context: JobContext) -> None:
        benchmark: DocumentBenchmark = context.state["benchmark"]
        warm_seconds = benchmark.warm_up()
        context.metrics.set("warmup_simulated_seconds", warm_seconds)
        context.log("warm-up finished")

    def execute(self, context: JobContext) -> dict[str, Any]:
        benchmark: DocumentBenchmark = context.state["benchmark"]
        spec = benchmark.spec
        kill_fraction = float(context.parameters.get("kill_primary_at", 0.0) or 0.0)
        injector = self._arm_failure_injection(context, benchmark, kill_fraction)
        context.log(
            f"running {spec.operation_count} operations with "
            f"{spec.threads} threads on {spec.replicas} member(s)"
        )
        result = benchmark.run()
        context.metrics.set("operations", result.operations)
        context.metrics.set("throughput_ops_per_sec", result.throughput_ops_per_sec)
        raw = result.as_dict()
        if injector is not None:
            raw["failure_events"] = list(injector.events)
        return raw

    def analyze(self, context: JobContext, raw: dict[str, Any]) -> dict[str, Any]:
        """Attach parameters plus replication statistics."""
        analysed = dict(raw)
        statistics = raw.get("engine_statistics", {})
        replication = statistics.get("replication", {})
        analysed["parameters"] = dict(context.parameters)
        analysed["storage_bytes"] = statistics.get("storage_bytes", 0)
        analysed["failovers"] = replication.get("failovers", 0)
        analysed["rolled_back_entries"] = replication.get("rolled_back_entries", 0)
        analysed["staleness_mean"] = replication.get("staleness_mean", 0.0)
        analysed["staleness_max"] = replication.get("staleness_max", 0)
        analysed["oplog_entries"] = replication.get("oplog_entries", 0)
        analysed["elections"] = replication.get("elections", [])
        return analysed

    def clean_up(self, context: JobContext) -> None:
        context.state.pop("benchmark", None)

    def extra_result_files(self, context: JobContext,
                           result: dict[str, Any]) -> dict[str, str] | None:
        """Archive the replication status next to the result JSON."""
        statistics = result.get("engine_statistics", {})
        replication = statistics.get("replication", {})
        lines = [f"set: {replication.get('set', 'rs0')}",
                 f"replicas: {replication.get('replicas', 1)}",
                 f"write_concern: {replication.get('write_concern', 1)}",
                 f"read_preference: {replication.get('read_preference', 'primary')}",
                 f"oplog_entries: {replication.get('oplog_entries', 0)}",
                 f"failovers: {replication.get('failovers', 0)}",
                 f"rolled_back_entries: {replication.get('rolled_back_entries', 0)}",
                 f"staleness_mean: {replication.get('staleness_mean', 0.0)}",
                 f"failure_events: {result.get('failure_events', [])}"]
        return {"replication_status.txt": "\n".join(lines)}

    # -- helpers -----------------------------------------------------------------------------

    @staticmethod
    def _arm_failure_injection(context: JobContext, benchmark: DocumentBenchmark,
                               kill_fraction: float) -> FailureInjector | None:
        """Install an operation hook killing the primary mid-run."""
        if kill_fraction <= 0:
            return None
        server = benchmark.server
        if not isinstance(server, ReplicaSet):
            context.log("kill_primary_at ignored: deployment is not a replica set")
            return None
        injector = FailureInjector(server)
        kill_at = int(benchmark.spec.operation_count * min(kill_fraction, 1.0))

        def hook(index: int) -> None:
            if index == kill_at:
                victim = injector.kill_primary()
                context.log(f"failure injection: killed primary member{victim} "
                            f"at operation {index}")

        benchmark.operation_hook = hook
        return injector

    @staticmethod
    def _workload_spec(parameters: dict[str, Any]) -> WorkloadSpec:
        workload_name = parameters.get("ycsb_workload") or ""
        if workload_name:
            workload = ycsb_workload(workload_name)
            mix = workload.mix
            distribution = workload.distribution
        else:
            mix = mix_from_ratio(parameters.get("query_mix", "95:5"))
            distribution = parameters.get("distribution", "zipfian")
        return WorkloadSpec(
            record_count=int(parameters.get("record_count", 500)),
            operation_count=int(parameters.get("operation_count", 1000)),
            threads=int(parameters.get("threads", 1)),
            mix=mix,
            distribution=distribution,
            seed=int(parameters.get("seed", 42)),
            replicas=int(parameters.get("replicas", 3)),
            write_concern=parse_write_concern(parameters.get("write_concern", 1)),
            read_preference=parameters.get("read_preference", "primary"),
            replication_lag=int(parameters.get("replication_lag", 0)),
        )
