"""Trivial and failure-injecting agents used by tests and experiments E3/E4."""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any

from repro.agent.base import ChronosAgent, JobContext
from repro.core.parameters import value
from repro.core.systems import result_config
from repro.errors import AgentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl
    from repro.core.entities import System

SLEEP_SYSTEM_NAME = "sleep-system"


def register_sleep_system(control: "ChronosControl", owner_id: str = "",
                          name: str = SLEEP_SYSTEM_NAME) -> "System":
    """Register the trivial SuE used by scheduling and failure experiments."""
    parameters = [
        value("work_units", "amount of simulated work", default=10),
        value("payload", "opaque payload echoed into the result", default="", required=False),
    ]
    return control.systems.register(
        name=name,
        parameters=parameters,
        result_configuration=result_config(metrics=["work_done"]),
        description="A trivial SuE that does simulated work (tests and ablations)",
        owner_id=owner_id,
    )


class SleepAgent(ChronosAgent):
    """Performs ``work_units`` of simulated work and reports it."""

    system_name = SLEEP_SYSTEM_NAME

    def __init__(self, work_seconds_per_unit: float = 0.0):
        self.work_seconds_per_unit = work_seconds_per_unit
        self.jobs_executed = 0

    def set_up(self, context: JobContext) -> None:
        context.state["work_units"] = int(context.parameters.get("work_units", 10))

    def execute(self, context: JobContext) -> dict[str, Any]:
        work_units = context.state["work_units"]
        for unit in range(work_units):
            context.metrics.increment("work_done")
            if work_units:
                context.progress(25 + int(60 * (unit + 1) / work_units))
        self.jobs_executed += 1
        return {
            "work_done": work_units,
            "payload": context.parameters.get("payload", ""),
        }


class FlakyAgent(SleepAgent):
    """Fails a configurable fraction of its executions (failure-handling tests).

    Failure decisions are drawn from a seeded RNG, so a run is reproducible;
    ``fail_first_attempts`` makes the first N executions fail deterministically
    which is convenient for asserting retry behaviour.
    """

    def __init__(self, failure_rate: float = 0.0, fail_first_attempts: int = 0,
                 seed: int = 1234):
        super().__init__()
        self.failure_rate = failure_rate
        self.fail_first_attempts = fail_first_attempts
        self._rng = random.Random(seed)
        self.attempts = 0
        self.failures_injected = 0

    def execute(self, context: JobContext) -> dict[str, Any]:
        self.attempts += 1
        should_fail = (
            self.attempts <= self.fail_first_attempts
            or self._rng.random() < self.failure_rate
        )
        if should_fail:
            self.failures_injected += 1
            raise AgentError(f"injected failure on attempt {self.attempts}")
        return super().execute(context)


class CrashingAgent(SleepAgent):
    """Claims a job and never reports back (simulates an agent host crash).

    Used by the stall-detection tests: the job stays *running* with a stale
    heartbeat until Chronos Control's recovery pass re-schedules it.
    """

    def execute(self, context: JobContext) -> dict[str, Any]:
        raise SystemExit("simulated agent crash")
