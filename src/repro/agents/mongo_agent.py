"""One Chronos Agent for every document-store deployment topology.

The three historical agents (``mongodb``, ``mongodb-sharded``,
``mongodb-replicated``) each re-implemented the same lifecycle -- build a
deployment, load, warm up, run the mix, report -- differing only in which
topology parameters they read and which statistics they attached to the
result.  :class:`MongoAgent` is that lifecycle written once, parameterized by
a :class:`~repro.docstore.topology.TopologySpec`; the historical system names
survive as thin registrations over it (see
:mod:`repro.agents.mongodb_agent`, :mod:`repro.agents.sharded_agent` and
:mod:`repro.agents.replicated_agent`).

Topology resolution layers, weakest first:

1. the registration's :attr:`~MongoAgent.topology_defaults` (e.g. the
   ``mongodb-sharded`` system assumes two shards),
2. the job parameters (an experiment sweeping ``shards`` still works
   exactly as before), and
3. the topology declared on the *deployment* the agent serves
   (``Deployment.environment["topology"]``, written by
   :meth:`~repro.core.deployments.DeploymentService.register`) -- this is
   what lets one evaluation compare standalone, sharded and replicated
   deployments without a single topology parameter in the job.

The deployment declaration is strongest deliberately: a declared shape is
the deployment's physical truth, and job parameter sets materialize the
registration's *defaults* for every parameter an experiment leaves unset --
if parameters outranked the declaration, those untouched defaults would
silently reshape the declared deployment.  The declaration only covers the
fields it actually names (the control plane stores dictionary declarations
sparsely), so a deployment declared as ``{"shards": 4}`` still lets an
experiment sweep ``storage_engine``.

The agent contains no topology-construction logic: the resolved spec goes to
:meth:`DocumentBenchmark.for_topology`, which builds through
:func:`~repro.docstore.topology.build_topology`.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.agent.base import ChronosAgent, JobContext
from repro.docstore.replication.failures import FailureInjector
from repro.docstore.replication.replica_set import ReplicaSet
from repro.docstore.topology import TopologySpec
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import mix_from_ratio, ycsb_workload

#: Result facets a registration can enable: ``"cluster"`` attaches chunk and
#: migration statistics, ``"replication"`` failover/staleness statistics.
FACET_CLUSTER = "cluster"
FACET_REPLICATION = "replication"


class MongoAgent(ChronosAgent):
    """The parameterized document-store agent behind every mongo system."""

    system_name = "mongodb"
    #: Topology values assumed when neither the deployment environment nor
    #: the job parameters specify them (how the registrations differ).
    topology_defaults: Mapping[str, Any] = {}
    #: Which statistics families ``analyze`` promotes into the result.
    result_facets: tuple[str, ...] = ()

    def __init__(self, system_name: str | None = None,
                 topology_defaults: Mapping[str, Any] | None = None,
                 result_facets: tuple[str, ...] | None = None,
                 server_factory: Any = None):
        if system_name is not None:
            self.system_name = system_name
        if topology_defaults is not None:
            self.topology_defaults = dict(topology_defaults)
        if result_facets is not None:
            self.result_facets = tuple(result_facets)
        self._server_factory = server_factory

    # -- lifecycle -----------------------------------------------------------------------

    def set_up(self, context: JobContext) -> None:
        topology = self.topology_for(context)
        spec = self._workload_spec(context.parameters, topology)
        if self._server_factory is not None:
            # Test seam: a caller-supplied deployment bypasses the factory
            # (its topology is derived by the topology layer for reporting).
            server = self._server_factory(storage_engine=topology.storage_engine)
            benchmark = DocumentBenchmark(server, spec)
        else:
            benchmark = DocumentBenchmark.for_topology(topology, spec)
        context.state["benchmark"] = benchmark
        context.log(f"starting {benchmark.topology.describe()}, "
                    f"loading {spec.record_count} records")
        load_seconds = benchmark.load()
        context.metrics.set("load_simulated_seconds", load_seconds)
        context.metrics.set("records_loaded", spec.record_count)

    def warm_up(self, context: JobContext) -> None:
        benchmark: DocumentBenchmark = context.state["benchmark"]
        warm_seconds = benchmark.warm_up()
        context.metrics.set("warmup_simulated_seconds", warm_seconds)
        context.log("warm-up finished")

    def execute(self, context: JobContext) -> dict[str, Any]:
        benchmark: DocumentBenchmark = context.state["benchmark"]
        spec = benchmark.spec
        kill_fraction = float(context.parameters.get("kill_primary_at", 0.0) or 0.0)
        injector = self._arm_failure_injection(context, benchmark, kill_fraction)
        context.log(
            f"running {spec.operation_count} operations with {spec.threads} "
            f"threads on {benchmark.topology.describe()}"
        )
        result = benchmark.run()
        context.metrics.set("operations", result.operations)
        context.metrics.set("throughput_ops_per_sec", result.throughput_ops_per_sec)
        raw = result.as_dict()
        if injector is not None:
            raw["failure_events"] = list(injector.events)
        return raw

    def analyze(self, context: JobContext, raw: dict[str, Any]) -> dict[str, Any]:
        """Attach the job parameters plus the facets' statistics."""
        analysed = dict(raw)
        statistics = raw.get("engine_statistics", {})
        analysed["parameters"] = dict(context.parameters)
        analysed["storage_bytes"] = statistics.get("storage_bytes", 0)
        if FACET_CLUSTER in self.result_facets:
            analysed["chunks"] = statistics.get("chunks", 1)
            analysed["migrations"] = statistics.get("migrations", 0)
            analysed["chunk_distribution"] = statistics.get("chunk_distribution", {})
        if FACET_REPLICATION in self.result_facets:
            replication = statistics.get("replication", {})
            analysed["failovers"] = replication.get("failovers", 0)
            analysed["rolled_back_entries"] = replication.get("rolled_back_entries", 0)
            analysed["staleness_mean"] = replication.get("staleness_mean", 0.0)
            analysed["staleness_max"] = replication.get("staleness_max", 0)
            analysed["oplog_entries"] = replication.get("oplog_entries", 0)
            analysed["elections"] = replication.get("elections", [])
        return analysed

    def clean_up(self, context: JobContext) -> None:
        context.state.pop("benchmark", None)

    def extra_result_files(self, context: JobContext,
                           result: dict[str, Any]) -> dict[str, str] | None:
        """Archive the facet-specific status files next to the result JSON."""
        statistics = result.get("engine_statistics", {})
        files: dict[str, str] = {}
        if FACET_CLUSTER in self.result_facets:
            lines = [f"shard_key: {statistics.get('shard_key', '_id')}",
                     f"strategy: {statistics.get('strategy', 'hash')}",
                     f"chunks: {statistics.get('chunks', 1)}",
                     f"splits: {statistics.get('splits', 0)}",
                     f"migrations: {statistics.get('migrations', 0)}",
                     f"chunk_distribution: {statistics.get('chunk_distribution', {})}"]
            files["cluster_statistics.txt"] = "\n".join(lines)
        if FACET_REPLICATION in self.result_facets:
            replication = statistics.get("replication", {})
            lines = [f"set: {replication.get('set', 'rs0')}",
                     f"replicas: {replication.get('replicas', 1)}",
                     f"write_concern: {replication.get('write_concern', 1)}",
                     f"read_preference: {replication.get('read_preference', 'primary')}",
                     f"oplog_entries: {replication.get('oplog_entries', 0)}",
                     f"failovers: {replication.get('failovers', 0)}",
                     f"rolled_back_entries: {replication.get('rolled_back_entries', 0)}",
                     f"staleness_mean: {replication.get('staleness_mean', 0.0)}",
                     f"failure_events: {result.get('failure_events', [])}"]
            files["replication_status.txt"] = "\n".join(lines)
        if not files:
            lines = [f"{key}: {statistics[key]}" for key in sorted(statistics)]
            files["engine_statistics.txt"] = "\n".join(lines)
        return files

    # -- topology resolution -----------------------------------------------------------

    def topology_for(self, context: JobContext) -> TopologySpec:
        """Resolve the deployment shape for one job (defaults < job < deployment)."""
        parameters: dict[str, Any] = dict(context.parameters)
        declared = context.deployment.get("topology") or {}
        for name, value in dict(declared).items():
            if name != "kind":
                parameters[name] = value
        return TopologySpec.from_parameters(parameters,
                                            defaults=self.topology_defaults)

    # -- helpers -----------------------------------------------------------------------------

    @staticmethod
    def _arm_failure_injection(context: JobContext, benchmark: DocumentBenchmark,
                               kill_fraction: float) -> FailureInjector | None:
        """Install an operation hook killing the primary mid-run."""
        if kill_fraction <= 0:
            return None
        server = benchmark.server
        if not isinstance(server, ReplicaSet):
            context.log("kill_primary_at ignored: deployment is not a replica set")
            return None
        injector = FailureInjector(server)
        kill_at = int(benchmark.spec.operation_count * min(kill_fraction, 1.0))

        def hook(index: int) -> None:
            if index == kill_at:
                victim = injector.kill_primary()
                context.log(f"failure injection: killed primary member{victim} "
                            f"at operation {index}")

        benchmark.operation_hook = hook
        return injector

    @staticmethod
    def _workload_spec(parameters: Mapping[str, Any],
                       topology: TopologySpec) -> WorkloadSpec:
        workload_name = parameters.get("ycsb_workload") or ""
        if workload_name:
            workload = ycsb_workload(workload_name)
            mix = workload.mix
            distribution = workload.distribution
        else:
            mix = mix_from_ratio(parameters.get("query_mix", "95:5"))
            distribution = parameters.get("distribution", "zipfian")
        return WorkloadSpec(
            record_count=int(parameters.get("record_count", 500)),
            operation_count=int(parameters.get("operation_count", 1000)),
            threads=int(parameters.get("threads", 1)),
            mix=mix,
            distribution=distribution,
            seed=int(parameters.get("seed", 42)),
            shards=topology.shards,
            shard_key=topology.shard_key,
            shard_strategy=topology.shard_strategy,
            replicas=topology.replicas,
            write_concern=topology.write_concern,
            read_preference=topology.read_preference,
            replication_lag=topology.replication_lag,
        )
