"""HTTP-style REST framework used by Chronos Control's API.

The original Chronos Control exposes a versioned RESTful web service served
by Apache + PHP.  This package provides the equivalent machinery in-process:

* :mod:`repro.rest.http` -- request/response objects and status codes,
* :mod:`repro.rest.router` -- path routing with parameters and API versioning,
* :mod:`repro.rest.application` -- the application object combining routing,
  JSON (de)serialisation, authentication middleware and error mapping,
* :mod:`repro.rest.client` -- a convenience client that calls the application
  the way an HTTP client would (used by the Chronos Agent library).

Keeping the transport in-process preserves the full request/response
contract (methods, paths, headers, bodies, status codes) while letting tests
and benchmarks run without sockets.
"""

from repro.rest.application import RestApplication
from repro.rest.client import RestClient
from repro.rest.http import Request, Response

__all__ = ["RestApplication", "RestClient", "Request", "Response"]
