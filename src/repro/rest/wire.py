"""Serving the REST application over real HTTP sockets.

The in-process transport is what tests and simulations use, but the original
Chronos Control is reached over HTTP.  :class:`HttpServerAdapter` bridges the
two: it serves a :class:`~repro.rest.application.RestApplication` with the
standard-library HTTP server so external tools (curl, browsers, real agents)
can talk to a running Chronos Control instance, and
:class:`HttpRestClient` is the matching client so the same agent code works
across the wire.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ApiError
from repro.rest.application import RestApplication
from repro.rest.http import Request, Response


class HttpServerAdapter:
    """Serves a REST application on ``127.0.0.1:<port>`` in a background thread."""

    def __init__(self, application: RestApplication, port: int = 0):
        self._application = application
        handler = _make_handler(application)
        self._server = ThreadingHTTPServer(("127.0.0.1", port), handler)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def start(self) -> "HttpServerAdapter":
        """Start serving requests in a daemon thread."""
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the server and wait for the serving thread to exit."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "HttpServerAdapter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class HttpRestClient:
    """An HTTP counterpart of :class:`~repro.rest.client.RestClient`.

    It exposes the same verb methods and returns the same
    :class:`~repro.rest.http.Response` objects, so Chronos Agents can switch
    between the in-process and the wire transport without code changes.
    """

    def __init__(self, base_url: str, token: str | None = None,
                 raise_for_status: bool = True, timeout: float = 10.0):
        self._base_url = base_url.rstrip("/")
        self._token = token
        self._raise_for_status = raise_for_status
        self._timeout = timeout
        self.requests_sent = 0

    def set_token(self, token: str | None) -> None:
        self._token = token

    def get(self, path: str, query: dict[str, str] | None = None) -> Response:
        return self._send("GET", path, None, query)

    def post(self, path: str, body=None) -> Response:
        return self._send("POST", path, body, None)

    def put(self, path: str, body=None) -> Response:
        return self._send("PUT", path, body, None)

    def patch(self, path: str, body=None) -> Response:
        return self._send("PATCH", path, body, None)

    def delete(self, path: str) -> Response:
        return self._send("DELETE", path, None, None)

    def _send(self, method: str, path: str, body, query: dict[str, str] | None) -> Response:
        url = self._base_url + path
        if query:
            url += "?" + urllib.parse.urlencode(query)
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(url, data=data, method=method)
        request.add_header("Content-Type", "application/json")
        if self._token:
            request.add_header("Authorization", f"Bearer {self._token}")
        self.requests_sent += 1
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as raw:
                payload = raw.read().decode("utf-8")
                response = Response(status=raw.status,
                                    body=json.loads(payload) if payload else None)
        except urllib.error.HTTPError as exc:
            payload = exc.read().decode("utf-8")
            response = Response(status=exc.code,
                                body=json.loads(payload) if payload else None)
        if self._raise_for_status and not response.ok:
            message = "request failed"
            if isinstance(response.body, dict):
                message = response.body.get("error", {}).get("message", message)
            raise ApiError(f"{method} {path}: {message}", status=response.status)
        return response


def _make_handler(application: RestApplication):
    class Handler(BaseHTTPRequestHandler):
        # Silence per-request logging; tests and examples don't want the noise.
        def log_message(self, format, *args):  # noqa: A002 - signature fixed by base
            return

        def _dispatch(self, method: str) -> None:
            parsed = urllib.parse.urlparse(self.path)
            query = {key: values[0] for key, values in
                     urllib.parse.parse_qs(parsed.query).items()}
            length = int(self.headers.get("Content-Length") or 0)
            raw_body = self.rfile.read(length) if length else b""
            body = json.loads(raw_body.decode("utf-8")) if raw_body else None
            request = Request(method=method, path=parsed.path, body=body, query=query,
                              headers=dict(self.headers.items()))
            response = application.handle(request)
            payload = json.dumps(response.body).encode("utf-8")
            self.send_response(response.status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self):  # noqa: N802 - names fixed by BaseHTTPRequestHandler
            self._dispatch("GET")

        def do_POST(self):  # noqa: N802
            self._dispatch("POST")

        def do_PUT(self):  # noqa: N802
            self._dispatch("PUT")

        def do_PATCH(self):  # noqa: N802
            self._dispatch("PATCH")

        def do_DELETE(self):  # noqa: N802
            self._dispatch("DELETE")

    return Handler
