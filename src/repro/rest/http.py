"""Request and response primitives for the REST layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

_STATUS_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}

SUPPORTED_METHODS = ("GET", "POST", "PUT", "PATCH", "DELETE")


@dataclass
class Request:
    """An HTTP-style request.

    Attributes:
        method: one of :data:`SUPPORTED_METHODS`.
        path: the request path, e.g. ``/api/v1/jobs/job-000001``.
        body: parsed JSON body (dictionaries/lists/scalars) or ``None``.
        query: query-string parameters.
        headers: request headers (case-insensitive access via :meth:`header`).
        path_params: filled in by the router when the route matches.
    """

    method: str
    path: str
    body: Any = None
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    path_params: dict[str, str] = field(default_factory=dict)
    context: dict[str, Any] = field(default_factory=dict)

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default

    def require_body(self) -> dict[str, Any]:
        """Return the JSON body, raising a 400-mapped error when absent."""
        from repro.errors import ApiError

        if not isinstance(self.body, dict):
            raise ApiError("request body must be a JSON object", status=400)
        return self.body


@dataclass
class Response:
    """An HTTP-style response with a JSON body."""

    status: int = 200
    body: Any = None
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def reason(self) -> str:
        return _STATUS_REASONS.get(self.status, "Unknown")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self) -> Any:
        """Return the response body (already parsed JSON)."""
        return self.body


def json_response(body: Any, status: int = 200) -> Response:
    """Build a JSON response."""
    return Response(status=status, body=body, headers={"Content-Type": "application/json"})


def error_response(message: str, status: int) -> Response:
    """Build an error response with the standard error envelope."""
    return json_response({"error": {"message": message, "status": status}}, status=status)
