"""The REST application: versioned routers, middleware and error mapping."""

from __future__ import annotations

import traceback
from typing import Callable

from repro.errors import (
    ApiError,
    AuthenticationError,
    ChronosError,
    ConflictError,
    NotFoundError,
    PermissionDeniedError,
    StateError,
    ValidationError,
)
from repro.rest.http import Request, Response, error_response
from repro.rest.router import Handler, Router

Middleware = Callable[[Request, Handler], Response]


class RestApplication:
    """Dispatches requests to versioned routers through a middleware chain.

    Chronos versions its REST API so old agents keep working while new
    clients use newer endpoints; the application therefore owns one router
    per version mounted under ``/api/<version>``.
    """

    def __init__(self, base_path: str = "/api"):
        self.base_path = base_path.rstrip("/")
        self._versions: dict[str, Router] = {}
        self._middleware: list[Middleware] = []

    # -- configuration ----------------------------------------------------------

    def version(self, name: str) -> Router:
        """Return (creating if needed) the router for API version ``name``."""
        if name not in self._versions:
            self._versions[name] = Router(prefix=f"{self.base_path}/{name}")
        return self._versions[name]

    def versions(self) -> list[str]:
        return sorted(self._versions)

    def add_middleware(self, middleware: Middleware) -> None:
        """Append ``middleware`` to the chain (outermost first)."""
        self._middleware.append(middleware)

    # -- dispatch -------------------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Dispatch ``request`` and convert exceptions to error responses."""
        try:
            return self._dispatch(request)
        except ApiError as exc:
            return error_response(str(exc), exc.status)
        except AuthenticationError as exc:
            return error_response(str(exc), 401)
        except PermissionDeniedError as exc:
            return error_response(str(exc), 403)
        except NotFoundError as exc:
            return error_response(str(exc), 404)
        except ConflictError as exc:
            return error_response(str(exc), 409)
        except (ValidationError, StateError) as exc:
            return error_response(str(exc), 400)
        except ChronosError as exc:
            return error_response(str(exc), 500)
        except Exception:  # pragma: no cover - defensive: unexpected bugs
            return error_response(
                "internal error: " + traceback.format_exc(limit=1).strip(), 500
            )

    def _dispatch(self, request: Request) -> Response:
        handler, params, status = self._resolve(request)
        if handler is None:
            if status == 405:
                return error_response("method not allowed", 405)
            return error_response(f"no route for {request.method} {request.path}", 404)
        request.path_params = params

        chain: Handler = handler
        for middleware in reversed(self._middleware):
            chain = _wrap(middleware, chain)
        return chain(request)

    def _resolve(self, request: Request) -> tuple[Handler | None, dict[str, str], int]:
        best_status = 404
        for router in self._versions.values():
            handler, params, status = router.resolve(request.method, request.path)
            if handler is not None:
                return handler, params, 200
            best_status = max(best_status, status)
        return None, {}, best_status

    # -- convenience for tests / clients -----------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body=None,
        query: dict[str, str] | None = None,
        headers: dict[str, str] | None = None,
    ) -> Response:
        """Build a request and dispatch it."""
        return self.handle(
            Request(method=method, path=path, body=body, query=query or {}, headers=headers or {})
        )


def _wrap(middleware: Middleware, inner: Handler) -> Handler:
    def wrapped(request: Request) -> Response:
        return middleware(request, inner)

    return wrapped
