"""Path routing with parameters and API versioning."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.rest.http import SUPPORTED_METHODS, Request, Response

Handler = Callable[[Request], Response]


def _split(path: str) -> list[str]:
    return [part for part in path.split("/") if part]


@dataclass(frozen=True)
class Route:
    """One registered route: method + path template + handler."""

    method: str
    template: str
    handler: Handler
    segments: tuple[str, ...]

    def match(self, method: str, path: str) -> dict[str, str] | None:
        """Return path parameters when ``method``/``path`` match, else None."""
        if method != self.method:
            return None
        return self.match_path(path)

    def match_path(self, path: str) -> dict[str, str] | None:
        """Match only the path portion (used for 405 detection)."""
        parts = _split(path)
        if len(parts) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for expected, actual in zip(self.segments, parts):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params


class Router:
    """Maps (method, path) pairs to handlers.

    Routes are registered with templates such as ``/jobs/{job_id}/logs``.
    The router distinguishes "no such path" (404) from "path exists but not
    for this method" (405) the way a well-behaved HTTP API does.
    """

    def __init__(self, prefix: str = ""):
        self.prefix = prefix.rstrip("/")
        self._routes: list[Route] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` on ``template``."""
        if method not in SUPPORTED_METHODS:
            raise ValueError(f"unsupported HTTP method {method!r}")
        full = self.prefix + "/" + template.strip("/")
        self._routes.append(Route(method, full, handler, tuple(_split(full))))

    def get(self, template: str, handler: Handler) -> None:
        self.add("GET", template, handler)

    def post(self, template: str, handler: Handler) -> None:
        self.add("POST", template, handler)

    def put(self, template: str, handler: Handler) -> None:
        self.add("PUT", template, handler)

    def patch(self, template: str, handler: Handler) -> None:
        self.add("PATCH", template, handler)

    def delete(self, template: str, handler: Handler) -> None:
        self.add("DELETE", template, handler)

    def resolve(self, method: str, path: str) -> tuple[Handler | None, dict[str, str], int]:
        """Find the handler for ``method path``.

        Returns ``(handler, path_params, status)`` where status is 200 when a
        handler was found, 405 when the path exists under another method and
        404 otherwise.
        """
        path_exists = False
        for route in self._routes:
            params = route.match(method, path)
            if params is not None:
                return route.handler, params, 200
            if route.match_path(path) is not None:
                path_exists = True
        return None, {}, 405 if path_exists else 404

    def routes(self) -> list[tuple[str, str]]:
        """All registered (method, template) pairs (for documentation)."""
        return sorted((route.method, route.template) for route in self._routes)
