"""A convenience client for calling a :class:`RestApplication`.

The client mimics the surface of an HTTP client library (``get``, ``post``,
...), handles the authentication header and raises
:class:`~repro.errors.ApiError` for error responses when ``raise_for_status``
is enabled.  Chronos Agents use exactly this interface, so swapping in a real
network client would not change agent code.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ApiError
from repro.rest.application import RestApplication
from repro.rest.http import Response


class RestClient:
    """Calls a REST application in-process the way an HTTP client would."""

    def __init__(
        self,
        application: RestApplication,
        token: str | None = None,
        raise_for_status: bool = True,
    ):
        self._application = application
        self._token = token
        self._raise_for_status = raise_for_status
        self.requests_sent = 0

    # -- authentication ----------------------------------------------------------

    def set_token(self, token: str | None) -> None:
        """Use ``token`` for subsequent requests."""
        self._token = token

    # -- HTTP verbs ------------------------------------------------------------------

    def get(self, path: str, query: dict[str, str] | None = None) -> Response:
        return self._send("GET", path, None, query)

    def post(self, path: str, body: Any = None) -> Response:
        return self._send("POST", path, body, None)

    def put(self, path: str, body: Any = None) -> Response:
        return self._send("PUT", path, body, None)

    def patch(self, path: str, body: Any = None) -> Response:
        return self._send("PATCH", path, body, None)

    def delete(self, path: str) -> Response:
        return self._send("DELETE", path, None, None)

    # -- internals ----------------------------------------------------------------------

    def _send(
        self, method: str, path: str, body: Any, query: dict[str, str] | None
    ) -> Response:
        headers = {}
        if self._token:
            headers["Authorization"] = f"Bearer {self._token}"
        self.requests_sent += 1
        response = self._application.request(
            method, path, body=body, query=query, headers=headers
        )
        if self._raise_for_status and not response.ok:
            message = "request failed"
            if isinstance(response.body, dict):
                message = response.body.get("error", {}).get("message", message)
            raise ApiError(f"{method} {path}: {message}", status=response.status)
        return response
