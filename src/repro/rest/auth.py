"""Token-based authentication middleware for the REST application."""

from __future__ import annotations

from typing import Callable

from repro.errors import AuthenticationError
from repro.rest.http import Request, Response
from repro.rest.router import Handler

TokenValidator = Callable[[str], dict]


class TokenAuthMiddleware:
    """Checks the ``Authorization: Bearer <token>`` header on protected paths.

    The validator callback maps a token to an authentication context (e.g.
    the user row and role); the context is stored in ``request.context`` under
    ``"auth"`` so handlers can enforce project-level permissions.
    Paths listed in ``public_paths`` (such as the login endpoint and the API
    index) bypass authentication.
    """

    def __init__(self, validator: TokenValidator, public_paths: tuple[str, ...] = ()):
        self._validator = validator
        self._public_paths = tuple(public_paths)

    def __call__(self, request: Request, handler: Handler) -> Response:
        if self._is_public(request.path):
            return handler(request)
        token = self._extract_token(request)
        request.context["auth"] = self._validator(token)
        return handler(request)

    def _is_public(self, path: str) -> bool:
        return any(path.endswith(public) for public in self._public_paths)

    @staticmethod
    def _extract_token(request: Request) -> str:
        header = request.header("Authorization")
        if header and header.startswith("Bearer "):
            return header[len("Bearer "):]
        token = request.query.get("token")
        if token:
            return token
        raise AuthenticationError("missing authentication token")
