"""The agent runner: polling loop, lifecycle orchestration, failure reporting.

The runner is the piece the Java reference implementation provides for the
original system: it periodically asks Chronos Control for work, drives the
agent lifecycle (set-up -> warm-up -> execute -> analyze -> clean-up),
streams progress and logs, measures the basic metrics and uploads the result.
Any exception in the lifecycle is reported to Chronos Control as a job
failure so the failure policy can re-schedule the job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.agent.base import ChronosAgent, JobContext
from repro.agent.connection import AgentConnection
from repro.agent.metrics import AgentMetrics
from repro.errors import AgentError
from repro.util.clock import Clock, SystemClock


@dataclass
class RunReport:
    """Summary of one :meth:`AgentRunner.run_until_idle` invocation."""

    jobs_finished: int = 0
    jobs_failed: int = 0
    polls: int = 0

    @property
    def jobs_processed(self) -> int:
        return self.jobs_finished + self.jobs_failed


class AgentRunner:
    """Runs a :class:`ChronosAgent` against one deployment.

    Args:
        agent: the evaluation-client integration.
        connection: authenticated connection to Chronos Control.
        system_id: the registered system this agent serves.
        deployment_id: the deployment this runner is responsible for.
        deployment_info: environment description passed to the agent.
        clock: clock used for metric timing (simulated in tests/benchmarks).
        log_every: report progress/log output every ``log_every`` progress steps.
    """

    def __init__(
        self,
        agent: ChronosAgent,
        connection: AgentConnection,
        system_id: str,
        deployment_id: str,
        deployment_info: dict[str, Any] | None = None,
        clock: Clock | None = None,
    ):
        self.agent = agent
        self.connection = connection
        self.system_id = system_id
        self.deployment_id = deployment_id
        self.deployment_info = dict(deployment_info or {})
        self.clock = clock or SystemClock()

    # -- main loops -----------------------------------------------------------------------

    def run_one(self) -> bool:
        """Claim and execute at most one job.  Returns True when a job ran."""
        job = self.connection.claim_next_job(self.system_id, self.deployment_id)
        if job is None:
            return False
        self._execute_job(job)
        return True

    def run_until_idle(self, max_jobs: int | None = None) -> RunReport:
        """Execute jobs until Chronos Control has no more work for this deployment."""
        report = RunReport()
        while max_jobs is None or report.jobs_processed < max_jobs:
            job = self.connection.claim_next_job(self.system_id, self.deployment_id)
            report.polls += 1
            if job is None:
                break
            if self._execute_job(job):
                report.jobs_finished += 1
            else:
                report.jobs_failed += 1
        return report

    # -- job execution --------------------------------------------------------------------------

    def _execute_job(self, job: dict[str, Any]) -> bool:
        job_id = job["id"]
        metrics = AgentMetrics(self.clock)
        context = JobContext(
            job_id=job_id,
            parameters=dict(job.get("parameters", {})),
            deployment=self.deployment_info,
            metrics=metrics,
            progress=lambda progress: self.connection.report_progress(job_id, progress),
            log=lambda message: self.connection.append_log(job_id, message),
        )
        try:
            result = self._run_lifecycle(context, metrics)
            extra = self.agent.extra_result_files(context, result)
            self.connection.upload_result(
                job_id, data=result, metrics=metrics.as_dict(), extra_files=extra
            )
            return True
        except Exception as exc:  # noqa: BLE001 - every failure is reported to Control
            self.connection.report_failure(job_id, f"{type(exc).__name__}: {exc}")
            return False

    def _run_lifecycle(self, context: JobContext, metrics: AgentMetrics) -> dict[str, Any]:
        context.log(f"job {context.job_id} started on deployment {self.deployment_id}")

        metrics.start_phase("setup")
        self.agent.set_up(context)
        metrics.stop_phase("setup")
        context.progress(10)

        metrics.start_phase("warmup")
        self.agent.warm_up(context)
        metrics.stop_phase("warmup")
        context.progress(25)

        metrics.start_phase("execution")
        raw = self.agent.execute(context)
        metrics.stop_phase("execution")
        context.progress(85)
        if not isinstance(raw, dict):
            raise AgentError("agent execute() must return a dictionary of measurements")

        metrics.start_phase("analysis")
        result = self.agent.analyze(context, raw)
        metrics.stop_phase("analysis")
        context.progress(95)

        try:
            self.agent.clean_up(context)
        finally:
            context.log(f"job {context.job_id} finished")
        context.progress(100)
        return result
