"""Running a fleet of agents: one runner per deployment until the work is done.

The original demo starts one Chronos-enabled evaluation client per MongoDB
deployment; each polls Chronos Control independently.  :class:`AgentFleet`
reproduces that set-up in-process: it builds one :class:`AgentRunner` per
deployment (each with its own authenticated REST connection) and interleaves
their polling until an evaluation has no scheduled or running jobs left.

``parallel=True`` runs the deployments in real threads (useful to exercise
the lock manager); the default round-robin interleaving is deterministic and
is what the benchmarks use.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.agent.base import ChronosAgent
from repro.agent.connection import AgentConnection
from repro.agent.runner import AgentRunner
from repro.rest.client import RestClient
from repro.util.clock import Clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl


@dataclass
class FleetReport:
    """Combined report of one fleet drive."""

    jobs_finished: int = 0
    jobs_failed: int = 0
    rounds: int = 0
    per_deployment: dict[str, int] = field(default_factory=dict)


class AgentFleet:
    """One agent runner per deployment, sharing a single agent factory."""

    def __init__(
        self,
        control: "ChronosControl",
        system_id: str,
        deployment_ids: list[str],
        agent_factory: Callable[[], ChronosAgent],
        username: str = "admin",
        password: str = "admin",
        clock: Clock | None = None,
    ):
        self._control = control
        self._system_id = system_id
        self._clock = clock
        self._runners: list[AgentRunner] = []
        for deployment_id in deployment_ids:
            client = RestClient(control.api)
            connection = AgentConnection(client)
            connection.login(username, password)
            deployment = control.deployments.get(deployment_id)
            runner = AgentRunner(
                agent=agent_factory(),
                connection=connection,
                system_id=system_id,
                deployment_id=deployment_id,
                deployment_info=deployment.environment,
                clock=clock,
            )
            self._runners.append(runner)

    @property
    def runners(self) -> list[AgentRunner]:
        return list(self._runners)

    # -- driving --------------------------------------------------------------------------

    def drive_evaluation(self, evaluation_id: str, parallel: bool = False,
                         max_rounds: int = 10000) -> FleetReport:
        """Run agents until the evaluation has no active jobs left."""
        if parallel:
            return self._drive_parallel(evaluation_id)
        return self._drive_round_robin(evaluation_id, max_rounds)

    def drive_until_idle(self) -> FleetReport:
        """Run agents until no runner can claim any job (across all evaluations)."""
        report = FleetReport()
        progressed = True
        while progressed:
            progressed = False
            report.rounds += 1
            for runner in self._runners:
                if runner.run_one():
                    progressed = True
                    report.per_deployment[runner.deployment_id] = (
                        report.per_deployment.get(runner.deployment_id, 0) + 1
                    )
        self._tally(report)
        return report

    # -- internals ---------------------------------------------------------------------------

    def _drive_round_robin(self, evaluation_id: str, max_rounds: int) -> FleetReport:
        report = FleetReport()
        for _ in range(max_rounds):
            if self._control.evaluations.is_complete(evaluation_id):
                break
            report.rounds += 1
            progressed = False
            for runner in self._runners:
                if runner.run_one():
                    progressed = True
                    report.per_deployment[runner.deployment_id] = (
                        report.per_deployment.get(runner.deployment_id, 0) + 1
                    )
            if not progressed:
                break
        self._tally(report, evaluation_id)
        return report

    def _drive_parallel(self, evaluation_id: str) -> FleetReport:
        report = FleetReport()
        threads = []
        lock = threading.Lock()

        def worker(runner: AgentRunner) -> None:
            while True:
                ran = runner.run_one()
                if not ran:
                    if self._control.evaluations.is_complete(evaluation_id):
                        return
                    # Nothing claimable right now but the evaluation is still
                    # active (e.g. jobs running on other deployments).
                    if not self._control.jobs.next_scheduled(self._system_id):
                        return
                    continue
                with lock:
                    report.per_deployment[runner.deployment_id] = (
                        report.per_deployment.get(runner.deployment_id, 0) + 1
                    )

        for runner in self._runners:
            thread = threading.Thread(target=worker, args=(runner,), daemon=True)
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        self._tally(report, evaluation_id)
        return report

    def _tally(self, report: FleetReport, evaluation_id: str | None = None) -> None:
        jobs = (self._control.evaluations.jobs(evaluation_id)
                if evaluation_id is not None else self._control.jobs.list())
        report.jobs_finished = sum(1 for job in jobs if job.status.value == "finished")
        report.jobs_failed = sum(1 for job in jobs if job.status.value == "failed")
