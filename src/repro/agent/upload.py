"""Out-of-band result upload (the HTTP/FTP path of the original agent).

The Java reference agent can upload result archives via HTTP or FTP to a
different server or a NAS, reducing load on the Chronos Control server.
This module provides the same capability against a local "remote store"
directory, exercising the identical agent-side code path (serialise, upload,
reference the remote location in the result JSON) without a network.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Any

from repro.errors import AgentError


class ResultUploader:
    """Uploads result archives to a remote store (a directory standing in for FTP/NAS)."""

    def __init__(self, remote_directory: str | Path):
        self._remote = Path(remote_directory)
        self._remote.mkdir(parents=True, exist_ok=True)
        self.uploads = 0

    def upload(self, job_id: str, data: dict[str, Any],
               extra_files: dict[str, str] | None = None) -> str:
        """Pack ``data`` (+ extra files) into a zip and store it remotely.

        Returns the remote path, which agents put into the result JSON so the
        archive can be retrieved for analysis outside of Chronos.
        """
        if not job_id:
            raise AgentError("job_id is required for a result upload")
        path = self._remote / f"{job_id}.zip"
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
            archive.writestr("result.json", json.dumps(data, sort_keys=True, indent=2))
            for name, content in (extra_files or {}).items():
                archive.writestr(name, content)
        self.uploads += 1
        return str(path)

    def list_uploads(self) -> list[str]:
        """Names of all archives currently in the remote store."""
        return sorted(path.name for path in self._remote.glob("*.zip"))

    def read(self, job_id: str) -> dict[str, Any]:
        """Read back the result JSON of a previously uploaded archive."""
        path = self._remote / f"{job_id}.zip"
        if not path.exists():
            raise AgentError(f"no uploaded archive for job {job_id!r}")
        with zipfile.ZipFile(path, "r") as archive:
            return json.loads(archive.read("result.json").decode("utf-8"))
