"""The agent lifecycle interface implemented by evaluation clients.

"the agent library already provides an interface with all necessary methods
to be implemented.  Depending on the existing evaluation client, this usually
narrows down to calling already existing methods of the evaluation client."
(Section 2.2).

The interface mirrors the evaluation workflow of the introduction: set-up of
the SuE for the job's parameters, a warm-up phase, the actual benchmark
execution, an analysis step turning raw measurements into the result JSON,
and clean-up.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.agent.metrics import AgentMetrics


@dataclass
class JobContext:
    """Everything an agent implementation needs while executing one job.

    Attributes:
        job_id: the Chronos job identifier.
        parameters: the parameter dictionary of this job (one point of the
            evaluation space).
        deployment: the deployment description (environment, version).
        metrics: the agent metrics collector (phase timings, counters).
        progress: callback reporting progress (0-100) back to Chronos Control.
        log: callback streaming log output back to Chronos Control.
    """

    job_id: str
    parameters: dict[str, Any]
    deployment: dict[str, Any]
    metrics: AgentMetrics
    progress: Callable[[int], None] = lambda progress: None
    log: Callable[[str], None] = lambda message: None
    state: dict[str, Any] = field(default_factory=dict)


class ChronosAgent(ABC):
    """Base class for evaluation clients integrated with Chronos.

    Subclasses implement the five lifecycle hooks; the
    :class:`~repro.agent.runner.AgentRunner` calls them in order for every
    claimed job and handles all communication with Chronos Control.
    """

    #: Name of the SuE this agent evaluates (must match the registered system).
    system_name: str = "unknown-system"

    @abstractmethod
    def set_up(self, context: JobContext) -> None:
        """Prepare the SuE for this job (create schema, generate and load data)."""

    def warm_up(self, context: JobContext) -> None:
        """Warm up the SuE (fill caches/buffers) so measurements are realistic."""

    @abstractmethod
    def execute(self, context: JobContext) -> dict[str, Any]:
        """Run the benchmark and return raw measurement data."""

    def analyze(self, context: JobContext, raw: dict[str, Any]) -> dict[str, Any]:
        """Turn raw measurements into the result JSON stored by Chronos.

        The default implementation returns the raw data unchanged.
        """
        return raw

    def clean_up(self, context: JobContext) -> None:
        """Tear down whatever :meth:`set_up` created."""

    # -- optional hooks -----------------------------------------------------------------

    def extra_result_files(self, context: JobContext,
                           result: dict[str, Any]) -> dict[str, str] | None:
        """Additional files to pack into the result's zip archive."""
        return None

    def aborted(self, context: JobContext) -> None:
        """Called when the job is aborted while this agent is executing it."""
