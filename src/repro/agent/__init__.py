"""The Python reference implementation of the Chronos Agent library.

The paper ships a generic Java agent library and announces a Python one as
future work; this package is that Python reference implementation.  An agent
connects an evaluation client to Chronos Control through the REST API: it
polls for jobs, runs the benchmark through user-provided lifecycle hooks,
periodically uploads progress and log output, measures basic metrics and
uploads the result (or reports the failure) when done.
"""

from repro.agent.base import ChronosAgent, JobContext
from repro.agent.connection import AgentConnection
from repro.agent.runner import AgentRunner

__all__ = ["ChronosAgent", "JobContext", "AgentConnection", "AgentRunner"]
