"""Basic metrics measured by the agent library.

"the agent library already measures basic metrics which are returned to
Chronos Control along with the results" (Section 2.2).  The measurement
object tracks execution time per phase and arbitrary counters, and produces
the flat metric dictionary attached to every uploaded result.
"""

from __future__ import annotations

from repro.util.clock import Clock, Stopwatch


class AgentMetrics:
    """Collects phase timings and counters during a job execution."""

    def __init__(self, clock: Clock):
        self._clock = clock
        self._phase_watches: dict[str, Stopwatch] = {}
        self._counters: dict[str, float] = {}

    # -- phase timing --------------------------------------------------------------

    def start_phase(self, name: str) -> None:
        """Start (or restart) timing the phase ``name``."""
        self._phase_watches[name] = Stopwatch(self._clock).start()

    def stop_phase(self, name: str) -> float:
        """Stop timing ``name`` and return the elapsed seconds."""
        watch = self._phase_watches.get(name)
        if watch is None:
            return 0.0
        return watch.stop()

    def phase_seconds(self, name: str) -> float:
        watch = self._phase_watches.get(name)
        return watch.elapsed if watch is not None else 0.0

    # -- counters ---------------------------------------------------------------------

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name``."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def set(self, name: str, value: float) -> None:
        """Set the counter ``name`` to ``value``."""
        self._counters[name] = float(value)

    def get(self, name: str, default: float = 0.0) -> float:
        return self._counters.get(name, default)

    # -- export -----------------------------------------------------------------------

    def as_dict(self) -> dict[str, float]:
        """Flat metric dictionary: counters plus ``<phase>_seconds`` entries."""
        metrics = dict(self._counters)
        for name, watch in self._phase_watches.items():
            metrics[f"{name}_seconds"] = watch.elapsed
        return metrics
