"""Agent-side wrapper around the Chronos Control REST API.

The connection hides every HTTP detail from agent implementations: it logs
in, claims jobs, sends progress/log updates and uploads results.  It talks to
the API exclusively through a :class:`~repro.rest.client.RestClient`, so it
works identically against the in-process application and would work against
a real HTTP transport.
"""

from __future__ import annotations

from typing import Any

from repro.rest.client import RestClient


class AgentConnection:
    """REST connection of one agent to Chronos Control."""

    def __init__(self, client: RestClient, api_version: str = "v1"):
        self._client = client
        self._base = f"/api/{api_version}"

    # -- authentication ------------------------------------------------------------

    def login(self, username: str, password: str) -> str:
        """Log in and remember the session token for subsequent requests."""
        response = self._client.post(
            f"{self._base}/login", {"username": username, "password": password}
        )
        token = response.json()["token"]
        self._client.set_token(token)
        return token

    # -- job acquisition ----------------------------------------------------------------

    def claim_next_job(self, system_id: str, deployment_id: str) -> dict[str, Any] | None:
        """Ask Chronos Control for the next job of ``system_id`` on this deployment."""
        response = self._client.post(
            f"{self._base}/agents/next-job",
            {"system_id": system_id, "deployment_id": deployment_id},
        )
        return response.json().get("job")

    def get_job(self, job_id: str) -> dict[str, Any]:
        return self._client.get(f"{self._base}/jobs/{job_id}").json()["job"]

    # -- progress, logs, results -----------------------------------------------------------

    def report_progress(self, job_id: str, progress: int, log: str | None = None) -> None:
        body: dict[str, Any] = {"progress": progress}
        if log is not None:
            body["log"] = log
        self._client.patch(f"{self._base}/jobs/{job_id}/progress", body)

    def append_log(self, job_id: str, content: str) -> None:
        self._client.post(f"{self._base}/jobs/{job_id}/logs", {"content": content})

    def upload_result(self, job_id: str, data: dict[str, Any],
                      metrics: dict[str, float] | None = None,
                      extra_files: dict[str, str] | None = None) -> dict[str, Any]:
        response = self._client.post(
            f"{self._base}/jobs/{job_id}/result",
            {"data": data, "metrics": metrics or {}, "extra_files": extra_files},
        )
        return response.json()

    def report_failure(self, job_id: str, error: str) -> dict[str, Any]:
        response = self._client.post(
            f"{self._base}/jobs/{job_id}/failure", {"error": error}
        )
        return response.json()

    @property
    def requests_sent(self) -> int:
        """Number of REST requests issued so far (used by the API benchmark)."""
        return self._client.requests_sent
