"""The Chronos Control façade: one object wiring every service together.

:class:`ChronosControl` is what the original installation script produces:
a configured Chronos Control instance with its metadata database, user
management, REST API and all services.  Examples, agents and benchmarks only
ever need this class plus the agent library.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.core.access import AccessControl
from repro.core.archive import ArchiveService
from repro.core.deployments import DeploymentService
from repro.core.enums import Role
from repro.core.evaluations import EvaluationService
from repro.core.events import EventService
from repro.core.experiments import ExperimentService
from repro.core.failure import DEFAULT_HEARTBEAT_TIMEOUT, FailureHandler
from repro.core.jobs import JobService
from repro.core.logs import LogService
from repro.core.projects import ProjectService
from repro.core.results import ResultService
from repro.core.scheduler import Scheduler
from repro.core.schema import create_all_tables
from repro.core.systems import SystemService
from repro.core.users import UserService
from repro.storage.database import Database
from repro.util.clock import Clock, SystemClock
from repro.util.ids import IdGenerator

DEFAULT_ADMIN_USERNAME = "admin"
DEFAULT_ADMIN_PASSWORD = "admin"


class ChronosControl:
    """A fully wired Chronos Control instance.

    Args:
        data_directory: when given, the metadata store is made durable (WAL +
            snapshots) under this directory and result archives are written
            to ``<data_directory>/results``.  Without it everything stays in
            memory -- convenient for tests and simulations.
        clock: the clock used for timestamps, heartbeats and timeouts.
            Simulations pass a :class:`~repro.util.clock.SimulatedClock`.
        heartbeat_timeout: seconds of agent silence after which a running job
            is considered stalled.
        create_admin: create the default ``admin`` account (the original
            installation script does the same).
    """

    def __init__(
        self,
        data_directory: str | Path | None = None,
        clock: Clock | None = None,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        create_admin: bool = True,
    ):
        self.clock = clock or SystemClock()
        self.ids = IdGenerator()
        self.data_directory = Path(data_directory) if data_directory else None

        storage_dir = self.data_directory / "metadata" if self.data_directory else None
        results_dir = self.data_directory / "results" if self.data_directory else None

        self.database = Database(storage_dir)
        create_all_tables(self.database)
        if storage_dir is not None:
            self.database.recover()
            self._reseed_id_generator()

        # Services -------------------------------------------------------------------
        self.events = EventService(self.database, self.clock, self.ids)
        self.users = UserService(self.database, self.clock, self.ids)
        self.projects = ProjectService(self.database, self.clock, self.ids, self.events)
        self.systems = SystemService(self.database, self.clock, self.ids)
        self.deployments = DeploymentService(self.database, self.clock, self.ids)
        self.experiments = ExperimentService(
            self.database, self.clock, self.ids, self.systems, self.events
        )
        self.jobs = JobService(self.database, self.clock, self.ids, self.events)
        self.evaluations = EvaluationService(
            self.database, self.clock, self.ids, self.experiments, self.jobs, self.events
        )
        self.logs = LogService(self.database, self.clock, self.ids)
        self.results = ResultService(
            self.database, self.clock, self.ids, self.events, results_dir
        )
        self.scheduler = Scheduler(self.jobs, self.deployments, self.evaluations)
        self.failures = FailureHandler(self.jobs, heartbeat_timeout)
        self.archive = ArchiveService(
            self.projects, self.experiments, self.evaluations, self.jobs,
            self.results, self.logs,
        )
        self.access = AccessControl()

        if create_admin and not self.users.list_users():
            self.users.create_user(DEFAULT_ADMIN_USERNAME, DEFAULT_ADMIN_PASSWORD, Role.ADMIN)

        self._api = None

    # -- agent-facing workflow helpers ------------------------------------------------------

    def claim_next_job(self, system_id: str, deployment_id: str):
        """Claim the next scheduled job for a deployment (agent polling)."""
        return self.scheduler.claim_next_job(system_id, deployment_id)

    def report_progress(self, job_id: str, progress: int, log_output: str | None = None):
        """Record agent-reported progress and optional log output."""
        job = self.jobs.update_progress(job_id, progress)
        if log_output:
            self.logs.append(job_id, log_output)
        return job

    def report_success(self, job_id: str, data: dict[str, Any],
                       metrics: dict[str, float] | None = None,
                       extra_files: dict[str, str] | None = None):
        """Store the job's result and mark it finished."""
        result = self.results.store(job_id, data, metrics, extra_files)
        job = self.scheduler.complete_job(job_id)
        return job, result

    def report_failure(self, job_id: str, error: str):
        """Record a job failure; the failure policy may re-schedule it."""
        job = self.jobs.get(job_id)
        if job.deployment_id:
            self.scheduler.release_deployment(job.deployment_id)
        job = self.failures.handle_job_failure(job_id, error)
        self.evaluations.refresh_status(job.evaluation_id)
        return job

    def recover_stalled_jobs(self):
        """Run one failure-recovery pass (heartbeat timeouts, retries)."""
        report = self.failures.recover()
        for job in self.jobs.running_jobs():
            # Deployments of stalled jobs that got failed are no longer busy.
            if job.deployment_id and job.status.value != "running":
                self.scheduler.release_deployment(job.deployment_id)
        return report

    # -- REST API --------------------------------------------------------------------------------

    @property
    def api(self):
        """The versioned REST application exposing this instance."""
        if self._api is None:
            from repro.core.api.app import build_application

            self._api = build_application(self)
        return self._api

    # -- maintenance -----------------------------------------------------------------------------

    def _reseed_id_generator(self) -> None:
        """Advance id counters past every id recovered from disk."""
        for table_name in self.database.table_names():
            for row in self.database.table(table_name).all_rows():
                identifier = str(row.get("id", ""))
                prefix, _, suffix = identifier.rpartition("-")
                if prefix and suffix.isdigit():
                    self.ids.ensure_past(prefix, int(suffix))

    def checkpoint(self) -> None:
        """Persist a snapshot of the metadata store (no-op when in memory)."""
        self.database.checkpoint()

    def close(self) -> None:
        self.database.close()

    def statistics(self) -> dict[str, Any]:
        """Instance-wide statistics for monitoring dashboards."""
        snapshot = self.scheduler.snapshot()
        return {
            "projects": len(self.projects.list()),
            "systems": len(self.systems.list()),
            "deployments": len(self.deployments.list()),
            "experiments": len(self.experiments.list()),
            "evaluations": len(self.evaluations.list()),
            "jobs": {
                "scheduled": snapshot.scheduled,
                "running": snapshot.running,
                "finished": snapshot.finished,
                "failed": snapshot.failed,
                "aborted": snapshot.aborted,
            },
            "events": self.events.count(),
        }
