"""Chronos Control: the heart of the evaluation toolkit.

Implements the data model of the paper (projects, experiments, evaluations,
jobs, results, systems, deployments), the services around it (users and
access control, parameter-space expansion, scheduling, failure handling,
result archiving, the event timeline) and the versioned REST API through
which Chronos Agents and other clients interact with it.
"""

from repro.core.control import ChronosControl
from repro.core.enums import EvaluationStatus, JobStatus, Role

__all__ = ["ChronosControl", "JobStatus", "EvaluationStatus", "Role"]
