"""Entity dataclasses of the Chronos Control data model (Section 2.1).

Each entity knows how to convert itself to and from a row of the embedded
relational store.  Entities are plain data; all behaviour lives in the
service classes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.core.enums import EvaluationStatus, EventType, JobStatus, Role


@dataclass
class User:
    """A registered user of the multi-user Chronos deployment."""

    id: str
    username: str
    password_hash: str
    role: Role = Role.USER
    created_at: float = 0.0

    def to_row(self) -> dict[str, Any]:
        row = asdict(self)
        row["role"] = self.role.value
        return row

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "User":
        return cls(
            id=row["id"],
            username=row["username"],
            password_hash=row["password_hash"],
            role=Role(row["role"]),
            created_at=row["created_at"],
        )


@dataclass
class Project:
    """An organisational unit grouping experiments; unit of access control."""

    id: str
    name: str
    description: str = ""
    owner_id: str = ""
    members: list[str] = field(default_factory=list)
    archived: bool = False
    created_at: float = 0.0

    def to_row(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "Project":
        return cls(
            id=row["id"],
            name=row["name"],
            description=row["description"] or "",
            owner_id=row["owner_id"] or "",
            members=list(row["members"] or []),
            archived=bool(row["archived"]),
            created_at=row["created_at"],
        )


@dataclass
class System:
    """The internal representation of a System under Evaluation.

    ``parameters`` holds the parameter definitions an experiment against this
    SuE must provide (see :mod:`repro.core.parameters`); ``result_config``
    describes how results are structured and visualised (metric names and
    diagram specifications).
    """

    id: str
    name: str
    description: str = ""
    parameters: list[dict[str, Any]] = field(default_factory=list)
    result_config: dict[str, Any] = field(default_factory=dict)
    owner_id: str = ""
    created_at: float = 0.0

    def to_row(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "System":
        return cls(
            id=row["id"],
            name=row["name"],
            description=row["description"] or "",
            parameters=list(row["parameters"] or []),
            result_config=dict(row["result_config"] or {}),
            owner_id=row["owner_id"] or "",
            created_at=row["created_at"],
        )


@dataclass
class Deployment:
    """An instance of an SuE in a specific environment.

    Multiple identical deployments of one SuE allow Chronos to parallelise an
    evaluation; different deployments allow comparing environments/versions.
    """

    id: str
    system_id: str
    name: str
    environment: dict[str, Any] = field(default_factory=dict)
    version: str = ""
    active: bool = True
    created_at: float = 0.0

    def topology_spec(self):
        """The declared deployment topology, or ``None`` when undeclared.

        Returns a :class:`~repro.docstore.topology.TopologySpec` parsed from
        ``environment["topology"]`` (stored as plain data so the control
        plane stays system-agnostic).  Sparse declarations are completed to
        the minimal spec satisfying them -- the realized shape may differ
        for fields the declaration left to job parameters.
        """
        raw = self.environment.get("topology")
        if raw is None:
            return None
        from repro.docstore.topology import TopologySpec

        return TopologySpec.from_partial(raw)

    def to_row(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "Deployment":
        return cls(
            id=row["id"],
            system_id=row["system_id"],
            name=row["name"],
            environment=dict(row["environment"] or {}),
            version=row["version"] or "",
            active=bool(row["active"]),
            created_at=row["created_at"],
        )


@dataclass
class Experiment:
    """The definition of an evaluation with all its parameters."""

    id: str
    project_id: str
    system_id: str
    name: str
    description: str = ""
    parameters: dict[str, Any] = field(default_factory=dict)
    archived: bool = False
    created_at: float = 0.0

    def to_row(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "Experiment":
        return cls(
            id=row["id"],
            project_id=row["project_id"],
            system_id=row["system_id"],
            name=row["name"],
            description=row["description"] or "",
            parameters=dict(row["parameters"] or {}),
            archived=bool(row["archived"]),
            created_at=row["created_at"],
        )


@dataclass
class Evaluation:
    """One run of an experiment, consisting of one or multiple jobs."""

    id: str
    experiment_id: str
    name: str
    status: EvaluationStatus = EvaluationStatus.CREATED
    deployment_ids: list[str] = field(default_factory=list)
    created_at: float = 0.0
    finished_at: float | None = None

    def to_row(self) -> dict[str, Any]:
        row = asdict(self)
        row["status"] = self.status.value
        return row

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "Evaluation":
        return cls(
            id=row["id"],
            experiment_id=row["experiment_id"],
            name=row["name"],
            status=EvaluationStatus(row["status"]),
            deployment_ids=list(row["deployment_ids"] or []),
            created_at=row["created_at"],
            finished_at=row["finished_at"],
        )


@dataclass
class Job:
    """A subset of an evaluation: one benchmark run for one parameter point."""

    id: str
    evaluation_id: str
    system_id: str
    parameters: dict[str, Any] = field(default_factory=dict)
    status: JobStatus = JobStatus.SCHEDULED
    deployment_id: str | None = None
    progress: int = 0
    attempts: int = 0
    max_attempts: int = 3
    error: str | None = None
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    last_heartbeat: float | None = None

    def to_row(self) -> dict[str, Any]:
        row = asdict(self)
        row["status"] = self.status.value
        return row

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "Job":
        return cls(
            id=row["id"],
            evaluation_id=row["evaluation_id"],
            system_id=row["system_id"],
            parameters=dict(row["parameters"] or {}),
            status=JobStatus(row["status"]),
            deployment_id=row["deployment_id"],
            progress=int(row["progress"] or 0),
            attempts=int(row["attempts"] or 0),
            max_attempts=int(row["max_attempts"] or 1),
            error=row["error"],
            created_at=row["created_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            last_heartbeat=row["last_heartbeat"],
        )


@dataclass
class Result:
    """The result of a job: a JSON document plus an optional archive.

    ``data`` carries every measurement required for analysis within Chronos
    Control; ``archive_path`` points to the zip file with any additional raw
    output for analysis outside of Chronos.
    """

    id: str
    job_id: str
    data: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    archive_path: str | None = None
    uploaded_at: float = 0.0

    def to_row(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "Result":
        return cls(
            id=row["id"],
            job_id=row["job_id"],
            data=dict(row["data"] or {}),
            metrics=dict(row["metrics"] or {}),
            archive_path=row["archive_path"],
            uploaded_at=row["uploaded_at"],
        )


@dataclass
class Event:
    """A timeline entry associated with a job or another entity (Fig. 3c)."""

    id: str
    entity_type: str
    entity_id: str
    event_type: EventType
    message: str = ""
    timestamp: float = 0.0

    def to_row(self) -> dict[str, Any]:
        row = asdict(self)
        row["event_type"] = self.event_type.value
        return row

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "Event":
        return cls(
            id=row["id"],
            entity_type=row["entity_type"],
            entity_id=row["entity_id"],
            event_type=EventType(row["event_type"]),
            message=row["message"] or "",
            timestamp=row["timestamp"],
        )


@dataclass
class LogEntry:
    """A chunk of log output periodically uploaded by an agent."""

    id: str
    job_id: str
    sequence: int
    content: str
    timestamp: float = 0.0

    def to_row(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "LogEntry":
        return cls(
            id=row["id"],
            job_id=row["job_id"],
            sequence=int(row["sequence"]),
            content=row["content"] or "",
            timestamp=row["timestamp"],
        )
