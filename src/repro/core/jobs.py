"""Job lifecycle: the state machine at the heart of Chronos Control.

A job is the run of a benchmark for one specific parameter set.  The paper
defines the states *scheduled*, *running*, *finished*, *aborted* and
*failed*; scheduled or running jobs can be aborted and failed jobs can be
re-scheduled (Section 2.1).  The job service enforces those transitions,
tracks progress and heartbeats, and records every change on the job's event
timeline (Fig. 3c).
"""

from __future__ import annotations

from typing import Any

from repro.core.entities import Job
from repro.core.enums import JOB_TRANSITIONS, EventType, JobStatus
from repro.core.events import EventService
from repro.core.repository import Repository
from repro.errors import StateError
from repro.storage.database import Database
from repro.storage.query import and_, eq
from repro.util.clock import Clock
from repro.util.ids import IdGenerator


class JobService:
    """Creates jobs and drives their state machine."""

    def __init__(self, database: Database, clock: Clock, ids: IdGenerator,
                 events: EventService):
        self._clock = clock
        self._ids = ids
        self._events = events
        self._jobs = Repository(database, "jobs", Job.from_row, lambda j: j.to_row(), "job")

    # -- creation --------------------------------------------------------------------

    def create(self, evaluation_id: str, system_id: str, parameters: dict[str, Any],
               max_attempts: int = 3) -> Job:
        """Create a job in state *scheduled*."""
        job = Job(
            id=self._ids.next("job"),
            evaluation_id=evaluation_id,
            system_id=system_id,
            parameters=dict(parameters),
            status=JobStatus.SCHEDULED,
            max_attempts=max_attempts,
            created_at=self._clock.now(),
        )
        self._jobs.add(job)
        self._events.record("job", job.id, EventType.SCHEDULED,
                            f"job created with parameters {sorted(parameters)}")
        return job

    # -- retrieval ---------------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        return self._jobs.get(job_id)

    def list(self, evaluation_id: str | None = None,
             status: JobStatus | None = None) -> list[Job]:
        predicates = []
        if evaluation_id is not None:
            predicates.append(eq("evaluation_id", evaluation_id))
        if status is not None:
            predicates.append(eq("status", status.value))
        if not predicates:
            return self._jobs.find(None, order_by="created_at")
        predicate = predicates[0] if len(predicates) == 1 else and_(*predicates)
        return self._jobs.find(predicate, order_by="created_at")

    def next_scheduled(self, system_id: str, deployment_id: str | None = None) -> Job | None:
        """The oldest scheduled job for ``system_id`` (FIFO dispatch order)."""
        jobs = self._jobs.find(
            and_(eq("system_id", system_id), eq("status", JobStatus.SCHEDULED.value)),
        )
        # Ties on created_at are broken by the sequential job id so dispatch
        # order is deterministic even within one clock tick.
        jobs.sort(key=lambda job: (job.created_at, job.id))
        if deployment_id is not None:
            # Jobs pinned to another deployment are skipped.
            jobs = [job for job in jobs
                    if job.deployment_id in (None, deployment_id)]
        return jobs[0] if jobs else None

    def counts_by_status(self, evaluation_id: str) -> dict[str, int]:
        """Number of jobs per status for one evaluation."""
        counts = {status.value: 0 for status in JobStatus}
        for job in self.list(evaluation_id=evaluation_id):
            counts[job.status.value] += 1
        return counts

    # -- state transitions ------------------------------------------------------------------

    def start(self, job_id: str, deployment_id: str) -> Job:
        """Move a scheduled job to *running* on ``deployment_id``."""
        job = self._transition(job_id, JobStatus.RUNNING)
        now = self._clock.now()
        job = self._jobs.update(job_id, {
            "deployment_id": deployment_id,
            "started_at": now,
            "last_heartbeat": now,
            "attempts": job.attempts + 1,
            "progress": 0,
            "error": None,
        })
        self._events.record("job", job_id, EventType.STARTED,
                            f"job started on deployment {deployment_id}")
        return job

    def finish(self, job_id: str) -> Job:
        """Mark a running job as successfully *finished*."""
        job = self._transition(job_id, JobStatus.FINISHED)
        job = self._jobs.update(job_id, {
            "finished_at": self._clock.now(),
            "progress": 100,
        })
        self._events.record("job", job_id, EventType.FINISHED, "job finished")
        return job

    def fail(self, job_id: str, error: str) -> Job:
        """Mark a job as *failed* with an error message."""
        job = self._transition(job_id, JobStatus.FAILED)
        job = self._jobs.update(job_id, {
            "finished_at": self._clock.now(),
            "error": error,
        })
        self._events.record("job", job_id, EventType.FAILED, error)
        return job

    def abort(self, job_id: str) -> Job:
        """Abort a scheduled or running job."""
        job = self._transition(job_id, JobStatus.ABORTED)
        job = self._jobs.update(job_id, {"finished_at": self._clock.now()})
        self._events.record("job", job_id, EventType.ABORTED, "job aborted by user")
        return job

    def reschedule(self, job_id: str) -> Job:
        """Re-schedule a failed job (Fig. 3c's reschedule action)."""
        job = self._transition(job_id, JobStatus.SCHEDULED)
        job = self._jobs.update(job_id, {
            "deployment_id": None,
            "progress": 0,
            "error": None,
            "started_at": None,
            "finished_at": None,
            "last_heartbeat": None,
        })
        self._events.record("job", job_id, EventType.RESCHEDULED, "job re-scheduled")
        return job

    # -- progress and heartbeats -------------------------------------------------------------

    def update_progress(self, job_id: str, progress: int) -> Job:
        """Record agent-reported progress (0-100) and refresh the heartbeat."""
        progress = max(0, min(100, int(progress)))
        job = self.get(job_id)
        if job.status is not JobStatus.RUNNING:
            raise StateError(f"cannot report progress on a {job.status.value} job")
        job = self._jobs.update(job_id, {
            "progress": progress,
            "last_heartbeat": self._clock.now(),
        })
        self._events.record("job", job_id, EventType.PROGRESS, f"progress {progress}%")
        return job

    def heartbeat(self, job_id: str) -> Job:
        """Refresh the job's heartbeat without changing progress."""
        return self._jobs.update(job_id, {"last_heartbeat": self._clock.now()})

    def running_jobs(self) -> list[Job]:
        return self._jobs.find(eq("status", JobStatus.RUNNING.value))

    def stalled_jobs(self, timeout: float) -> list[Job]:
        """Running jobs whose last heartbeat is older than ``timeout`` seconds."""
        now = self._clock.now()
        return [
            job for job in self.running_jobs()
            if job.last_heartbeat is not None and now - job.last_heartbeat > timeout
        ]

    # -- internals -------------------------------------------------------------------------------

    def _transition(self, job_id: str, target: JobStatus) -> Job:
        job = self.get(job_id)
        allowed = JOB_TRANSITIONS[job.status]
        if target not in allowed:
            raise StateError(
                f"job {job_id} cannot move from {job.status.value!r} to {target.value!r}"
            )
        return self._jobs.update(job_id, {"status": target.value})
