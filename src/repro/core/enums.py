"""Enumerations of the Chronos Control data model."""

from __future__ import annotations

from enum import Enum


class JobStatus(Enum):
    """The job states named in the paper (Section 2.1).

    A job can be *scheduled*, *running*, *finished*, *aborted* or *failed*.
    Jobs which are scheduled or running can be aborted; failed jobs can be
    re-scheduled.
    """

    SCHEDULED = "scheduled"
    RUNNING = "running"
    FINISHED = "finished"
    ABORTED = "aborted"
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        """Whether the job can no longer change state on its own."""
        return self in (JobStatus.FINISHED, JobStatus.ABORTED)

    @property
    def is_active(self) -> bool:
        return self in (JobStatus.SCHEDULED, JobStatus.RUNNING)


# Legal state transitions; used by the job service to reject invalid updates.
JOB_TRANSITIONS: dict[JobStatus, tuple[JobStatus, ...]] = {
    JobStatus.SCHEDULED: (JobStatus.RUNNING, JobStatus.ABORTED, JobStatus.FAILED),
    JobStatus.RUNNING: (JobStatus.FINISHED, JobStatus.ABORTED, JobStatus.FAILED),
    JobStatus.FAILED: (JobStatus.SCHEDULED,),  # re-scheduling a failed job
    JobStatus.FINISHED: (),
    JobStatus.ABORTED: (),
}


class EvaluationStatus(Enum):
    """Aggregate status of an evaluation derived from its jobs."""

    CREATED = "created"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    ABORTED = "aborted"


class Role(Enum):
    """Roles of the multi-user environment (Section 2.2, user interface)."""

    ADMIN = "admin"
    USER = "user"
    READONLY = "readonly"


class EventType(Enum):
    """Timeline event categories shown on the job overview page (Fig. 3c)."""

    CREATED = "created"
    SCHEDULED = "scheduled"
    STARTED = "started"
    PROGRESS = "progress"
    LOG = "log"
    FINISHED = "finished"
    FAILED = "failed"
    ABORTED = "aborted"
    RESCHEDULED = "rescheduled"
    RESULT_UPLOADED = "result_uploaded"
    ARCHIVED = "archived"


class ParameterKind(Enum):
    """Parameter types offered by the Chronos web UI (Section 2.2)."""

    BOOLEAN = "boolean"
    CHECKBOX = "checkbox"
    VALUE = "value"
    INTERVAL = "interval"
    RATIO = "ratio"


class DiagramKind(Enum):
    """Diagram types provided for result visualisation (Section 2.2)."""

    BAR = "bar"
    LINE = "line"
    PIE = "pie"
