"""Versioned REST API of Chronos Control.

The API serves two kinds of clients (Section 2.2): Chronos Agents requesting
job descriptions and submitting results, and external tools integrating
Chronos into existing evaluation workflows (e.g. a build bot scheduling an
evaluation after a successful build).  The API is versioned (``v1``, ``v2``)
so that new clients can use new features while old clients keep working.
"""

from repro.core.api.app import build_application

__all__ = ["build_application"]
