"""Version 2 of the Chronos Control REST API.

v2 demonstrates the smooth evolution of the API described in the paper: new
clients can use the newer endpoints (instance statistics, one-call evaluation
scheduling for build bots, failure recovery trigger) while v1 clients keep
working unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.rest.http import Request, Response, json_response
from repro.rest.router import Router

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl


def register(router: Router, control: "ChronosControl") -> None:
    """Register every v2 route on ``router``."""

    def statistics(_: Request) -> Response:
        return json_response({"statistics": control.statistics()})

    def schedule(request: Request) -> Response:
        """One-call scheduling used by build bots after a successful build."""
        body = request.require_body()
        evaluation, jobs = control.evaluations.create(
            experiment_id=body.get("experiment_id", ""),
            name=body.get("name"),
            deployment_ids=body.get("deployment_ids", []),
            max_attempts=int(body.get("max_attempts", 3)),
        )
        return json_response({
            "evaluation": evaluation.to_row(),
            "job_count": len(jobs),
            "triggered_by": body.get("triggered_by", "api"),
        }, status=201)

    def recover(_: Request) -> Response:
        report = control.recover_stalled_jobs()
        return json_response({
            "rescheduled": report.failed_jobs_rescheduled,
            "stalled_recovered": report.stalled_jobs_recovered,
            "permanently_failed": report.permanently_failed,
        })

    def scheduler_snapshot(_: Request) -> Response:
        snapshot = control.scheduler.snapshot()
        return json_response({
            "scheduled": snapshot.scheduled,
            "running": snapshot.running,
            "finished": snapshot.finished,
            "failed": snapshot.failed,
            "aborted": snapshot.aborted,
            "busy_deployments": snapshot.busy_deployments,
        })

    router.get("/statistics", statistics)
    router.post("/schedule", schedule)
    router.post("/recover", recover)
    router.get("/scheduler", scheduler_snapshot)
