"""Assembles the REST application for a Chronos Control instance."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.api import v1, v2
from repro.rest.application import RestApplication
from repro.rest.auth import TokenAuthMiddleware

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl

PUBLIC_PATHS = ("/login", "/info")


def build_application(control: "ChronosControl") -> RestApplication:
    """Build the versioned REST application for ``control``."""
    application = RestApplication(base_path="/api")

    def validate(token: str) -> dict:
        user = control.users.validate_token(token)
        return {"user": user}

    application.add_middleware(TokenAuthMiddleware(validate, public_paths=PUBLIC_PATHS))

    v1.register(application.version("v1"), control)
    v2.register(application.version("v2"), control)
    return application
