"""Version 1 of the Chronos Control REST API.

v1 covers the complete evaluation workflow: authentication, project /
system / deployment / experiment management, evaluation creation, the
agent-facing job endpoints (claim, progress, logs, result upload, failure
reporting) and result retrieval.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.access import AccessControl
from repro.errors import ApiError
from repro.rest.http import Request, Response, json_response
from repro.rest.router import Router
from repro.version import __version__

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl


def register(router: Router, control: "ChronosControl") -> None:
    """Register every v1 route on ``router``."""
    _register_public(router, control)
    _register_projects(router, control)
    _register_systems(router, control)
    _register_deployments(router, control)
    _register_experiments(router, control)
    _register_evaluations(router, control)
    _register_jobs(router, control)
    _register_agent_endpoints(router, control)


def _auth_user(request: Request):
    auth = request.context.get("auth") or {}
    user = auth.get("user")
    if user is None:
        raise ApiError("request is not authenticated", status=401)
    return user


# -- public endpoints -------------------------------------------------------------


def _register_public(router: Router, control: "ChronosControl") -> None:
    def info(_: Request) -> Response:
        return json_response({
            "name": "Chronos Control",
            "version": __version__,
            "api_versions": ["v1", "v2"],
        })

    def login(request: Request) -> Response:
        body = request.require_body()
        token = control.users.login(body.get("username", ""), body.get("password", ""))
        return json_response({"token": token}, status=200)

    router.get("/info", info)
    router.post("/login", login)


# -- projects -----------------------------------------------------------------------


def _register_projects(router: Router, control: "ChronosControl") -> None:
    def list_projects(request: Request) -> Response:
        user = _auth_user(request)
        projects = control.projects.list(user=user)
        return json_response({"projects": [project.to_row() for project in projects]})

    def create_project(request: Request) -> Response:
        user = _auth_user(request)
        body = request.require_body()
        project = control.projects.create(
            body.get("name", ""), user, description=body.get("description", "")
        )
        return json_response({"project": project.to_row()}, status=201)

    def get_project(request: Request) -> Response:
        user = _auth_user(request)
        project = control.projects.get(request.path_params["project_id"])
        AccessControl.require_view(user, project)
        return json_response({"project": project.to_row()})

    def archive_project(request: Request) -> Response:
        user = _auth_user(request)
        project = control.projects.get(request.path_params["project_id"])
        AccessControl.require_administer(user, project)
        archived = control.projects.archive(project.id)
        return json_response({"project": archived.to_row()})

    def add_member(request: Request) -> Response:
        user = _auth_user(request)
        project = control.projects.get(request.path_params["project_id"])
        AccessControl.require_administer(user, project)
        body = request.require_body()
        member = control.users.get_by_username(body.get("username", ""))
        updated = control.projects.add_member(project.id, member)
        return json_response({"project": updated.to_row()})

    router.get("/projects", list_projects)
    router.post("/projects", create_project)
    router.get("/projects/{project_id}", get_project)
    router.post("/projects/{project_id}/archive", archive_project)
    router.post("/projects/{project_id}/members", add_member)


# -- systems -------------------------------------------------------------------------


def _register_systems(router: Router, control: "ChronosControl") -> None:
    def list_systems(_: Request) -> Response:
        return json_response({"systems": [system.to_row() for system in control.systems.list()]})

    def get_system(request: Request) -> Response:
        system = control.systems.get(request.path_params["system_id"])
        return json_response({"system": system.to_row()})

    def create_system(request: Request) -> Response:
        from repro.core.parameters import ParameterDefinition

        user = _auth_user(request)
        body = request.require_body()
        definitions = [ParameterDefinition.from_dict(item)
                       for item in body.get("parameters", [])]
        system = control.systems.register(
            name=body.get("name", ""),
            parameters=definitions,
            result_configuration=body.get("result_config"),
            description=body.get("description", ""),
            owner_id=user.id,
        )
        return json_response({"system": system.to_row()}, status=201)

    router.get("/systems", list_systems)
    router.get("/systems/{system_id}", get_system)
    router.post("/systems", create_system)


# -- deployments ------------------------------------------------------------------------


def _register_deployments(router: Router, control: "ChronosControl") -> None:
    def list_deployments(request: Request) -> Response:
        system_id = request.query.get("system_id")
        deployments = control.deployments.list(system_id=system_id)
        return json_response({"deployments": [d.to_row() for d in deployments]})

    def create_deployment(request: Request) -> Response:
        body = request.require_body()
        deployment = control.deployments.register(
            system_id=body.get("system_id", ""),
            name=body.get("name", ""),
            environment=body.get("environment", {}),
            version=body.get("version", ""),
        )
        return json_response({"deployment": deployment.to_row()}, status=201)

    def get_deployment(request: Request) -> Response:
        deployment = control.deployments.get(request.path_params["deployment_id"])
        return json_response({"deployment": deployment.to_row()})

    router.get("/deployments", list_deployments)
    router.post("/deployments", create_deployment)
    router.get("/deployments/{deployment_id}", get_deployment)


# -- experiments -------------------------------------------------------------------------


def _register_experiments(router: Router, control: "ChronosControl") -> None:
    def create_experiment(request: Request) -> Response:
        user = _auth_user(request)
        body = request.require_body()
        project = control.projects.ensure_not_archived(body.get("project_id", ""))
        AccessControl.require_modify(user, project)
        experiment = control.experiments.create(
            project_id=project.id,
            system_id=body.get("system_id", ""),
            name=body.get("name", ""),
            parameters=body.get("parameters", {}),
            description=body.get("description", ""),
        )
        return json_response({"experiment": experiment.to_row()}, status=201)

    def list_experiments(request: Request) -> Response:
        project_id = request.query.get("project_id")
        experiments = control.experiments.list(project_id=project_id)
        return json_response({"experiments": [e.to_row() for e in experiments]})

    def get_experiment(request: Request) -> Response:
        experiment = control.experiments.get(request.path_params["experiment_id"])
        return json_response({"experiment": experiment.to_row()})

    def experiment_space(request: Request) -> Response:
        experiment_id = request.path_params["experiment_id"]
        return json_response({
            "experiment_id": experiment_id,
            "jobs": control.experiments.space_size(experiment_id),
            "parameter_sets": control.experiments.job_parameter_sets(experiment_id),
        })

    router.post("/experiments", create_experiment)
    router.get("/experiments", list_experiments)
    router.get("/experiments/{experiment_id}", get_experiment)
    router.get("/experiments/{experiment_id}/space", experiment_space)


# -- evaluations ---------------------------------------------------------------------------


def _register_evaluations(router: Router, control: "ChronosControl") -> None:
    def create_evaluation(request: Request) -> Response:
        body = request.require_body()
        evaluation, jobs = control.evaluations.create(
            experiment_id=body.get("experiment_id", ""),
            name=body.get("name"),
            deployment_ids=body.get("deployment_ids", []),
            max_attempts=int(body.get("max_attempts", 3)),
        )
        return json_response({
            "evaluation": evaluation.to_row(),
            "jobs": [job.to_row() for job in jobs],
        }, status=201)

    def get_evaluation(request: Request) -> Response:
        evaluation = control.evaluations.get(request.path_params["evaluation_id"])
        return json_response({"evaluation": evaluation.to_row()})

    def evaluation_progress(request: Request) -> Response:
        return json_response(
            control.evaluations.progress(request.path_params["evaluation_id"])
        )

    def evaluation_jobs(request: Request) -> Response:
        jobs = control.evaluations.jobs(request.path_params["evaluation_id"])
        return json_response({"jobs": [job.to_row() for job in jobs]})

    def abort_evaluation(request: Request) -> Response:
        evaluation = control.evaluations.abort(request.path_params["evaluation_id"])
        return json_response({"evaluation": evaluation.to_row()})

    def evaluation_results(request: Request) -> Response:
        evaluation_id = request.path_params["evaluation_id"]
        jobs = control.evaluations.jobs(evaluation_id)
        results = control.results.for_jobs([job.id for job in jobs])
        return json_response({"results": [result.to_row() for result in results]})

    router.post("/evaluations", create_evaluation)
    router.get("/evaluations/{evaluation_id}", get_evaluation)
    router.get("/evaluations/{evaluation_id}/progress", evaluation_progress)
    router.get("/evaluations/{evaluation_id}/jobs", evaluation_jobs)
    router.get("/evaluations/{evaluation_id}/results", evaluation_results)
    router.post("/evaluations/{evaluation_id}/abort", abort_evaluation)


# -- jobs ------------------------------------------------------------------------------------


def _register_jobs(router: Router, control: "ChronosControl") -> None:
    def get_job(request: Request) -> Response:
        job = control.jobs.get(request.path_params["job_id"])
        return json_response({"job": job.to_row()})

    def abort_job(request: Request) -> Response:
        job = control.jobs.abort(request.path_params["job_id"])
        return json_response({"job": job.to_row()})

    def reschedule_job(request: Request) -> Response:
        job = control.jobs.reschedule(request.path_params["job_id"])
        return json_response({"job": job.to_row()})

    def job_timeline(request: Request) -> Response:
        events = control.events.timeline("job", request.path_params["job_id"])
        return json_response({"events": [event.to_row() for event in events]})

    def job_logs(request: Request) -> Response:
        job_id = request.path_params["job_id"]
        return json_response({"job_id": job_id, "log": control.logs.full_text(job_id)})

    def job_result(request: Request) -> Response:
        result = control.results.for_job(request.path_params["job_id"])
        return json_response({"result": result.to_row()})

    router.get("/jobs/{job_id}", get_job)
    router.post("/jobs/{job_id}/abort", abort_job)
    router.post("/jobs/{job_id}/reschedule", reschedule_job)
    router.get("/jobs/{job_id}/timeline", job_timeline)
    router.get("/jobs/{job_id}/logs", job_logs)
    router.get("/jobs/{job_id}/result", job_result)


# -- agent-facing endpoints --------------------------------------------------------------------


def _register_agent_endpoints(router: Router, control: "ChronosControl") -> None:
    def claim_next_job(request: Request) -> Response:
        body = request.require_body()
        job = control.claim_next_job(body.get("system_id", ""), body.get("deployment_id", ""))
        if job is None:
            return json_response({"job": None}, status=200)
        return json_response({"job": job.to_row()}, status=200)

    def report_progress(request: Request) -> Response:
        body = request.require_body()
        job = control.report_progress(
            request.path_params["job_id"],
            int(body.get("progress", 0)),
            log_output=body.get("log"),
        )
        return json_response({"job": job.to_row()})

    def append_log(request: Request) -> Response:
        body = request.require_body()
        entry = control.logs.append(request.path_params["job_id"], body.get("content", ""))
        return json_response({"log_entry": entry.to_row()}, status=201)

    def upload_result(request: Request) -> Response:
        body = request.require_body()
        job, result = control.report_success(
            request.path_params["job_id"],
            data=body.get("data", {}),
            metrics=body.get("metrics", {}),
            extra_files=body.get("extra_files"),
        )
        return json_response({"job": job.to_row(), "result": result.to_row()}, status=201)

    def report_failure(request: Request) -> Response:
        body = request.require_body()
        job = control.report_failure(
            request.path_params["job_id"], body.get("error", "unknown error")
        )
        return json_response({"job": job.to_row()})

    router.post("/agents/next-job", claim_next_job)
    router.patch("/jobs/{job_id}/progress", report_progress)
    router.post("/jobs/{job_id}/logs", append_log)
    router.post("/jobs/{job_id}/result", upload_result)
    router.post("/jobs/{job_id}/failure", report_failure)
