"""Event timeline: everything that happened to a job (or other entity).

The job overview page (Fig. 3c) shows a timeline of all events associated
with a job; this service records and retrieves those events.
"""

from __future__ import annotations

from repro.core.entities import Event
from repro.core.enums import EventType
from repro.core.repository import Repository
from repro.storage.database import Database
from repro.storage.query import and_, eq
from repro.util.clock import Clock
from repro.util.ids import IdGenerator


class EventService:
    """Records and queries timeline events."""

    def __init__(self, database: Database, clock: Clock, ids: IdGenerator):
        self._clock = clock
        self._ids = ids
        self._events = Repository(
            database, "events", Event.from_row, lambda e: e.to_row(), "event"
        )

    def record(self, entity_type: str, entity_id: str, event_type: EventType,
               message: str = "") -> Event:
        """Append an event to the timeline of ``entity_type``/``entity_id``."""
        event = Event(
            id=self._ids.next("event"),
            entity_type=entity_type,
            entity_id=entity_id,
            event_type=event_type,
            message=message,
            timestamp=self._clock.now(),
        )
        return self._events.add(event)

    def timeline(self, entity_type: str, entity_id: str) -> list[Event]:
        """All events of one entity in chronological order."""
        events = self._events.find(
            and_(eq("entity_type", entity_type), eq("entity_id", entity_id))
        )
        return sorted(events, key=lambda event: (event.timestamp, event.id))

    def count(self, entity_type: str | None = None) -> int:
        if entity_type is None:
            return self._events.count()
        return self._events.count(eq("entity_type", entity_type))
