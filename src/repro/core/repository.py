"""Typed repositories over the embedded relational store.

Each repository maps one entity dataclass onto one table, hiding the
row-conversion boilerplate from the service layer.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, TypeVar

from repro.errors import NotFoundError
from repro.storage.database import Database
from repro.storage.query import Predicate, eq

EntityT = TypeVar("EntityT")


class Repository(Generic[EntityT]):
    """CRUD access to one table, converting rows to entity dataclasses."""

    def __init__(
        self,
        database: Database,
        table: str,
        from_row: Callable[[dict[str, Any]], EntityT],
        to_row: Callable[[EntityT], dict[str, Any]],
        entity_name: str,
    ):
        self._database = database
        self._table = table
        self._from_row = from_row
        self._to_row = to_row
        self._entity_name = entity_name

    def add(self, entity: EntityT) -> EntityT:
        """Insert ``entity`` and return it."""
        self._database.insert(self._table, self._to_row(entity))
        return entity

    def get(self, entity_id: str) -> EntityT:
        """Return the entity with ``entity_id`` or raise ``NotFoundError``."""
        row = self._database.get_or_none(self._table, entity_id)
        if row is None:
            raise NotFoundError(f"{self._entity_name} {entity_id!r} does not exist")
        return self._from_row(row)

    def get_or_none(self, entity_id: str) -> EntityT | None:
        row = self._database.get_or_none(self._table, entity_id)
        return self._from_row(row) if row is not None else None

    def exists(self, entity_id: str) -> bool:
        return self._database.get_or_none(self._table, entity_id) is not None

    def update(self, entity_id: str, changes: dict[str, Any]) -> EntityT:
        """Apply column-level ``changes`` and return the updated entity."""
        if not self.exists(entity_id):
            raise NotFoundError(f"{self._entity_name} {entity_id!r} does not exist")
        row = self._database.update(self._table, entity_id, changes)
        return self._from_row(row)

    def save(self, entity_id: str, entity: EntityT) -> EntityT:
        """Replace the stored entity wholesale."""
        row = self._to_row(entity)
        row.pop("id", None)
        return self.update(entity_id, row)

    def delete(self, entity_id: str) -> None:
        if not self.exists(entity_id):
            raise NotFoundError(f"{self._entity_name} {entity_id!r} does not exist")
        self._database.delete(self._table, entity_id)

    def find(self, predicate: Predicate | None = None, order_by: str | None = None,
             descending: bool = False, limit: int | None = None) -> list[EntityT]:
        rows = self._database.select(
            self._table, predicate, order_by=order_by, descending=descending, limit=limit
        )
        return [self._from_row(row) for row in rows]

    def find_one(self, predicate: Predicate) -> EntityT | None:
        matches = self.find(predicate, limit=1)
        return matches[0] if matches else None

    def find_by(self, column: str, value: Any) -> list[EntityT]:
        return self.find(eq(column, value))

    def count(self, predicate: Predicate | None = None) -> int:
        return self._database.count(self._table, predicate)

    def all(self) -> list[EntityT]:
        return self.find(None)
