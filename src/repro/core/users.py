"""User management, password hashing and session handling.

The original Chronos Control ships "an advanced session and role-based user
management to support the deployment in a multi-user environment"
(Section 2.2).  This module provides users with roles, salted password
hashing, login/logout with expiring session tokens, and token validation used
by the REST authentication middleware.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro.core.entities import User
from repro.core.enums import Role
from repro.core.repository import Repository
from repro.errors import AuthenticationError, ConflictError, NotFoundError
from repro.storage.database import Database
from repro.storage.query import eq
from repro.util.clock import Clock
from repro.util.ids import IdGenerator, new_token
from repro.util.validation import ensure_non_empty

DEFAULT_SESSION_LIFETIME = 8 * 3600.0
_HASH_ITERATIONS = 2000


def hash_password(password: str, salt: str | None = None) -> str:
    """Hash ``password`` with PBKDF2 and a random salt."""
    salt = salt or secrets.token_hex(8)
    digest = hashlib.pbkdf2_hmac(
        "sha256", password.encode("utf-8"), salt.encode("utf-8"), _HASH_ITERATIONS
    ).hex()
    return f"{salt}${digest}"


def verify_password(password: str, stored_hash: str) -> bool:
    """Check ``password`` against a stored salted hash."""
    salt, _, expected = stored_hash.partition("$")
    if not expected:
        return False
    candidate = hash_password(password, salt).partition("$")[2]
    return hmac.compare_digest(candidate, expected)


class UserService:
    """Registers users, authenticates them and manages sessions."""

    def __init__(self, database: Database, clock: Clock, ids: IdGenerator,
                 session_lifetime: float = DEFAULT_SESSION_LIFETIME):
        self._database = database
        self._clock = clock
        self._ids = ids
        self._session_lifetime = session_lifetime
        self._users = Repository(database, "users", User.from_row, lambda u: u.to_row(), "user")

    # -- user management -----------------------------------------------------------

    def create_user(self, username: str, password: str, role: Role = Role.USER) -> User:
        """Register a new user with ``role``."""
        ensure_non_empty(username, "username")
        ensure_non_empty(password, "password")
        if self._users.find_one(eq("username", username)) is not None:
            raise ConflictError(f"username {username!r} is already taken")
        user = User(
            id=self._ids.next("user"),
            username=username,
            password_hash=hash_password(password),
            role=role,
            created_at=self._clock.now(),
        )
        return self._users.add(user)

    def get_user(self, user_id: str) -> User:
        return self._users.get(user_id)

    def get_by_username(self, username: str) -> User:
        user = self._users.find_one(eq("username", username))
        if user is None:
            raise NotFoundError(f"user {username!r} does not exist")
        return user

    def list_users(self) -> list[User]:
        return self._users.find(None, order_by="username")

    def change_role(self, user_id: str, role: Role) -> User:
        return self._users.update(user_id, {"role": role.value})

    def change_password(self, user_id: str, new_password: str) -> User:
        ensure_non_empty(new_password, "password")
        return self._users.update(user_id, {"password_hash": hash_password(new_password)})

    # -- sessions -----------------------------------------------------------------------

    def login(self, username: str, password: str) -> str:
        """Authenticate and return a session token."""
        try:
            user = self.get_by_username(username)
        except NotFoundError:
            raise AuthenticationError("unknown username or wrong password") from None
        if not verify_password(password, user.password_hash):
            raise AuthenticationError("unknown username or wrong password")
        token = new_token()
        now = self._clock.now()
        self._database.insert(
            "sessions",
            {
                "id": self._ids.next("session"),
                "user_id": user.id,
                "token": token,
                "created_at": now,
                "expires_at": now + self._session_lifetime,
            },
        )
        return token

    def logout(self, token: str) -> None:
        """Invalidate a session token (idempotent)."""
        rows = self._database.select("sessions", eq("token", token))
        for row in rows:
            self._database.delete("sessions", row["id"])

    def validate_token(self, token: str) -> User:
        """Return the user owning ``token``; raise if unknown or expired."""
        row = self._database.table("sessions").select_one(eq("token", token))
        if row is None:
            raise AuthenticationError("invalid session token")
        if row["expires_at"] < self._clock.now():
            raise AuthenticationError("session token has expired")
        return self._users.get(row["user_id"])

    def active_sessions(self, user_id: str | None = None) -> int:
        """Number of unexpired sessions, optionally for one user."""
        now = self._clock.now()
        rows = self._database.select("sessions")
        return sum(
            1
            for row in rows
            if row["expires_at"] >= now and (user_id is None or row["user_id"] == user_id)
        )
