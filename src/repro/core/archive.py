"""Archiving: persisting evaluation settings and results (requirement iv).

Users can archive entire projects, i.e. make their evaluation settings and
the results persistent (Section 2.1).  In addition to the ``archived`` flag on
projects and experiments, this module exports a self-contained archive bundle
(a zip file with every experiment, evaluation, job, parameter set, result and
log of a project) so an archived evaluation can be reproduced or inspected
without the live Chronos instance.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Any

from repro.core.evaluations import EvaluationService
from repro.core.experiments import ExperimentService
from repro.core.jobs import JobService
from repro.core.logs import LogService
from repro.core.projects import ProjectService
from repro.core.results import ResultService


class ArchiveService:
    """Builds archive bundles for projects and experiments."""

    def __init__(self, projects: ProjectService, experiments: ExperimentService,
                 evaluations: EvaluationService, jobs: JobService,
                 results: ResultService, logs: LogService):
        self._projects = projects
        self._experiments = experiments
        self._evaluations = evaluations
        self._jobs = jobs
        self._results = results
        self._logs = logs

    # -- bundle construction -------------------------------------------------------------

    def project_bundle(self, project_id: str) -> dict[str, Any]:
        """A JSON-compatible bundle with everything belonging to the project."""
        project = self._projects.get(project_id)
        experiments = self._experiments.list(project_id=project_id)
        bundle: dict[str, Any] = {
            "project": project.to_row(),
            "experiments": [],
        }
        for experiment in experiments:
            bundle["experiments"].append(self.experiment_bundle(experiment.id))
        return bundle

    def experiment_bundle(self, experiment_id: str) -> dict[str, Any]:
        """A JSON-compatible bundle for one experiment and all its evaluations."""
        experiment = self._experiments.get(experiment_id)
        evaluations = self._evaluations.list(experiment_id=experiment_id)
        bundle: dict[str, Any] = {
            "experiment": experiment.to_row(),
            "evaluations": [],
        }
        for evaluation in evaluations:
            jobs = self._evaluations.jobs(evaluation.id)
            job_entries = []
            for job in jobs:
                result = self._results.for_job_or_none(job.id)
                job_entries.append(
                    {
                        "job": job.to_row(),
                        "result": result.to_row() if result is not None else None,
                        "log": self._logs.full_text(job.id),
                    }
                )
            bundle["evaluations"].append(
                {"evaluation": evaluation.to_row(), "jobs": job_entries}
            )
        return bundle

    # -- export ----------------------------------------------------------------------------

    def archive_project(self, project_id: str, directory: str | Path) -> Path:
        """Archive a project: flag it and write its bundle to ``directory``.

        Returns the path of the written zip file.
        """
        bundle = self.project_bundle(project_id)
        project = self._projects.archive(project_id)
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{project.id}-archive.zip"
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
            archive.writestr("project.json", json.dumps(bundle, sort_keys=True, indent=2))
        return path

    @staticmethod
    def load_bundle(path: str | Path) -> dict[str, Any]:
        """Read back a project archive bundle written by :meth:`archive_project`."""
        with zipfile.ZipFile(Path(path), "r") as archive:
            return json.loads(archive.read("project.json").decode("utf-8"))
