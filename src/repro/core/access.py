"""Project-level access control.

"Access permissions are handled at the level of projects so that every member
of a project has access to all experiments, evaluations, and their results."
(Section 2.1).  Administrators may access everything; read-only users may
view but not modify.
"""

from __future__ import annotations

from repro.core.entities import Project, User
from repro.core.enums import Role
from repro.errors import PermissionDeniedError


class AccessControl:
    """Answers "may this user do that to this project?" questions."""

    @staticmethod
    def can_view(user: User, project: Project) -> bool:
        """Members, owners and admins may view a project."""
        if user.role is Role.ADMIN:
            return True
        return user.id == project.owner_id or user.id in project.members

    @staticmethod
    def can_modify(user: User, project: Project) -> bool:
        """Owners, members (non read-only) and admins may modify a project."""
        if user.role is Role.ADMIN:
            return True
        if user.role is Role.READONLY:
            return False
        return user.id == project.owner_id or user.id in project.members

    @staticmethod
    def can_administer(user: User, project: Project) -> bool:
        """Only the owner and admins may manage members or archive the project."""
        return user.role is Role.ADMIN or user.id == project.owner_id

    # -- enforcement helpers ----------------------------------------------------

    @classmethod
    def require_view(cls, user: User, project: Project) -> None:
        if not cls.can_view(user, project):
            raise PermissionDeniedError(
                f"user {user.username!r} may not view project {project.name!r}"
            )

    @classmethod
    def require_modify(cls, user: User, project: Project) -> None:
        if not cls.can_modify(user, project):
            raise PermissionDeniedError(
                f"user {user.username!r} may not modify project {project.name!r}"
            )

    @classmethod
    def require_administer(cls, user: User, project: Project) -> None:
        if not cls.can_administer(user, project):
            raise PermissionDeniedError(
                f"user {user.username!r} may not administer project {project.name!r}"
            )
