"""Automated failure handling and recovery (requirement iii).

Chronos must be reliable enough for long-running evaluations: failures are
handled automatically and failed evaluation runs are recovered.  Two
mechanisms are implemented:

* **Failure policy** -- when an agent reports a job failure, the job is
  automatically re-scheduled as long as it has attempts left; once the
  attempt budget is exhausted it stays *failed* (and can still be re-scheduled
  manually from the UI/API).
* **Stall detection** -- running jobs must refresh their heartbeat (progress
  updates do this implicitly).  Jobs whose heartbeat is older than the
  configured timeout are treated as crashed agents: they are failed and then
  re-scheduled under the same policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entities import Job
from repro.core.enums import JobStatus
from repro.core.jobs import JobService

DEFAULT_HEARTBEAT_TIMEOUT = 300.0


@dataclass
class RecoveryReport:
    """What a recovery pass did."""

    failed_jobs_rescheduled: list[str]
    stalled_jobs_recovered: list[str]
    permanently_failed: list[str]

    @property
    def total_recovered(self) -> int:
        return len(self.failed_jobs_rescheduled) + len(self.stalled_jobs_recovered)


class FailureHandler:
    """Implements the automatic re-scheduling and stall recovery policy."""

    def __init__(self, jobs: JobService,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT):
        self._jobs = jobs
        self.heartbeat_timeout = heartbeat_timeout

    # -- reactions to agent-reported failures ---------------------------------------

    def handle_job_failure(self, job_id: str, error: str) -> Job:
        """Mark ``job_id`` failed and re-schedule it if attempts remain."""
        job = self._jobs.fail(job_id, error)
        if self.should_retry(job):
            return self._jobs.reschedule(job_id)
        return job

    def should_retry(self, job: Job) -> bool:
        """Whether the failure policy grants the job another attempt."""
        return job.status is JobStatus.FAILED and job.attempts < job.max_attempts

    # -- stall detection --------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """One recovery pass: requeue crashed/stalled jobs.

        Returns a report listing re-scheduled and permanently failed jobs.
        """
        rescheduled: list[str] = []
        stalled_recovered: list[str] = []
        permanent: list[str] = []

        for job in self._jobs.stalled_jobs(self.heartbeat_timeout):
            failed = self._jobs.fail(job.id, "agent heartbeat timed out")
            if self.should_retry(failed):
                self._jobs.reschedule(job.id)
                stalled_recovered.append(job.id)
            else:
                permanent.append(job.id)

        for job in self._jobs.list(status=JobStatus.FAILED):
            if self.should_retry(job):
                self._jobs.reschedule(job.id)
                rescheduled.append(job.id)
            else:
                permanent.append(job.id)

        return RecoveryReport(
            failed_jobs_rescheduled=rescheduled,
            stalled_jobs_recovered=stalled_recovered,
            permanently_failed=permanent,
        )
