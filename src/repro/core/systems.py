"""System (SuE) registration: parameters, result structure and visualisation.

"For every SuE, it is defined which parameters the SuE expects, how the
results are structured, and how they should be visualized." (Section 2.1).
Systems can be registered programmatically (the equivalent of the UI-based
configuration shown in Fig. 2) or loaded from a declarative *extension
bundle* -- a directory containing a ``system.json`` file -- which stands in
for the git/mercurial extension repositories of the original.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.entities import System
from repro.core.enums import DiagramKind
from repro.core.parameters import ParameterDefinition
from repro.core.repository import Repository
from repro.errors import ConflictError, ValidationError
from repro.storage.database import Database
from repro.storage.query import eq
from repro.util.clock import Clock
from repro.util.ids import IdGenerator
from repro.util.validation import ensure_non_empty


def diagram_spec(kind: DiagramKind | str, title: str, x_field: str, y_field: str,
                 group_field: str | None = None) -> dict[str, Any]:
    """Build one diagram specification for a system's result configuration."""
    kind_value = kind.value if isinstance(kind, DiagramKind) else DiagramKind(kind).value
    return {
        "kind": kind_value,
        "title": title,
        "x_field": x_field,
        "y_field": y_field,
        "group_field": group_field,
    }


def result_config(metrics: list[str], diagrams: list[dict[str, Any]] | None = None) -> dict[str, Any]:
    """Build a system result configuration: metric names plus diagram specs."""
    return {"metrics": list(metrics), "diagrams": list(diagrams or [])}


class SystemService:
    """Registers Systems under Evaluation and their configuration."""

    def __init__(self, database: Database, clock: Clock, ids: IdGenerator):
        self._clock = clock
        self._ids = ids
        self._systems = Repository(
            database, "systems", System.from_row, lambda s: s.to_row(), "system"
        )

    # -- registration -----------------------------------------------------------

    def register(
        self,
        name: str,
        parameters: list[ParameterDefinition],
        result_configuration: dict[str, Any] | None = None,
        description: str = "",
        owner_id: str = "",
    ) -> System:
        """Register a new SuE with its parameter and result configuration."""
        ensure_non_empty(name, "system name")
        if self._systems.find_one(eq("name", name)) is not None:
            raise ConflictError(f"a system named {name!r} is already registered")
        system = System(
            id=self._ids.next("system"),
            name=name,
            description=description,
            parameters=[definition.to_dict() for definition in parameters],
            result_config=result_configuration or result_config([]),
            owner_id=owner_id,
            created_at=self._clock.now(),
        )
        return self._systems.add(system)

    def register_from_bundle(self, bundle_path: str | Path, owner_id: str = "") -> System:
        """Register an SuE from a declarative extension bundle directory.

        The bundle must contain a ``system.json`` with ``name``,
        ``description``, ``parameters`` (list of parameter-definition
        dictionaries) and ``result_config``.
        """
        bundle = Path(bundle_path)
        manifest_path = bundle / "system.json"
        if not manifest_path.exists():
            raise ValidationError(f"bundle {bundle} does not contain a system.json")
        with manifest_path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        parameters = [
            ParameterDefinition.from_dict(item) for item in manifest.get("parameters", [])
        ]
        return self.register(
            name=manifest["name"],
            parameters=parameters,
            result_configuration=manifest.get("result_config"),
            description=manifest.get("description", ""),
            owner_id=owner_id,
        )

    # -- retrieval ---------------------------------------------------------------------

    def get(self, system_id: str) -> System:
        return self._systems.get(system_id)

    def get_by_name(self, name: str) -> System | None:
        return self._systems.find_one(eq("name", name))

    def list(self) -> list[System]:
        return self._systems.find(None, order_by="name")

    def parameter_definitions(self, system_id: str) -> list[ParameterDefinition]:
        """The system's parameter definitions as objects."""
        system = self.get(system_id)
        return [ParameterDefinition.from_dict(item) for item in system.parameters]

    def diagrams(self, system_id: str) -> list[dict[str, Any]]:
        """The diagram specifications of the system's result configuration."""
        return list(self.get(system_id).result_config.get("diagrams", []))

    def metrics(self, system_id: str) -> list[str]:
        """The metric names the system's results are expected to report."""
        return list(self.get(system_id).result_config.get("metrics", []))

    # -- modification --------------------------------------------------------------------

    def update_parameters(self, system_id: str,
                          parameters: list[ParameterDefinition]) -> System:
        return self._systems.update(
            system_id, {"parameters": [d.to_dict() for d in parameters]}
        )

    def update_result_config(self, system_id: str, configuration: dict[str, Any]) -> System:
        return self._systems.update(system_id, {"result_config": configuration})

    def delete(self, system_id: str) -> None:
        self._systems.delete(system_id)
