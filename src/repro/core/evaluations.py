"""Evaluations: runs of an experiment consisting of one or multiple jobs."""

from __future__ import annotations

from repro.core.entities import Evaluation, Job
from repro.core.enums import EvaluationStatus, EventType, JobStatus
from repro.core.events import EventService
from repro.core.experiments import ExperimentService
from repro.core.jobs import JobService
from repro.core.repository import Repository
from repro.errors import StateError, ValidationError
from repro.storage.database import Database
from repro.storage.query import eq
from repro.util.clock import Clock
from repro.util.ids import IdGenerator


class EvaluationService:
    """Creates evaluations by expanding experiments into jobs."""

    def __init__(self, database: Database, clock: Clock, ids: IdGenerator,
                 experiments: ExperimentService, jobs: JobService, events: EventService):
        self._clock = clock
        self._ids = ids
        self._experiments = experiments
        self._jobs = jobs
        self._events = events
        self._evaluations = Repository(
            database, "evaluations", Evaluation.from_row, lambda e: e.to_row(), "evaluation"
        )

    # -- creation ----------------------------------------------------------------------

    def create(self, experiment_id: str, name: str | None = None,
               deployment_ids: list[str] | None = None,
               max_attempts: int = 3) -> tuple[Evaluation, list[Job]]:
        """Create an evaluation of ``experiment_id`` and its jobs.

        The experiment's parameter space is expanded and one job is created
        per parameter combination (e.g. one job per thread count per storage
        engine in the MongoDB demo).  Returns the evaluation and its jobs.
        """
        experiment = self._experiments.get(experiment_id)
        if experiment.archived:
            raise StateError(f"experiment {experiment.name!r} is archived")
        parameter_sets = self._experiments.job_parameter_sets(experiment_id)
        if not parameter_sets:
            raise ValidationError("the experiment expands to zero jobs")
        evaluation = Evaluation(
            id=self._ids.next("evaluation"),
            experiment_id=experiment_id,
            name=name or f"{experiment.name} run",
            status=EvaluationStatus.CREATED,
            deployment_ids=list(deployment_ids or []),
            created_at=self._clock.now(),
        )
        self._evaluations.add(evaluation)
        jobs = [
            self._jobs.create(evaluation.id, experiment.system_id, parameters,
                              max_attempts=max_attempts)
            for parameters in parameter_sets
        ]
        self._events.record("evaluation", evaluation.id, EventType.CREATED,
                            f"evaluation created with {len(jobs)} jobs")
        return evaluation, jobs

    # -- retrieval ----------------------------------------------------------------------

    def get(self, evaluation_id: str) -> Evaluation:
        return self._evaluations.get(evaluation_id)

    def list(self, experiment_id: str | None = None) -> list[Evaluation]:
        if experiment_id is None:
            return self._evaluations.find(None, order_by="created_at")
        return self._evaluations.find(eq("experiment_id", experiment_id),
                                      order_by="created_at")

    def jobs(self, evaluation_id: str) -> list[Job]:
        return self._jobs.list(evaluation_id=evaluation_id)

    def progress(self, evaluation_id: str) -> dict[str, object]:
        """Aggregate progress of the evaluation (Fig. 3b's overview)."""
        jobs = self.jobs(evaluation_id)
        counts = self._jobs.counts_by_status(evaluation_id)
        total_progress = sum(job.progress for job in jobs) / len(jobs) if jobs else 0.0
        return {
            "evaluation_id": evaluation_id,
            "jobs": len(jobs),
            "counts": counts,
            "progress": round(total_progress, 2),
            "status": self.refresh_status(evaluation_id).status.value,
        }

    # -- status maintenance ---------------------------------------------------------------

    def refresh_status(self, evaluation_id: str) -> Evaluation:
        """Derive the evaluation's status from its jobs and persist it."""
        evaluation = self.get(evaluation_id)
        jobs = self.jobs(evaluation_id)
        status = _derive_status(jobs)
        changes: dict[str, object] = {"status": status.value}
        if status in (EvaluationStatus.FINISHED, EvaluationStatus.FAILED,
                      EvaluationStatus.ABORTED) and evaluation.finished_at is None:
            changes["finished_at"] = self._clock.now()
        if status.value != evaluation.status.value or "finished_at" in changes:
            evaluation = self._evaluations.update(evaluation_id, changes)
        return evaluation

    def abort(self, evaluation_id: str) -> Evaluation:
        """Abort every scheduled or running job of the evaluation."""
        for job in self.jobs(evaluation_id):
            if job.status.is_active:
                self._jobs.abort(job.id)
        self._events.record("evaluation", evaluation_id, EventType.ABORTED,
                            "evaluation aborted")
        return self.refresh_status(evaluation_id)

    def is_complete(self, evaluation_id: str) -> bool:
        """True when no job of the evaluation is scheduled or running."""
        return all(not job.status.is_active for job in self.jobs(evaluation_id))


def _derive_status(jobs: list[Job]) -> EvaluationStatus:
    if not jobs:
        return EvaluationStatus.CREATED
    statuses = {job.status for job in jobs}
    if statuses & {JobStatus.RUNNING}:
        return EvaluationStatus.RUNNING
    if statuses & {JobStatus.SCHEDULED}:
        # Some jobs still waiting; if others already ran, the evaluation is running.
        if statuses - {JobStatus.SCHEDULED}:
            return EvaluationStatus.RUNNING
        return EvaluationStatus.CREATED
    if statuses == {JobStatus.FINISHED}:
        return EvaluationStatus.FINISHED
    if JobStatus.FAILED in statuses:
        return EvaluationStatus.FAILED
    return EvaluationStatus.ABORTED
