"""Project management: the organisational unit grouping experiments."""

from __future__ import annotations

from repro.core.access import AccessControl
from repro.core.entities import Project, User
from repro.core.enums import EventType
from repro.core.events import EventService
from repro.core.repository import Repository
from repro.errors import StateError
from repro.storage.database import Database
from repro.storage.query import eq
from repro.util.clock import Clock
from repro.util.ids import IdGenerator
from repro.util.validation import ensure_non_empty


class ProjectService:
    """Creates projects, manages membership and archives them."""

    def __init__(self, database: Database, clock: Clock, ids: IdGenerator,
                 events: EventService):
        self._clock = clock
        self._ids = ids
        self._events = events
        self._projects = Repository(
            database, "projects", Project.from_row, lambda p: p.to_row(), "project"
        )

    # -- CRUD --------------------------------------------------------------------

    def create(self, name: str, owner: User, description: str = "") -> Project:
        """Create a project owned by ``owner``."""
        ensure_non_empty(name, "project name")
        project = Project(
            id=self._ids.next("project"),
            name=name,
            description=description,
            owner_id=owner.id,
            members=[owner.id],
            created_at=self._clock.now(),
        )
        self._projects.add(project)
        self._events.record("project", project.id, EventType.CREATED,
                            f"project {name!r} created by {owner.username}")
        return project

    def get(self, project_id: str) -> Project:
        return self._projects.get(project_id)

    def list(self, user: User | None = None, include_archived: bool = True) -> list[Project]:
        """All projects, optionally restricted to those ``user`` can view."""
        projects = self._projects.find(None, order_by="created_at")
        if not include_archived:
            projects = [project for project in projects if not project.archived]
        if user is None:
            return projects
        return [project for project in projects if AccessControl.can_view(user, project)]

    def update(self, project_id: str, name: str | None = None,
               description: str | None = None) -> Project:
        changes: dict = {}
        if name is not None:
            changes["name"] = ensure_non_empty(name, "project name")
        if description is not None:
            changes["description"] = description
        if not changes:
            return self.get(project_id)
        return self._projects.update(project_id, changes)

    def delete(self, project_id: str) -> None:
        self._projects.delete(project_id)

    # -- membership -----------------------------------------------------------------

    def add_member(self, project_id: str, user: User) -> Project:
        """Add ``user`` to the project's member list (idempotent)."""
        project = self.get(project_id)
        if user.id in project.members:
            return project
        members = project.members + [user.id]
        return self._projects.update(project_id, {"members": members})

    def remove_member(self, project_id: str, user: User) -> Project:
        project = self.get(project_id)
        if user.id == project.owner_id:
            raise StateError("the project owner cannot be removed from the project")
        members = [member for member in project.members if member != user.id]
        return self._projects.update(project_id, {"members": members})

    # -- archiving --------------------------------------------------------------------

    def archive(self, project_id: str) -> Project:
        """Archive a project: its settings and results become read-only."""
        project = self._projects.update(project_id, {"archived": True})
        self._events.record("project", project_id, EventType.ARCHIVED,
                            f"project {project.name!r} archived")
        return project

    def unarchive(self, project_id: str) -> Project:
        return self._projects.update(project_id, {"archived": False})

    def ensure_not_archived(self, project_id: str) -> Project:
        """Raise when the project is archived (mutation guard)."""
        project = self.get(project_id)
        if project.archived:
            raise StateError(f"project {project.name!r} is archived and read-only")
        return project

    def find_by_name(self, name: str) -> Project | None:
        return self._projects.find_one(eq("name", name))
