"""Experiments: the definition of an evaluation with all its parameters."""

from __future__ import annotations

from typing import Any

from repro.core.entities import Experiment
from repro.core.enums import EventType
from repro.core.events import EventService
from repro.core.parameters import (
    evaluation_space_size,
    expand_parameter_space,
    resolve_assignments,
)
from repro.core.repository import Repository
from repro.core.systems import SystemService
from repro.storage.database import Database
from repro.storage.query import eq
from repro.util.clock import Clock
from repro.util.ids import IdGenerator
from repro.util.validation import ensure_non_empty


class ExperimentService:
    """Creates experiments and expands their parameter space."""

    def __init__(self, database: Database, clock: Clock, ids: IdGenerator,
                 systems: SystemService, events: EventService):
        self._clock = clock
        self._ids = ids
        self._systems = systems
        self._events = events
        self._experiments = Repository(
            database, "experiments", Experiment.from_row, lambda e: e.to_row(), "experiment"
        )

    # -- CRUD --------------------------------------------------------------------------

    def create(self, project_id: str, system_id: str, name: str,
               parameters: dict[str, Any], description: str = "") -> Experiment:
        """Define an experiment against ``system_id`` within ``project_id``.

        The parameters are validated against the system's parameter
        definitions immediately so that configuration errors surface at
        definition time (as in the UI of Fig. 3a), not when jobs start.
        """
        ensure_non_empty(name, "experiment name")
        definitions = self._systems.parameter_definitions(system_id)
        resolve_assignments(definitions, parameters)
        experiment = Experiment(
            id=self._ids.next("experiment"),
            project_id=project_id,
            system_id=system_id,
            name=name,
            description=description,
            parameters=dict(parameters),
            created_at=self._clock.now(),
        )
        self._experiments.add(experiment)
        self._events.record("experiment", experiment.id, EventType.CREATED,
                            f"experiment {name!r} created")
        return experiment

    def get(self, experiment_id: str) -> Experiment:
        return self._experiments.get(experiment_id)

    def list(self, project_id: str | None = None, include_archived: bool = True) -> list[Experiment]:
        if project_id is None:
            experiments = self._experiments.find(None, order_by="created_at")
        else:
            experiments = self._experiments.find(eq("project_id", project_id),
                                                 order_by="created_at")
        if not include_archived:
            experiments = [e for e in experiments if not e.archived]
        return experiments

    def update_parameters(self, experiment_id: str, parameters: dict[str, Any]) -> Experiment:
        """Replace the experiment's parameters (validated against its system)."""
        experiment = self.get(experiment_id)
        definitions = self._systems.parameter_definitions(experiment.system_id)
        resolve_assignments(definitions, parameters)
        return self._experiments.update(experiment_id, {"parameters": dict(parameters)})

    def archive(self, experiment_id: str) -> Experiment:
        experiment = self._experiments.update(experiment_id, {"archived": True})
        self._events.record("experiment", experiment_id, EventType.ARCHIVED,
                            f"experiment {experiment.name!r} archived")
        return experiment

    def delete(self, experiment_id: str) -> None:
        self._experiments.delete(experiment_id)

    # -- parameter space -----------------------------------------------------------------

    def job_parameter_sets(self, experiment_id: str) -> list[dict[str, Any]]:
        """One parameter dictionary per job the experiment expands into."""
        experiment = self.get(experiment_id)
        definitions = self._systems.parameter_definitions(experiment.system_id)
        assignments = resolve_assignments(definitions, experiment.parameters)
        return expand_parameter_space(assignments)

    def space_size(self, experiment_id: str) -> int:
        """Number of jobs one evaluation of this experiment will create."""
        experiment = self.get(experiment_id)
        definitions = self._systems.parameter_definitions(experiment.system_id)
        assignments = resolve_assignments(definitions, experiment.parameters)
        return evaluation_space_size(assignments)
