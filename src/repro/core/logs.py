"""Job log storage.

During its run, a Chronos Agent "periodically sends the output of the logger
to Chronos Control" (Section 2.2); the log output is stored with the job and
shown on the job page (Fig. 3c).
"""

from __future__ import annotations

from repro.core.entities import LogEntry
from repro.core.repository import Repository
from repro.storage.database import Database
from repro.storage.query import eq
from repro.util.clock import Clock
from repro.util.ids import IdGenerator


class LogService:
    """Appends and retrieves the log output of jobs."""

    def __init__(self, database: Database, clock: Clock, ids: IdGenerator):
        self._clock = clock
        self._ids = ids
        self._logs = Repository(
            database, "job_logs", LogEntry.from_row, lambda e: e.to_row(), "log entry"
        )
        self._sequences: dict[str, int] = {}

    def append(self, job_id: str, content: str) -> LogEntry:
        """Store one chunk of log output for ``job_id``."""
        sequence = self._next_sequence(job_id)
        entry = LogEntry(
            id=self._ids.next("log"),
            job_id=job_id,
            sequence=sequence,
            content=content,
            timestamp=self._clock.now(),
        )
        return self._logs.add(entry)

    def entries(self, job_id: str) -> list[LogEntry]:
        """All log entries of a job in upload order."""
        return sorted(self._logs.find_by("job_id", job_id), key=lambda e: e.sequence)

    def full_text(self, job_id: str) -> str:
        """The concatenated log output of a job."""
        return "\n".join(entry.content for entry in self.entries(job_id))

    def _next_sequence(self, job_id: str) -> int:
        if job_id not in self._sequences:
            existing = self._logs.find_by("job_id", job_id)
            self._sequences[job_id] = max((e.sequence for e in existing), default=0)
        self._sequences[job_id] += 1
        return self._sequences[job_id]
