"""Relational schemas of the Chronos Control metadata store.

The installation script of the original Chronos creates the MySQL schema;
:func:`create_all_tables` plays that role against the embedded store.
"""

from __future__ import annotations

from repro.storage.database import Database
from repro.storage.schema import Column, ColumnType, TableSchema


def _table(name: str, columns: list[Column], indexes: list[str] | None = None,
           unique: list[str] | None = None) -> TableSchema:
    return TableSchema(
        name=name,
        columns=[Column("id", ColumnType.STRING, nullable=False)] + columns,
        primary_key="id",
        indexes=indexes or [],
        unique=unique or [],
    )


USERS = _table(
    "users",
    [
        Column("username", ColumnType.STRING, nullable=False),
        Column("password_hash", ColumnType.STRING, nullable=False),
        Column("role", ColumnType.STRING, nullable=False),
        Column("created_at", ColumnType.FLOAT, default=0.0),
    ],
    unique=["username"],
)

SESSIONS = _table(
    "sessions",
    [
        Column("user_id", ColumnType.STRING, nullable=False),
        Column("token", ColumnType.STRING, nullable=False),
        Column("created_at", ColumnType.FLOAT, default=0.0),
        Column("expires_at", ColumnType.FLOAT, default=0.0),
    ],
    unique=["token"],
    indexes=["user_id"],
)

PROJECTS = _table(
    "projects",
    [
        Column("name", ColumnType.STRING, nullable=False),
        Column("description", ColumnType.STRING, default=""),
        Column("owner_id", ColumnType.STRING, default=""),
        Column("members", ColumnType.JSON, default=[]),
        Column("archived", ColumnType.BOOLEAN, default=False),
        Column("created_at", ColumnType.FLOAT, default=0.0),
    ],
    indexes=["owner_id"],
)

SYSTEMS = _table(
    "systems",
    [
        Column("name", ColumnType.STRING, nullable=False),
        Column("description", ColumnType.STRING, default=""),
        Column("parameters", ColumnType.JSON, default=[]),
        Column("result_config", ColumnType.JSON, default={}),
        Column("owner_id", ColumnType.STRING, default=""),
        Column("created_at", ColumnType.FLOAT, default=0.0),
    ],
    unique=["name"],
)

DEPLOYMENTS = _table(
    "deployments",
    [
        Column("system_id", ColumnType.STRING, nullable=False),
        Column("name", ColumnType.STRING, nullable=False),
        Column("environment", ColumnType.JSON, default={}),
        Column("version", ColumnType.STRING, default=""),
        Column("active", ColumnType.BOOLEAN, default=True),
        Column("created_at", ColumnType.FLOAT, default=0.0),
    ],
    indexes=["system_id"],
)

EXPERIMENTS = _table(
    "experiments",
    [
        Column("project_id", ColumnType.STRING, nullable=False),
        Column("system_id", ColumnType.STRING, nullable=False),
        Column("name", ColumnType.STRING, nullable=False),
        Column("description", ColumnType.STRING, default=""),
        Column("parameters", ColumnType.JSON, default={}),
        Column("archived", ColumnType.BOOLEAN, default=False),
        Column("created_at", ColumnType.FLOAT, default=0.0),
    ],
    indexes=["project_id", "system_id"],
)

EVALUATIONS = _table(
    "evaluations",
    [
        Column("experiment_id", ColumnType.STRING, nullable=False),
        Column("name", ColumnType.STRING, nullable=False),
        Column("status", ColumnType.STRING, nullable=False),
        Column("deployment_ids", ColumnType.JSON, default=[]),
        Column("created_at", ColumnType.FLOAT, default=0.0),
        Column("finished_at", ColumnType.FLOAT),
    ],
    indexes=["experiment_id", "status"],
)

JOBS = _table(
    "jobs",
    [
        Column("evaluation_id", ColumnType.STRING, nullable=False),
        Column("system_id", ColumnType.STRING, nullable=False),
        Column("parameters", ColumnType.JSON, default={}),
        Column("status", ColumnType.STRING, nullable=False),
        Column("deployment_id", ColumnType.STRING),
        Column("progress", ColumnType.INTEGER, default=0),
        Column("attempts", ColumnType.INTEGER, default=0),
        Column("max_attempts", ColumnType.INTEGER, default=3),
        Column("error", ColumnType.STRING),
        Column("created_at", ColumnType.FLOAT, default=0.0),
        Column("started_at", ColumnType.FLOAT),
        Column("finished_at", ColumnType.FLOAT),
        Column("last_heartbeat", ColumnType.FLOAT),
    ],
    indexes=["evaluation_id", "status", "system_id", "deployment_id"],
)

RESULTS = _table(
    "results",
    [
        Column("job_id", ColumnType.STRING, nullable=False),
        Column("data", ColumnType.JSON, default={}),
        Column("metrics", ColumnType.JSON, default={}),
        Column("archive_path", ColumnType.STRING),
        Column("uploaded_at", ColumnType.FLOAT, default=0.0),
    ],
    indexes=["job_id"],
)

EVENTS = _table(
    "events",
    [
        Column("entity_type", ColumnType.STRING, nullable=False),
        Column("entity_id", ColumnType.STRING, nullable=False),
        Column("event_type", ColumnType.STRING, nullable=False),
        Column("message", ColumnType.STRING, default=""),
        Column("timestamp", ColumnType.FLOAT, default=0.0),
    ],
    indexes=["entity_id", "entity_type"],
)

JOB_LOGS = _table(
    "job_logs",
    [
        Column("job_id", ColumnType.STRING, nullable=False),
        Column("sequence", ColumnType.INTEGER, nullable=False),
        Column("content", ColumnType.STRING, default=""),
        Column("timestamp", ColumnType.FLOAT, default=0.0),
    ],
    indexes=["job_id"],
)

ALL_TABLES = [
    USERS,
    SESSIONS,
    PROJECTS,
    SYSTEMS,
    DEPLOYMENTS,
    EXPERIMENTS,
    EVALUATIONS,
    JOBS,
    RESULTS,
    EVENTS,
    JOB_LOGS,
]


def create_all_tables(database: Database) -> None:
    """Create every Chronos Control table on ``database`` (idempotent)."""
    for schema in ALL_TABLES:
        database.ensure_table(schema)
