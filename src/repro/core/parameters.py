"""Parameter types and evaluation-space expansion.

The Chronos web UI lets a system define the parameters an experiment must
provide.  The paper lists the supported parameter types: *Boolean*, *check
box*, *value* types as well as *intervals* and *ratios* (Section 2.2).

An experiment assigns each parameter either a fixed value or a set of values
to sweep; :func:`expand_parameter_space` computes the cartesian product of
all swept parameters, yielding one parameter dictionary per job -- exactly
how an evaluation is split into jobs in the paper's example (one job per
number of threads per storage engine).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.enums import ParameterKind
from repro.errors import ValidationError


@dataclass(frozen=True)
class ParameterDefinition:
    """Declaration of one parameter an SuE expects.

    Attributes:
        name: parameter name used in experiment configurations and job specs.
        kind: one of the UI parameter types.
        description: human-readable explanation shown in the UI.
        options: allowed options (checkbox), or none.
        default: default value when the experiment does not set the parameter.
        required: whether an experiment must assign the parameter.
    """

    name: str
    kind: ParameterKind
    description: str = ""
    options: tuple = ()
    default: Any = None
    required: bool = True

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind.value,
            "description": self.description,
            "options": list(self.options),
            "default": self.default,
            "required": self.required,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ParameterDefinition":
        return cls(
            name=data["name"],
            kind=ParameterKind(data["kind"]),
            description=data.get("description", ""),
            options=tuple(data.get("options", ())),
            default=data.get("default"),
            required=bool(data.get("required", True)),
        )


def boolean(name: str, description: str = "", default: bool = False,
            required: bool = True) -> ParameterDefinition:
    """Declare a boolean parameter."""
    return ParameterDefinition(name, ParameterKind.BOOLEAN, description,
                               default=default, required=required)


def checkbox(name: str, options: Iterable[Any], description: str = "",
             required: bool = True) -> ParameterDefinition:
    """Declare a multi-choice (check box) parameter."""
    return ParameterDefinition(name, ParameterKind.CHECKBOX, description,
                               options=tuple(options), required=required)


def value(name: str, description: str = "", default: Any = None,
          required: bool = True) -> ParameterDefinition:
    """Declare a plain value parameter."""
    return ParameterDefinition(name, ParameterKind.VALUE, description,
                               default=default, required=required)


def interval(name: str, description: str = "", required: bool = True) -> ParameterDefinition:
    """Declare an interval parameter (swept between start and stop by step)."""
    return ParameterDefinition(name, ParameterKind.INTERVAL, description,
                               required=required)


def ratio(name: str, description: str = "", required: bool = True) -> ParameterDefinition:
    """Declare a ratio parameter (e.g. read/write mix such as ``"95:5"``)."""
    return ParameterDefinition(name, ParameterKind.RATIO, description,
                               required=required)


def parse_interval(spec: dict[str, Any]) -> list[Any]:
    """Expand an interval specification into the list of values it covers.

    The specification is ``{"start": a, "stop": b, "step": s}`` with an
    optional ``"scale": "linear" | "geometric"``; geometric intervals multiply
    by ``step`` instead of adding it (useful for thread counts 1, 2, 4, 8...).
    """
    try:
        start, stop, step = spec["start"], spec["stop"], spec["step"]
    except (KeyError, TypeError):
        raise ValidationError(
            f"interval specification must contain start/stop/step, got {spec!r}"
        ) from None
    scale = spec.get("scale", "linear")
    if step <= 0 and scale == "linear":
        raise ValidationError("interval step must be positive")
    if scale == "geometric" and step <= 1:
        raise ValidationError("geometric interval step must be greater than 1")
    values: list[Any] = []
    current = start
    guard = 0
    while current <= stop:
        values.append(current)
        current = current + step if scale == "linear" else current * step
        guard += 1
        if guard > 100000:
            raise ValidationError("interval expansion exceeds 100000 values")
    if not values:
        raise ValidationError(f"interval {spec!r} expands to no values")
    return values


def parse_ratio(spec: str) -> tuple[float, ...]:
    """Parse a ratio string such as ``"95:5"`` into normalised fractions."""
    if not isinstance(spec, str) or ":" not in spec:
        raise ValidationError(f"ratio values must look like '95:5', got {spec!r}")
    try:
        parts = [float(part) for part in spec.split(":")]
    except ValueError:
        raise ValidationError(f"ratio parts must be numbers: {spec!r}") from None
    total = sum(parts)
    if total <= 0:
        raise ValidationError(f"ratio parts must sum to a positive number: {spec!r}")
    return tuple(part / total for part in parts)


@dataclass
class ParameterAssignment:
    """The values an experiment assigns to one parameter.

    ``values`` is the list of values to sweep.  A single-element list means
    the parameter is fixed for the whole evaluation.
    """

    definition: ParameterDefinition
    values: list[Any] = field(default_factory=list)


def resolve_assignments(
    definitions: Iterable[ParameterDefinition],
    experiment_parameters: dict[str, Any],
) -> list[ParameterAssignment]:
    """Validate experiment parameters against the system's definitions.

    Each experiment parameter is either a scalar (fixed value), a list of
    values to sweep, or -- for intervals -- a ``{"start", "stop", "step"}``
    specification.  Unknown parameters raise, missing required parameters
    without defaults raise, booleans may sweep ``[True, False]``, checkbox
    values must come from the declared options.
    """
    definitions = list(definitions)
    known = {definition.name for definition in definitions}
    unknown = set(experiment_parameters) - known
    if unknown:
        raise ValidationError(f"unknown parameter(s) {sorted(unknown)!r}")

    assignments: list[ParameterAssignment] = []
    for definition in definitions:
        if definition.name in experiment_parameters:
            raw = experiment_parameters[definition.name]
        elif definition.default is not None or not definition.required:
            raw = definition.default
        else:
            raise ValidationError(f"missing required parameter {definition.name!r}")
        assignments.append(
            ParameterAssignment(definition, _expand_values(definition, raw))
        )
    return assignments


def _expand_values(definition: ParameterDefinition, raw: Any) -> list[Any]:
    kind = definition.kind
    if kind is ParameterKind.INTERVAL:
        if isinstance(raw, dict):
            return parse_interval(raw)
        if isinstance(raw, list):
            return list(raw)
        return [raw]
    if kind is ParameterKind.CHECKBOX:
        selected = raw if isinstance(raw, list) else [raw]
        invalid = [item for item in selected if item not in definition.options]
        if invalid:
            raise ValidationError(
                f"value(s) {invalid!r} are not valid options for {definition.name!r}; "
                f"allowed: {list(definition.options)!r}"
            )
        return list(selected)
    if kind is ParameterKind.BOOLEAN:
        values = raw if isinstance(raw, list) else [raw]
        for item in values:
            if not isinstance(item, bool):
                raise ValidationError(
                    f"boolean parameter {definition.name!r} got non-boolean {item!r}"
                )
        return list(values)
    if kind is ParameterKind.RATIO:
        values = raw if isinstance(raw, list) else [raw]
        for item in values:
            parse_ratio(item)
        return list(values)
    # VALUE: scalar or explicit sweep list.
    return list(raw) if isinstance(raw, list) else [raw]


def expand_parameter_space(assignments: list[ParameterAssignment]) -> list[dict[str, Any]]:
    """Cartesian product of all assignments: one dictionary per job.

    The order is deterministic: parameters vary slowest-first in the order of
    their definitions, matching how the UI lists jobs of an evaluation.
    """
    if not assignments:
        return [{}]
    names = [assignment.definition.name for assignment in assignments]
    value_lists = [assignment.values for assignment in assignments]
    combinations = itertools.product(*value_lists)
    return [dict(zip(names, combination)) for combination in combinations]


def evaluation_space_size(assignments: list[ParameterAssignment]) -> int:
    """Number of jobs the expansion will generate."""
    size = 1
    for assignment in assignments:
        size *= max(1, len(assignment.values))
    return size
