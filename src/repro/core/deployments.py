"""Deployments: instances of an SuE in specific environments.

Deployments serve two purposes (Section 2.1): evaluating a system in
different environments/versions simultaneously, and parallelising an
evaluation over multiple identical deployments.
"""

from __future__ import annotations

from typing import Any

from repro.core.entities import Deployment
from repro.core.repository import Repository
from repro.storage.database import Database
from repro.storage.query import and_, eq
from repro.util.clock import Clock
from repro.util.ids import IdGenerator
from repro.util.validation import ensure_non_empty


class DeploymentService:
    """Registers and queries deployments of Systems under Evaluation."""

    def __init__(self, database: Database, clock: Clock, ids: IdGenerator):
        self._clock = clock
        self._ids = ids
        self._deployments = Repository(
            database, "deployments", Deployment.from_row, lambda d: d.to_row(), "deployment"
        )

    def register(self, system_id: str, name: str, environment: dict[str, Any] | None = None,
                 version: str = "") -> Deployment:
        """Register a deployment of ``system_id`` called ``name``."""
        ensure_non_empty(name, "deployment name")
        deployment = Deployment(
            id=self._ids.next("deployment"),
            system_id=system_id,
            name=name,
            environment=dict(environment or {}),
            version=version,
            active=True,
            created_at=self._clock.now(),
        )
        return self._deployments.add(deployment)

    def get(self, deployment_id: str) -> Deployment:
        return self._deployments.get(deployment_id)

    def list(self, system_id: str | None = None, active_only: bool = False) -> list[Deployment]:
        """Deployments, optionally filtered by system and active flag."""
        if system_id is None:
            deployments = self._deployments.find(None, order_by="created_at")
        else:
            deployments = self._deployments.find(eq("system_id", system_id),
                                                 order_by="created_at")
        if active_only:
            deployments = [d for d in deployments if d.active]
        return deployments

    def active_for_system(self, system_id: str) -> list[Deployment]:
        return self._deployments.find(
            and_(eq("system_id", system_id), eq("active", True))
        )

    def deactivate(self, deployment_id: str) -> Deployment:
        """Mark a deployment inactive: it no longer receives jobs."""
        return self._deployments.update(deployment_id, {"active": False})

    def activate(self, deployment_id: str) -> Deployment:
        return self._deployments.update(deployment_id, {"active": True})

    def update_environment(self, deployment_id: str, environment: dict[str, Any]) -> Deployment:
        return self._deployments.update(deployment_id, {"environment": environment})

    def delete(self, deployment_id: str) -> None:
        self._deployments.delete(deployment_id)
