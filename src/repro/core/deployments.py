"""Deployments: instances of an SuE in specific environments.

Deployments serve two purposes (Section 2.1): evaluating a system in
different environments/versions simultaneously, and parallelising an
evaluation over multiple identical deployments.

A deployment may declare its *topology* -- the deployment shape of the
document store it runs (shards, replicas, quorum configuration; see
:mod:`repro.docstore.topology`).  The control plane stores it as plain data
under ``environment["topology"]``, validated at registration time, so an
evaluation can compare standalone, sharded and replicated deployments of the
same SuE without encoding the shape into every job's parameters.
"""

from __future__ import annotations

from typing import Any

from repro.core.entities import Deployment
from repro.core.repository import Repository
from repro.errors import ValidationError
from repro.storage.database import Database
from repro.storage.query import and_, eq
from repro.util.clock import Clock
from repro.util.ids import IdGenerator
from repro.util.validation import ensure_non_empty


class DeploymentService:
    """Registers and queries deployments of Systems under Evaluation."""

    def __init__(self, database: Database, clock: Clock, ids: IdGenerator):
        self._clock = clock
        self._ids = ids
        self._deployments = Repository(
            database, "deployments", Deployment.from_row, lambda d: d.to_row(), "deployment"
        )

    def register(self, system_id: str, name: str, environment: dict[str, Any] | None = None,
                 version: str = "", topology: Any = None) -> Deployment:
        """Register a deployment of ``system_id`` called ``name``.

        ``topology`` (a :class:`~repro.docstore.topology.TopologySpec` or its
        dictionary form) declares the deployment shape; it is validated and
        stored under ``environment["topology"]``.  A topology already present
        in ``environment`` is validated the same way.  A spec object declares
        *every* field; a dictionary pins only the fields it names, leaving
        the rest to the evaluation's job parameters (so ``{"shards": 4}``
        declares a four-shard cluster without freezing the storage engine).
        """
        ensure_non_empty(name, "deployment name")
        deployment = Deployment(
            id=self._ids.next("deployment"),
            system_id=system_id,
            name=name,
            environment=_with_validated_topology(environment, topology),
            version=version,
            active=True,
            created_at=self._clock.now(),
        )
        return self._deployments.add(deployment)

    def get(self, deployment_id: str) -> Deployment:
        return self._deployments.get(deployment_id)

    def list(self, system_id: str | None = None, active_only: bool = False) -> list[Deployment]:
        """Deployments, optionally filtered by system and active flag."""
        if system_id is None:
            deployments = self._deployments.find(None, order_by="created_at")
        else:
            deployments = self._deployments.find(eq("system_id", system_id),
                                                 order_by="created_at")
        if active_only:
            deployments = [d for d in deployments if d.active]
        return deployments

    def active_for_system(self, system_id: str) -> list[Deployment]:
        return self._deployments.find(
            and_(eq("system_id", system_id), eq("active", True))
        )

    def deactivate(self, deployment_id: str) -> Deployment:
        """Mark a deployment inactive: it no longer receives jobs."""
        return self._deployments.update(deployment_id, {"active": False})

    def activate(self, deployment_id: str) -> Deployment:
        return self._deployments.update(deployment_id, {"active": True})

    def update_environment(self, deployment_id: str, environment: dict[str, Any]) -> Deployment:
        return self._deployments.update(
            deployment_id, {"environment": _with_validated_topology(environment, None)}
        )

    def delete(self, deployment_id: str) -> None:
        self._deployments.delete(deployment_id)


def _with_validated_topology(environment: dict[str, Any] | None,
                             topology: Any) -> dict[str, Any]:
    """Merge a declared topology into the environment, normalised to a dict.

    Declaring a topology both ways (the ``topology`` argument *and*
    ``environment["topology"]``) is rejected rather than silently resolved:
    evaluating the wrong cluster shape must fail loudly.

    The control plane stays system-agnostic: topologies are stored as plain
    data, and the docstore layer (which owns the schema) is only imported
    when one is actually declared.
    """
    environment = dict(environment or {})
    if topology is not None and "topology" in environment:
        raise ValidationError(
            "deployment topology declared both in the environment and via "
            "the topology argument; declare it once"
        )
    declared = topology if topology is not None else environment.get("topology")
    if declared is None:
        return environment
    from repro.docstore.topology import TopologySpec

    if isinstance(declared, TopologySpec):
        # A spec object is a complete shape: every field is declared.
        environment["topology"] = declared.as_dict()
    else:
        # A dictionary declaration stays sparse: validate it but store
        # (normalised) only the fields it names, so the declaration pins
        # exactly what the operator wrote -- serializing materialized
        # defaults would silently freeze fields like the storage engine
        # against job-parameter sweeps.
        environment["topology"] = TopologySpec.normalise_partial(declared)
    return environment
