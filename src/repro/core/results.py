"""Result storage and archiving.

"A result belongs to a job and consists of a JSON and a zip file.  Every data
item which is required for the analysis within Chronos Control is stored in
the JSON file.  Additional results can be stored in the zip file."
(Section 2.1).  Results are stored in the metadata database (JSON part) and,
when an archive directory is configured, the zip file is written next to it,
mirroring the HTTP/FTP upload targets of the original.
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path
from typing import Any

from repro.core.entities import Result
from repro.core.enums import EventType
from repro.core.events import EventService
from repro.core.repository import Repository
from repro.errors import NotFoundError, ValidationError
from repro.storage.database import Database
from repro.storage.query import eq
from repro.util.clock import Clock
from repro.util.ids import IdGenerator


class ResultService:
    """Stores job results (JSON + optional zip archive) and retrieves them."""

    def __init__(self, database: Database, clock: Clock, ids: IdGenerator,
                 events: EventService, archive_directory: str | Path | None = None):
        self._clock = clock
        self._ids = ids
        self._events = events
        self._archive_directory = Path(archive_directory) if archive_directory else None
        self._results = Repository(
            database, "results", Result.from_row, lambda r: r.to_row(), "result"
        )

    # -- storing ---------------------------------------------------------------------

    def store(self, job_id: str, data: dict[str, Any],
              metrics: dict[str, float] | None = None,
              extra_files: dict[str, str] | None = None) -> Result:
        """Store the result of ``job_id``.

        Args:
            data: the JSON document with everything Chronos needs for analysis.
            metrics: flat numeric metrics extracted for quick aggregation.
            extra_files: optional mapping of file name to text content, packed
                into the result's zip archive for analysis outside of Chronos.
        """
        if not isinstance(data, dict):
            raise ValidationError("result data must be a JSON object")
        archive_path = None
        if extra_files:
            archive_path = self._write_archive(job_id, data, extra_files)
        result = Result(
            id=self._ids.next("result"),
            job_id=job_id,
            data=dict(data),
            metrics=dict(metrics or {}),
            archive_path=archive_path,
            uploaded_at=self._clock.now(),
        )
        self._results.add(result)
        self._events.record("job", job_id, EventType.RESULT_UPLOADED,
                            f"result {result.id} uploaded")
        return result

    # -- retrieval ----------------------------------------------------------------------

    def get(self, result_id: str) -> Result:
        return self._results.get(result_id)

    def for_job(self, job_id: str) -> Result:
        """The (latest) result of ``job_id``."""
        results = self._results.find(eq("job_id", job_id), order_by="uploaded_at")
        if not results:
            raise NotFoundError(f"job {job_id!r} has no result")
        return results[-1]

    def for_job_or_none(self, job_id: str) -> Result | None:
        results = self._results.find(eq("job_id", job_id), order_by="uploaded_at")
        return results[-1] if results else None

    def for_jobs(self, job_ids: list[str]) -> list[Result]:
        """Latest result per job, skipping jobs without results."""
        found = []
        for job_id in job_ids:
            result = self.for_job_or_none(job_id)
            if result is not None:
                found.append(result)
        return found

    def list(self) -> list[Result]:
        return self._results.find(None, order_by="uploaded_at")

    # -- archive handling ----------------------------------------------------------------

    def read_archive(self, result: Result) -> dict[str, str]:
        """Return the files stored in the result's zip archive."""
        if result.archive_path is None:
            return {}
        path = Path(result.archive_path)
        if not path.exists():
            raise NotFoundError(f"archive {path} is missing")
        files: dict[str, str] = {}
        with zipfile.ZipFile(path, "r") as archive:
            for name in archive.namelist():
                files[name] = archive.read(name).decode("utf-8")
        return files

    def _write_archive(self, job_id: str, data: dict[str, Any],
                       extra_files: dict[str, str]) -> str | None:
        if self._archive_directory is None:
            # Without an archive directory the zip is still produced in memory
            # so its contents are validated, but nothing is persisted.
            buffer = io.BytesIO()
            with zipfile.ZipFile(buffer, "w") as archive:
                for name, content in extra_files.items():
                    archive.writestr(name, content)
            return None
        self._archive_directory.mkdir(parents=True, exist_ok=True)
        path = self._archive_directory / f"{job_id}-result.zip"
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
            archive.writestr("result.json", json.dumps(data, sort_keys=True, indent=2))
            for name, content in extra_files.items():
                archive.writestr(name, content)
        return str(path)
