"""Job scheduling: handing work to deployments and agents.

The scheduler owns the dispatch decision: which scheduled job should run next
on which deployment.  Jobs of the same evaluation can be parallelised when
there are multiple identical deployments of the SuE (Section 2.1).  Agents
pull work (``claim_next_job``) rather than being pushed to, matching the REST
polling model of the original Chronos Agents.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.deployments import DeploymentService
from repro.core.entities import Deployment, Job
from repro.core.enums import JobStatus
from repro.core.evaluations import EvaluationService
from repro.core.jobs import JobService
from repro.errors import NotFoundError, SchedulerError


@dataclass
class ScheduleSnapshot:
    """A point-in-time view of the scheduler's queues (for the UI/monitoring)."""

    scheduled: int
    running: int
    finished: int
    failed: int
    aborted: int
    busy_deployments: list[str]

    @property
    def outstanding(self) -> int:
        return self.scheduled + self.running


class Scheduler:
    """Assigns scheduled jobs to active deployments."""

    def __init__(self, jobs: JobService, deployments: DeploymentService,
                 evaluations: EvaluationService):
        self._jobs = jobs
        self._deployments = deployments
        self._evaluations = evaluations
        self._lock = threading.Lock()
        self._busy: dict[str, str] = {}  # deployment_id -> job_id

    # -- agent-facing dispatch ----------------------------------------------------------

    def claim_next_job(self, system_id: str, deployment_id: str) -> Job | None:
        """Atomically claim the next scheduled job for ``deployment_id``.

        Returns ``None`` when there is no work or the deployment is already
        busy.  The claimed job transitions to *running*.
        """
        deployment = self._require_active_deployment(system_id, deployment_id)
        with self._lock:
            if deployment.id in self._busy:
                return None
            job = self._next_job_for(system_id, deployment.id)
            if job is None:
                return None
            started = self._jobs.start(job.id, deployment.id)
            self._busy[deployment.id] = started.id
            self._evaluations.refresh_status(started.evaluation_id)
            return started

    def release_deployment(self, deployment_id: str) -> None:
        """Mark ``deployment_id`` idle again (called on job completion/failure)."""
        with self._lock:
            self._busy.pop(deployment_id, None)

    def complete_job(self, job_id: str) -> Job:
        """Finish a job and free its deployment."""
        job = self._jobs.finish(job_id)
        if job.deployment_id:
            self.release_deployment(job.deployment_id)
        self._evaluations.refresh_status(job.evaluation_id)
        return job

    def fail_job(self, job_id: str, error: str) -> Job:
        """Record a job failure and free its deployment (retry policy applies elsewhere)."""
        job = self._jobs.get(job_id)
        if job.deployment_id:
            self.release_deployment(job.deployment_id)
        failed = self._jobs.fail(job_id, error)
        self._evaluations.refresh_status(failed.evaluation_id)
        return failed

    # -- queries ----------------------------------------------------------------------------

    def snapshot(self) -> ScheduleSnapshot:
        """Counts of jobs per state plus the busy deployments."""
        jobs = self._jobs.list()
        counts = {status: 0 for status in JobStatus}
        for job in jobs:
            counts[job.status] += 1
        with self._lock:
            busy = sorted(self._busy)
        return ScheduleSnapshot(
            scheduled=counts[JobStatus.SCHEDULED],
            running=counts[JobStatus.RUNNING],
            finished=counts[JobStatus.FINISHED],
            failed=counts[JobStatus.FAILED],
            aborted=counts[JobStatus.ABORTED],
            busy_deployments=busy,
        )

    def idle_deployments(self, system_id: str) -> list[Deployment]:
        """Active deployments of ``system_id`` that are not running a job."""
        with self._lock:
            busy = set(self._busy)
        return [
            deployment
            for deployment in self._deployments.active_for_system(system_id)
            if deployment.id not in busy
        ]

    # -- internals ------------------------------------------------------------------------------

    def _next_job_for(self, system_id: str, deployment_id: str) -> Job | None:
        return self._jobs.next_scheduled(system_id, deployment_id)

    def _require_active_deployment(self, system_id: str, deployment_id: str) -> Deployment:
        try:
            deployment = self._deployments.get(deployment_id)
        except NotFoundError:
            raise SchedulerError(f"deployment {deployment_id!r} is not registered") from None
        if deployment.system_id != system_id:
            raise SchedulerError(
                f"deployment {deployment_id!r} belongs to system "
                f"{deployment.system_id!r}, not {system_id!r}"
            )
        if not deployment.active:
            raise SchedulerError(f"deployment {deployment_id!r} is not active")
        return deployment
