"""End-to-end helpers that wire up the paper's demonstration scenario.

These functions reproduce the two workflows of Section 3 programmatically:
registering an SuE in Chronos Control and running a complete evaluation (the
comparative analysis of the wiredTiger and mmapv1 storage engines).  They are
shared by the examples, the integration tests and the benchmark harnesses so
that every consumer runs exactly the same workflow the paper demonstrates.

:func:`run_topology_comparison` is the topology-layer counterpart: one
project, one SuE, one experiment -- and one *deployment per topology*, each
carrying its :class:`~repro.docstore.topology.TopologySpec` in
``Deployment.environment``.  Every shape (standalone server, replica set,
sharded cluster, replicated cluster) is evaluated end to end through the
control plane: registered, scheduled, executed by the shared
:class:`~repro.agents.mongo_agent.MongoAgent` and uploaded as results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.agent.fleet import AgentFleet, FleetReport
from repro.agents.mongo_agent import FACET_CLUSTER, FACET_REPLICATION, MongoAgent
from repro.agents.mongodb_agent import MongoDbAgent, register_mongodb_system
from repro.core.control import ChronosControl
from repro.core.entities import Evaluation, Experiment, Project, System
from repro.docstore.topology import TopologySpec
from repro.errors import ValidationError
from repro.util.clock import SimulatedClock


@dataclass
class DemoSetup:
    """Everything created for one demo evaluation."""

    control: ChronosControl
    system: System
    project: Project
    experiment: Experiment
    evaluation: Evaluation
    deployment_ids: list[str]
    report: FleetReport | None = None
    results: list[dict[str, Any]] = field(default_factory=list)


DEFAULT_DEMO_PARAMETERS: dict[str, Any] = {
    "storage_engine": ["wiredtiger", "mmapv1"],
    "threads": {"start": 1, "stop": 16, "step": 2, "scale": "geometric"},
    "record_count": 300,
    "operation_count": 600,
    "query_mix": "50:50",
    "distribution": "zipfian",
}


def build_demo_control() -> ChronosControl:
    """A Chronos Control instance on a simulated clock (fast and deterministic)."""
    return ChronosControl(clock=SimulatedClock(), create_admin=True)


def prepare_demo(
    control: ChronosControl | None = None,
    parameters: dict[str, Any] | None = None,
    deployments_per_engine_sweep: int = 1,
    project_name: str = "MongoDB storage engines",
    experiment_name: str = "wiredTiger vs mmapv1",
) -> DemoSetup:
    """Create project, system, deployments, experiment and evaluation (Fig. 3a/3b)."""
    control = control or build_demo_control()
    admin = control.users.get_by_username("admin")

    system = control.systems.get_by_name("mongodb") or register_mongodb_system(
        control, owner_id=admin.id
    )
    deployment_ids = [
        control.deployments.register(
            system.id,
            name=f"mongodb-deployment-{index + 1}",
            environment={"host": f"node{index + 1}", "memory_gb": 16},
            version="4.0-sim",
        ).id
        for index in range(max(1, deployments_per_engine_sweep))
    ]
    project = control.projects.create(project_name, admin,
                                      description="Demonstration of Chronos at work")
    experiment = control.experiments.create(
        project_id=project.id,
        system_id=system.id,
        name=experiment_name,
        parameters=parameters or dict(DEFAULT_DEMO_PARAMETERS),
        description="Comparative performance analysis of two MongoDB storage engines",
    )
    evaluation, _jobs = control.evaluations.create(
        experiment.id, name=f"{experiment_name} evaluation", deployment_ids=deployment_ids
    )
    return DemoSetup(
        control=control,
        system=system,
        project=project,
        experiment=experiment,
        evaluation=evaluation,
        deployment_ids=deployment_ids,
    )


def run_demo(setup: DemoSetup, parallel: bool = False) -> DemoSetup:
    """Execute the demo evaluation with one MongoDB agent per deployment (Fig. 3c/3d)."""
    fleet = AgentFleet(
        control=setup.control,
        system_id=setup.system.id,
        deployment_ids=setup.deployment_ids,
        agent_factory=MongoDbAgent,
        clock=setup.control.clock,
    )
    setup.report = fleet.drive_evaluation(setup.evaluation.id, parallel=parallel)
    jobs = setup.control.evaluations.jobs(setup.evaluation.id)
    results = setup.control.results.for_jobs([job.id for job in jobs])
    setup.results = [result.data for result in results]
    return setup


def run_full_demo(parameters: dict[str, Any] | None = None,
                  deployments: int = 1, parallel: bool = False) -> DemoSetup:
    """Convenience: prepare and run the complete demo in one call."""
    setup = prepare_demo(parameters=parameters,
                         deployments_per_engine_sweep=deployments)
    return run_demo(setup, parallel=parallel)


# -- topology comparison through the control plane -----------------------------------

#: The deployment shapes the topology evaluation compares by default.  The
#: sharded shape uses range placement so the balancer genuinely migrates
#: chunks (hash placement balances by construction), exercising the
#: migration cost accounting.
TOPOLOGY_COMPARISON: dict[str, TopologySpec] = {
    "standalone": TopologySpec(),
    "replica-set": TopologySpec(replicas=3, write_concern="majority"),
    "sharded": TopologySpec(shards=4, shard_strategy="range"),
    "replicated-cluster": TopologySpec(shards=2, replicas=3,
                                       write_concern="majority"),
}

DEFAULT_TOPOLOGY_PARAMETERS: dict[str, Any] = {
    "storage_engine": "mmapv1",
    "threads": 8,
    "record_count": 200,
    "operation_count": 400,
    "query_mix": "50:50",
    "distribution": "zipfian",
    "seed": 42,
}


@dataclass
class TopologyComparisonSetup:
    """Everything created for one topology-comparison evaluation."""

    control: ChronosControl
    system: System
    project: Project
    experiment: Experiment
    deployment_ids: dict[str, str] = field(default_factory=dict)
    evaluations: dict[str, Evaluation] = field(default_factory=dict)
    reports: dict[str, FleetReport] = field(default_factory=dict)
    results: dict[str, list[dict[str, Any]]] = field(default_factory=dict)


def run_topology_comparison(
    control: ChronosControl | None = None,
    topologies: Mapping[str, TopologySpec] | None = None,
    parameters: dict[str, Any] | None = None,
    project_name: str = "Deployment topologies",
    experiment_name: str = "standalone vs sharded vs replicated",
) -> TopologyComparisonSetup:
    """Evaluate one workload across deployment topologies, end to end.

    For every named :class:`TopologySpec` this registers a deployment
    carrying the spec in its environment, creates one evaluation of the
    shared experiment pinned to that deployment, and drives it with the
    topology-agnostic :class:`MongoAgent` -- which builds the deployment the
    spec declares through :func:`~repro.docstore.topology.build_topology`.
    The identical parameter point (same seed) makes the per-topology results
    directly comparable.
    """
    control = control or build_demo_control()
    admin = control.users.get_by_username("admin")
    parameters = dict(parameters or DEFAULT_TOPOLOGY_PARAMETERS)
    # The deployment record is the source of truth for the topology (a
    # declared shape -- engine included -- outranks job parameters), so the
    # declared engine must be the one the jobs evaluate.  A storage_engine
    # sweep is contradictory here: one deployment runs one engine.
    engine = parameters.get("storage_engine", "wiredtiger")
    if not isinstance(engine, str):
        raise ValidationError(
            "storage_engine cannot be swept across declared topologies; "
            "run one comparison per engine"
        )
    topologies = {
        name: replace(topology, storage_engine=engine)
        for name, topology in dict(topologies or TOPOLOGY_COMPARISON).items()
    }

    system = control.systems.get_by_name("mongodb") or register_mongodb_system(
        control, owner_id=admin.id
    )
    project = control.projects.create(
        project_name, admin,
        description="One workload, every deployment topology")
    experiment = control.experiments.create(
        project_id=project.id,
        system_id=system.id,
        name=experiment_name,
        parameters=parameters,
        description="Comparative evaluation across deployment topologies",
    )
    setup = TopologyComparisonSetup(control=control, system=system,
                                    project=project, experiment=experiment)
    for name, topology in topologies.items():
        deployment = control.deployments.register(
            system.id,
            name=f"mongodb-{name}",
            environment={"host": name},
            version="4.0-sim",
            topology=topology,
        )
        evaluation, __ = control.evaluations.create(
            experiment.id, name=f"{name} run", deployment_ids=[deployment.id]
        )
        fleet = AgentFleet(
            control=control,
            system_id=system.id,
            deployment_ids=[deployment.id],
            agent_factory=lambda: MongoAgent(
                result_facets=(FACET_CLUSTER, FACET_REPLICATION)),
            clock=control.clock,
        )
        report = fleet.drive_evaluation(evaluation.id)
        jobs = control.evaluations.jobs(evaluation.id)
        results = control.results.for_jobs([job.id for job in jobs])
        setup.deployment_ids[name] = deployment.id
        setup.evaluations[name] = evaluation
        setup.reports[name] = report
        setup.results[name] = [result.data for result in results]
    return setup


def topology_comparison_rows(
        setup: TopologyComparisonSetup) -> dict[str, dict[str, Any]]:
    """Flatten a comparison into per-topology rows (CLI tables, E12 checks).

    Metrics are means over every uploaded result of the topology's
    evaluation -- exact for the single-point experiments the comparison
    runs by default, honest (and counted in ``jobs_finished``) when an
    experiment expands to a sweep.  A topology whose evaluation uploaded no
    result yields a zeroed row with its ``jobs_failed`` count, so consumers
    can report the failure instead of crashing on it.
    """
    from repro.util.stats import mean

    rows: dict[str, dict[str, Any]] = {}
    for name, deployment_id in setup.deployment_ids.items():
        declared = setup.control.deployments.get(deployment_id).topology_spec()
        report = setup.reports[name]
        results = setup.results[name]
        statistics = [result.get("engine_statistics", {}) for result in results]

        def averaged(field_name: str, source: list[dict[str, Any]]) -> float:
            return mean(entry.get(field_name, 0) or 0 for entry in source)

        rows[name] = {
            "declared_kind": declared.kind if declared else None,
            "reported_kind": results[0].get("topology") if results else None,
            "jobs_finished": report.jobs_finished,
            "jobs_failed": report.jobs_failed,
            "throughput": averaged("throughput_ops_per_sec", results),
            "latency_avg_ms": averaged("latency_avg_ms", results),
            "latency_p95_ms": averaged("latency_p95_ms", results),
            "documents": averaged("documents", statistics),
            "storage_bytes": averaged("storage_bytes", statistics),
            "migrations": averaged("migrations", statistics),
            "migration_seconds": averaged("migration_seconds", statistics),
            "failovers": averaged("failovers", results),
        }
    return rows
