"""End-to-end helpers that wire up the paper's demonstration scenario.

These functions reproduce the two workflows of Section 3 programmatically:
registering an SuE in Chronos Control and running a complete evaluation (the
comparative analysis of the wiredTiger and mmapv1 storage engines).  They are
shared by the examples, the integration tests and the benchmark harnesses so
that every consumer runs exactly the same workflow the paper demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.agent.fleet import AgentFleet, FleetReport
from repro.agents.mongodb_agent import MongoDbAgent, register_mongodb_system
from repro.core.control import ChronosControl
from repro.core.entities import Evaluation, Experiment, Project, System
from repro.util.clock import SimulatedClock


@dataclass
class DemoSetup:
    """Everything created for one demo evaluation."""

    control: ChronosControl
    system: System
    project: Project
    experiment: Experiment
    evaluation: Evaluation
    deployment_ids: list[str]
    report: FleetReport | None = None
    results: list[dict[str, Any]] = field(default_factory=list)


DEFAULT_DEMO_PARAMETERS: dict[str, Any] = {
    "storage_engine": ["wiredtiger", "mmapv1"],
    "threads": {"start": 1, "stop": 16, "step": 2, "scale": "geometric"},
    "record_count": 300,
    "operation_count": 600,
    "query_mix": "50:50",
    "distribution": "zipfian",
}


def build_demo_control() -> ChronosControl:
    """A Chronos Control instance on a simulated clock (fast and deterministic)."""
    return ChronosControl(clock=SimulatedClock(), create_admin=True)


def prepare_demo(
    control: ChronosControl | None = None,
    parameters: dict[str, Any] | None = None,
    deployments_per_engine_sweep: int = 1,
    project_name: str = "MongoDB storage engines",
    experiment_name: str = "wiredTiger vs mmapv1",
) -> DemoSetup:
    """Create project, system, deployments, experiment and evaluation (Fig. 3a/3b)."""
    control = control or build_demo_control()
    admin = control.users.get_by_username("admin")

    system = control.systems.get_by_name("mongodb") or register_mongodb_system(
        control, owner_id=admin.id
    )
    deployment_ids = [
        control.deployments.register(
            system.id,
            name=f"mongodb-deployment-{index + 1}",
            environment={"host": f"node{index + 1}", "memory_gb": 16},
            version="4.0-sim",
        ).id
        for index in range(max(1, deployments_per_engine_sweep))
    ]
    project = control.projects.create(project_name, admin,
                                      description="Demonstration of Chronos at work")
    experiment = control.experiments.create(
        project_id=project.id,
        system_id=system.id,
        name=experiment_name,
        parameters=parameters or dict(DEFAULT_DEMO_PARAMETERS),
        description="Comparative performance analysis of two MongoDB storage engines",
    )
    evaluation, _jobs = control.evaluations.create(
        experiment.id, name=f"{experiment_name} evaluation", deployment_ids=deployment_ids
    )
    return DemoSetup(
        control=control,
        system=system,
        project=project,
        experiment=experiment,
        evaluation=evaluation,
        deployment_ids=deployment_ids,
    )


def run_demo(setup: DemoSetup, parallel: bool = False) -> DemoSetup:
    """Execute the demo evaluation with one MongoDB agent per deployment (Fig. 3c/3d)."""
    fleet = AgentFleet(
        control=setup.control,
        system_id=setup.system.id,
        deployment_ids=setup.deployment_ids,
        agent_factory=MongoDbAgent,
        clock=setup.control.clock,
    )
    setup.report = fleet.drive_evaluation(setup.evaluation.id, parallel=parallel)
    jobs = setup.control.evaluations.jobs(setup.evaluation.id)
    results = setup.control.results.for_jobs([job.id for job in jobs])
    setup.results = [result.data for result in results]
    return setup


def run_full_demo(parameters: dict[str, Any] | None = None,
                  deployments: int = 1, parallel: bool = False) -> DemoSetup:
    """Convenience: prepare and run the complete demo in one call."""
    setup = prepare_demo(parameters=parameters,
                         deployments_per_engine_sweep=deployments)
    return run_demo(setup, parallel=parallel)
