"""The wiredTiger-like storage engine.

Mechanisms modelled (the ones that drive the demo's comparison):

* documents live in a B-tree keyed by record id; lookups pay per node visited,
* blocks are compressed before hitting "disk" (smaller I/O, extra CPU),
* a byte-budgeted LRU cache serves hot documents without any I/O cost,
* writes are journaled (sequential write cost proportional to compressed size),
* concurrency control is at *document* granularity, so concurrent writers to
  different documents barely serialise.

Hot-path properties (the copy-on-write protocol of
:class:`~repro.docstore.engine_base.StorageEngine`): the tree stores
``(document, size)`` records, so reads hand back the stored object without a
copy and reuse the size computed once at write time -- no per-read
``document_size`` walk, no ``copy.deepcopy`` anywhere in the engine.

**Concurrency (PR 6).**  Point reads and scans are *latch-free*: the B-tree
is copy-on-write (readers traverse an atomic root snapshot) and documents
are frozen, so a reader can never observe a torn tree or a torn document.
Mutations take a tiny internal latch (``_mutate``) that covers only the tree
update and the disk-byte counter -- it sits at the bottom of the lock
hierarchy (collection -> stripe -> index latch -> engine latch) and is
released before the operation's service time is charged, so concurrent
writers to different documents overlap everything except the in-memory tree
update itself.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from repro.docstore.btree import BTree
from repro.docstore.cache import LruCache
from repro.docstore.cost import ConcurrencyProfile, CostParameters, kilobytes
from repro.docstore.engine_base import StorageEngine
from repro.docstore.locks import LockGranularity

DEFAULT_CACHE_BYTES = 64 * 1024 * 1024
DEFAULT_COMPRESSION_RATIO = 0.45


class WiredTigerEngine(StorageEngine):
    """B-tree engine with block compression, an LRU cache and document-level locks."""

    name = "wiredtiger"
    lock_granularity = LockGranularity.DOCUMENT
    concurrency = ConcurrencyProfile(
        serial_write_fraction=0.07,
        serial_read_fraction=0.02,
        parallel_efficiency=0.92,
    )

    def __init__(
        self,
        parameters: CostParameters | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        compression_ratio: float = DEFAULT_COMPRESSION_RATIO,
    ):
        super().__init__(parameters)
        if not 0.0 < compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        self.compression_ratio = compression_ratio
        self._tree = BTree(order=64)  # record id -> (document, size)
        self._cache = LruCache(cache_bytes)
        self._disk_bytes = 0
        # Serialises tree mutations and the byte counter; see module docstring.
        self._mutate = threading.Lock()

    # -- StorageEngine interface ------------------------------------------------

    def insert(self, record_id: str, document: dict[str, Any],
               size: int | None = None) -> float:
        return self.costs.charge("insert", self._insert_one(record_id, document, size))

    def insert_batch(self, records: list[tuple[str, dict[str, Any], int]]) -> float:
        """Batched inserts: one cost accumulation for the whole round."""
        total = 0.0
        for record_id, document, size in records:
            total += self._insert_one(record_id, document, size)
        return self.costs.charge_many("insert", total, len(records))

    def _insert_one(self, record_id: str, document: dict[str, Any],
                    size: int | None) -> float:
        size = self._size_of(document, size)
        compressed = int(size * self.compression_ratio)
        with self._mutate:
            visited = self._tree.insert(record_id, (document, size))
            self._disk_bytes += compressed
        self._cache.put(record_id, size)
        return (
            self.parameters.base_operation
            + visited * self.parameters.node_access
            + kilobytes(size) * self.parameters.compression_per_kb
            + kilobytes(compressed) * self.parameters.disk_write_per_kb
        )

    def read(self, record_id: str) -> tuple[dict[str, Any] | None, float]:
        # Latch-free: one snapshot traversal of the copy-on-write tree.  The
        # per-call visited count comes from search() itself -- a before/after
        # delta of the cumulative counter would be torn by concurrent readers.
        found, record, visited = self._tree.search(record_id)
        cost = self.parameters.base_operation + visited * self.parameters.node_access
        if not found:
            return None, self.costs.charge("read_miss", cost)
        document, size = record
        hit, _ = self._cache.get(record_id)
        if not hit:
            compressed = int(size * self.compression_ratio)
            cost += (
                kilobytes(compressed) * self.parameters.disk_read_per_kb
                + kilobytes(size) * self.parameters.compression_per_kb
            )
            self._cache.put(record_id, size)
        return document, self.costs.charge("read", cost)

    def peek(self, record_id: str) -> dict[str, Any] | None:
        """Charge-free snapshot lookup (latch-free, like :meth:`read`)."""
        found, record, __ = self._tree.search(record_id)
        return record[0] if found else None

    def update(self, record_id: str, document: dict[str, Any],
               size: int | None = None) -> float:
        new_size = self._size_of(document, size)
        new_compressed = int(new_size * self.compression_ratio)
        with self._mutate:
            found, previous, __ = self._tree.search(record_id)
            if not found:
                raise KeyError(record_id)
            old_compressed = int(previous[1] * self.compression_ratio)
            visited = self._tree.insert(record_id, (document, new_size))
            # wiredTiger never updates in place: the new version is written out
            # and the old block is reclaimed later, so disk usage tracks the
            # new size.
            self._disk_bytes += new_compressed - old_compressed
        self._cache.put(record_id, new_size)
        cost = (
            self.parameters.base_operation
            + visited * self.parameters.node_access
            + kilobytes(new_size) * self.parameters.compression_per_kb
            + kilobytes(new_compressed) * self.parameters.disk_write_per_kb
        )
        return self.costs.charge("update", cost)

    def delete(self, record_id: str) -> float:
        with self._mutate:
            found, previous, __ = self._tree.search(record_id)
            if not found:
                raise KeyError(record_id)
            self._tree.delete(record_id)
            self._disk_bytes -= int(previous[1] * self.compression_ratio)
        self._cache.invalidate(record_id)
        cost = self.parameters.base_operation + self._tree.depth() * self.parameters.node_access
        return self.costs.charge("delete", cost)

    def scan_cost_per_document(self) -> float:
        return self.parameters.node_access + self.parameters.compression_per_kb * 0.5

    def scan(self) -> Iterator[tuple[str, dict[str, Any], float]]:
        per_document = self.scan_cost_per_document()
        for record_id, record in self._tree.items():
            cost = self.costs.charge("scan", per_document)
            yield record_id, record[0], cost

    def scan_uncharged(self) -> Iterator[tuple[str, dict[str, Any]]]:
        for record_id, record in self._tree.items():
            yield record_id, record[0]

    def count(self) -> int:
        return len(self._tree)

    def storage_bytes(self) -> int:
        return max(self._disk_bytes, 0)

    def verify_accounting(self) -> None:
        """Check the running disk-byte total against a tree recomputation."""
        with self._mutate:
            expected = sum(
                int(record[1] * self.compression_ratio)
                for __, record in self._tree.items()
            )
            assert self._disk_bytes == expected, (
                f"disk byte drift: running total {self._disk_bytes} != "
                f"recomputed {expected}"
            )

    # -- engine-specific reporting ------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        stats = super().statistics()
        stats["cache"] = self._cache.stats.snapshot()
        stats["cache_used_bytes"] = self._cache.used_bytes
        stats["btree_depth"] = self._tree.depth()
        stats["compression_ratio"] = self.compression_ratio
        return stats
