"""Update operators: ``$set``, ``$unset``, ``$inc``, ``$mul``, ``$push`` ...

`apply_update` produces a *new* document; storage engines decide afterwards
whether the new version fits in place (mmapv1 padding) or requires a rewrite.
"""

from __future__ import annotations

import copy
from typing import Any

from repro.docstore.documents import get_path, set_path, unset_path, validate_document
from repro.errors import DocumentStoreError

_SUPPORTED = {
    "$set",
    "$unset",
    "$inc",
    "$mul",
    "$min",
    "$max",
    "$rename",
    "$push",
    "$pull",
    "$addToSet",
    "$pop",
}


def is_update_document(update: dict[str, Any]) -> bool:
    """True when ``update`` uses operators rather than whole-document replacement."""
    return isinstance(update, dict) and any(key.startswith("$") for key in update)


def apply_update(document: dict[str, Any], update: dict[str, Any]) -> dict[str, Any]:
    """Return a new document with ``update`` applied to ``document``.

    Whole-document replacement preserves the original ``_id``; operator
    updates are applied field by field.
    """
    if not is_update_document(update):
        replacement = copy.deepcopy(update)
        validate_document(replacement)
        replacement["_id"] = document["_id"]
        return replacement

    result = copy.deepcopy(document)
    for operator, spec in update.items():
        if operator not in _SUPPORTED:
            raise DocumentStoreError(f"unknown update operator {operator!r}")
        if not isinstance(spec, dict):
            raise DocumentStoreError(f"{operator} expects an object of field updates")
        for path, operand in spec.items():
            if path == "_id":
                raise DocumentStoreError("the _id field cannot be modified")
            _apply_one(result, operator, path, operand)
    return result


def _apply_one(document: dict[str, Any], operator: str, path: str, operand: Any) -> None:
    if operator == "$set":
        set_path(document, path, copy.deepcopy(operand))
        return
    if operator == "$unset":
        unset_path(document, path)
        return
    if operator == "$rename":
        found, value = get_path(document, path)
        if found:
            unset_path(document, path)
            set_path(document, str(operand), value)
        return

    found, current = get_path(document, path)

    if operator in ("$inc", "$mul"):
        if found and not isinstance(current, (int, float)) or isinstance(current, bool):
            if found:
                raise DocumentStoreError(
                    f"cannot apply {operator} to non-numeric field {path!r}"
                )
        if not isinstance(operand, (int, float)) or isinstance(operand, bool):
            raise DocumentStoreError(f"{operator} requires a numeric operand")
        if operator == "$inc":
            base = current if found else 0
            set_path(document, path, base + operand)
        else:
            base = current if found else 0
            set_path(document, path, base * operand)
        return

    if operator in ("$min", "$max"):
        if not found:
            set_path(document, path, copy.deepcopy(operand))
            return
        if operator == "$min" and operand < current:
            set_path(document, path, copy.deepcopy(operand))
        if operator == "$max" and operand > current:
            set_path(document, path, copy.deepcopy(operand))
        return

    # Array operators below.
    if operator == "$push":
        array = current if found and isinstance(current, list) else []
        if found and not isinstance(current, list):
            raise DocumentStoreError(f"cannot $push to non-array field {path!r}")
        array = list(array)
        if isinstance(operand, dict) and "$each" in operand:
            array.extend(copy.deepcopy(operand["$each"]))
        else:
            array.append(copy.deepcopy(operand))
        set_path(document, path, array)
        return

    if operator == "$addToSet":
        array = current if found and isinstance(current, list) else []
        if found and not isinstance(current, list):
            raise DocumentStoreError(f"cannot $addToSet to non-array field {path!r}")
        array = list(array)
        if operand not in array:
            array.append(copy.deepcopy(operand))
        set_path(document, path, array)
        return

    if operator == "$pull":
        if not found or not isinstance(current, list):
            return
        set_path(document, path, [item for item in current if item != operand])
        return

    if operator == "$pop":
        if not found or not isinstance(current, list) or not current:
            return
        array = list(current)
        if operand == -1:
            array.pop(0)
        else:
            array.pop()
        set_path(document, path, array)
        return

    raise DocumentStoreError(f"unknown update operator {operator!r}")
