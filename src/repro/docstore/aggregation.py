"""The aggregation pipeline: streaming `$match`/`$project`/`$group`/`$sort`/`$limit`.

A pipeline is a list of single-key stage documents, executed as a chain of
iterators over the copy-on-write stored documents -- no stage materialises an
intermediate result list unless its semantics require one (`$sort` and
`$group` are the only blocking stages).  Two pushdown layers make pipelines
cheap rather than merely composable:

**Planner pushdown (single server).**  A leading ``$match`` is not executed
as a filter at all: the stage's query is handed to the collection's
:class:`~repro.docstore.planner.QueryPlanner`, so it rides the same
``ID_LOOKUP`` / ``INDEX_EQ`` / ``INDEX_RANGE`` access paths -- and the same
plan cache, keyed by :func:`~repro.docstore.matching.query_shape` -- as a
plain ``find``.  A ``$sort`` on a single ascending field whose ordered index
*covers* the collection (every live document carries a scalar value for the
field, tracked by
:meth:`~repro.docstore.indexes.OrderedSecondaryIndex.ordered_records`)
becomes an ordered B-tree walk instead of an in-memory sort, and a
downstream ``$limit`` is pushed into that walk so it stops after enough
matches.  When the leading ``$match`` additionally constrains the sort field
to one interval, the walk seeks straight into ``iter_range`` instead of
starting at the smallest key.

**Shard pushdown (router).**  :func:`split_pipeline` rewrites a pipeline
into a per-shard part and a router part.  Stages up to the first ``$group``
(when no ``$sort``/``$limit`` precedes it -- those need a global view) run
shard-side and ship one *partial accumulator state row per group* instead of
every matching document; the router combines states
(:func:`combine_partial_groups`) and finalises.  Without a ``$group``, the
prefix through the first ``$sort`` (and an immediately following ``$limit``)
runs per shard, and the router performs an ordered merge of the pre-sorted,
pre-limited shard streams (:func:`merge_shard_streams`).

**Determinism contract.**  MongoDB leaves group order and sort ties
undefined; this implementation pins both so a sharded aggregation returns
*exactly* the documents, in exactly the order, a single server returns:
``$group`` emits groups ordered by a canonical type-tagged key token
(:func:`group_token`), and ``$sort`` breaks ties by ``str(_id)`` -- the same
tie-break the router's limited find-merge already uses, and the order the
ordered index emits.  Pipelines with no ``$sort``/``$group`` keep no order
guarantee (their order is access-path-dependent, as in MongoDB).

Accumulator semantics follow MongoDB: ``$sum``/``$avg`` consider only
numeric (non-bool) values and default to ``0`` / ``None``; ``$min``/``$max``
ignore null and missing and compare with the total order of
:func:`~repro.docstore.cursor.sort_key`; ``$count`` takes ``{}`` and counts
documents.  Group keys are expressions: ``None``, a constant, a ``"$path"``
field reference (missing resolves to ``None``, MongoDB's null group), or a
compound document of those.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.docstore.cursor import sort_key
from repro.docstore.documents import get_path
from repro.docstore.indexes import OrderedSecondaryIndex
from repro.docstore.matching import compile_query
from repro.docstore.predicates import query_intervals
from repro.errors import DocumentStoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docstore.collection import Collection, OperationResult

STAGE_NAMES = ("$match", "$project", "$group", "$sort", "$limit")

#: Access-path label ``explain`` reports when a ``$sort`` is satisfied by an
#: ordered index walk instead of an in-memory sort.
ORDERED_INDEX_WALK = "ORDERED_INDEX_WALK"

#: Access-path label for a full-collection source: the stream comes straight
#: from the engine's bulk scan, not from planning a query.
BULK_SCAN = "BULK_SCAN"

_ABSENT = object()


# -- expressions -------------------------------------------------------------------


class _FieldRef:
    """A ``"$path"`` reference resolved with dotted-path semantics."""

    __slots__ = ("path", "_simple")

    def __init__(self, path: str):
        self.path = path
        # Dot-free paths -- the overwhelmingly common case in group keys and
        # accumulator operands -- resolve with one dict probe instead of the
        # split-and-descend of get_path.
        self._simple = "." not in path

    def evaluate(self, document: dict[str, Any]) -> tuple[bool, Any]:
        if self._simple:
            value = document.get(self.path, _ABSENT)
            if value is _ABSENT:
                return False, None
            return True, value
        return get_path(document, self.path)


class _Constant:
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, document: dict[str, Any]) -> tuple[bool, Any]:
        return True, self.value


class _Compound:
    """A compound group key ``{"a": "$x", "b": "$y"}`` (missing -> None)."""

    __slots__ = ("entries",)

    def __init__(self, entries: dict[str, Any]):
        self.entries = entries

    def evaluate(self, document: dict[str, Any]) -> tuple[bool, Any]:
        value: dict[str, Any] = {}
        for name, expression in self.entries.items():
            found, entry = expression.evaluate(document)
            value[name] = entry if found else None
        return True, value


def _parse_expression(expression: Any, allow_compound: bool) -> Any:
    if isinstance(expression, str) and expression.startswith("$"):
        path = expression[1:]
        if not path:
            raise DocumentStoreError("empty field reference '$' in pipeline expression")
        return _FieldRef(path)
    if expression is None or isinstance(expression, (bool, int, float, str)):
        return _Constant(expression)
    if isinstance(expression, dict):
        if not allow_compound:
            raise DocumentStoreError(
                f"unsupported operator expression {expression!r}; accumulators "
                "take a field reference or a constant"
            )
        if any(key.startswith("$") for key in expression):
            raise DocumentStoreError(
                f"unsupported operator expression {expression!r} in $group _id"
            )
        return _Compound({name: _parse_expression(entry, allow_compound=False)
                          for name, entry in expression.items()})
    raise DocumentStoreError(f"unsupported pipeline expression {expression!r}")


# -- group keys --------------------------------------------------------------------


def group_token(value: Any) -> tuple:
    """A hashable, totally ordered canonical token for one group-key value.

    Values are type-tagged so ``True`` and ``1`` form distinct groups (their
    Python hashes collide) while ``1`` and ``1.0`` share one (numeric
    equality, as in MongoDB).  Dict values are canonicalised by sorted items,
    so key-insertion order never splits a group.  Tokens with equal tags
    always hold same-type payloads, which makes ``sorted()`` over tokens the
    canonical cross-shard group order.
    """
    if isinstance(value, bool):
        return ("b", value)
    if value is None:
        return ("z",)
    if isinstance(value, (int, float)):
        return ("n", value)
    if isinstance(value, str):
        return ("s", value)
    if isinstance(value, list):
        return ("l", tuple(group_token(item) for item in value))
    if isinstance(value, dict):
        return ("d", tuple(sorted((name, group_token(item))
                                  for name, item in value.items())))
    return ("r", repr(value))


# -- accumulators -----------------------------------------------------------------


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class _SumAcc:
    @staticmethod
    def initial() -> Any:
        return 0

    @staticmethod
    def update(state: Any, found: bool, value: Any) -> Any:
        if found and _is_number(value):
            return state + value
        return state

    @staticmethod
    def combine(left: Any, right: Any) -> Any:
        return left + right

    @staticmethod
    def finalize(state: Any) -> Any:
        return state


class _CountAcc:
    @staticmethod
    def initial() -> Any:
        return 0

    @staticmethod
    def update(state: Any, found: bool, value: Any) -> Any:
        return state + 1

    @staticmethod
    def combine(left: Any, right: Any) -> Any:
        return left + right

    @staticmethod
    def finalize(state: Any) -> Any:
        return state


class _AvgAcc:
    @staticmethod
    def initial() -> Any:
        return (0, 0)

    @staticmethod
    def update(state: Any, found: bool, value: Any) -> Any:
        if found and _is_number(value):
            return (state[0] + value, state[1] + 1)
        return state

    @staticmethod
    def combine(left: Any, right: Any) -> Any:
        return (left[0] + right[0], left[1] + right[1])

    @staticmethod
    def finalize(state: Any) -> Any:
        total, count = state
        return total / count if count else None


class _MinAcc:
    #: Whether the held value beats the challenger; _MaxAcc flips it.
    _keep_left = staticmethod(lambda left, right: sort_key(left) <= sort_key(right))

    @classmethod
    def initial(cls) -> Any:
        return _ABSENT

    @classmethod
    def update(cls, state: Any, found: bool, value: Any) -> Any:
        if not found or value is None:
            return state  # null and missing are ignored, as in MongoDB
        if state is _ABSENT or not cls._keep_left(state, value):
            return value
        return state

    @classmethod
    def combine(cls, left: Any, right: Any) -> Any:
        if right is _ABSENT:
            return left
        if left is _ABSENT:
            return right
        return left if cls._keep_left(left, right) else right

    @staticmethod
    def finalize(state: Any) -> Any:
        return None if state is _ABSENT else state


class _MaxAcc(_MinAcc):
    _keep_left = staticmethod(lambda left, right: sort_key(left) >= sort_key(right))


_ACCUMULATORS: dict[str, Any] = {
    "$sum": _SumAcc,
    "$count": _CountAcc,
    "$avg": _AvgAcc,
    "$min": _MinAcc,
    "$max": _MaxAcc,
}


# -- stage parsing -----------------------------------------------------------------


@dataclass
class GroupSpec:
    """A parsed ``$group`` stage."""

    raw: dict[str, Any]
    key_expr: Any
    fields: list[tuple[str, Any, Any]]  # (output name, accumulator, operand expr)


@dataclass
class Stage:
    """One parsed pipeline stage."""

    kind: str  # "match" | "project" | "group" | "sort" | "limit"
    raw: dict[str, Any]
    query: dict[str, Any] | None = None
    matcher: Callable[[dict[str, Any]], bool] | None = None
    projection: dict[str, Any] | None = None
    group: GroupSpec | None = None
    sort_spec: list[tuple[str, int]] | None = None
    limit: int | None = None


def parse_group_spec(spec: Any) -> GroupSpec:
    if not isinstance(spec, dict) or "_id" not in spec:
        raise DocumentStoreError("$group requires a document with an _id expression")
    key_expr = _parse_expression(spec["_id"], allow_compound=True)
    fields: list[tuple[str, Any, Any]] = []
    for name, accumulator_spec in spec.items():
        if name == "_id":
            continue
        if not name or name.startswith("$") or "." in name:
            raise DocumentStoreError(f"invalid $group output field name {name!r}")
        if not isinstance(accumulator_spec, dict) or len(accumulator_spec) != 1:
            raise DocumentStoreError(
                f"$group field {name!r} must be {{accumulator: operand}}"
            )
        ((operator, operand),) = accumulator_spec.items()
        accumulator = _ACCUMULATORS.get(operator)
        if accumulator is None:
            raise DocumentStoreError(
                f"unknown accumulator {operator!r}; "
                f"supported: {sorted(_ACCUMULATORS)}"
            )
        if operator == "$count":
            if operand != {}:
                raise DocumentStoreError("$count takes an empty document {}")
            operand_expr = _Constant(None)
        else:
            operand_expr = _parse_expression(operand, allow_compound=False)
        fields.append((name, accumulator, operand_expr))
    return GroupSpec(raw=spec, key_expr=key_expr, fields=fields)


def parse_pipeline(pipeline: Any) -> list[Stage]:
    """Validate ``pipeline`` and parse it into executable stages."""
    if pipeline is None:
        pipeline = []
    if not isinstance(pipeline, (list, tuple)):
        raise DocumentStoreError(
            f"a pipeline must be a list of stage documents, got "
            f"{type(pipeline).__name__}"
        )
    stages: list[Stage] = []
    for position, raw in enumerate(pipeline):
        if not isinstance(raw, dict) or len(raw) != 1:
            raise DocumentStoreError(
                f"pipeline stage {position} must be a single-key document, "
                f"got {raw!r}"
            )
        ((name, spec),) = raw.items()
        if name not in STAGE_NAMES:
            raise DocumentStoreError(
                f"unknown pipeline stage {name!r}; supported: {list(STAGE_NAMES)}"
            )
        if name == "$match":
            if not isinstance(spec, dict):
                raise DocumentStoreError("$match takes a query document")
            stages.append(Stage("match", raw, query=spec,
                                matcher=compile_query(spec) if spec else None))
        elif name == "$project":
            if not isinstance(spec, dict) or not spec:
                raise DocumentStoreError("$project takes a non-empty document")
            for flag in spec.values():
                if not isinstance(flag, (bool, int)):
                    raise DocumentStoreError(
                        "$project values must be inclusion/exclusion flags"
                    )
            stages.append(Stage("project", raw, projection=dict(spec)))
        elif name == "$sort":
            if not isinstance(spec, dict) or not spec:
                raise DocumentStoreError("$sort takes a non-empty document")
            sort_spec: list[tuple[str, int]] = []
            for sort_field, direction in spec.items():
                if direction not in (1, -1):
                    raise DocumentStoreError(
                        f"$sort direction for {sort_field!r} must be 1 or -1"
                    )
                sort_spec.append((sort_field, int(direction)))
            stages.append(Stage("sort", raw, sort_spec=sort_spec))
        elif name == "$limit":
            if isinstance(spec, bool) or not isinstance(spec, int) or spec < 1:
                raise DocumentStoreError("$limit takes a positive integer")
            stages.append(Stage("limit", raw, limit=spec))
        else:  # $group
            stages.append(Stage("group", raw, group=parse_group_spec(spec)))
    return stages


# -- document helpers --------------------------------------------------------------


def project_document(document: dict[str, Any],
                     projection: dict[str, Any]) -> dict[str, Any]:
    """Apply a top-level include/exclude projection (Cursor semantics)."""
    include = [name for name, flag in projection.items() if flag]
    exclude = {name for name, flag in projection.items() if not flag}
    if include:
        projected = {name: document[name] for name in include if name in document}
        if "_id" not in exclude and "_id" in document:
            projected["_id"] = document["_id"]
        return projected
    return {key: value for key, value in document.items() if key not in exclude}


def sort_documents(documents: Iterable[dict[str, Any]],
                   sort_spec: list[tuple[str, int]]) -> list[dict[str, Any]]:
    """Sort by the spec's fields with a deterministic ``str(_id)`` tie-break.

    The pre-pass on ``_id`` plus stable per-field passes yields the one total
    order both the standalone executor and the router's merge produce, so a
    sharded ``$sort`` returns documents in exactly a single server's order.
    """
    ordered = list(documents)
    ordered.sort(key=lambda doc: str(doc.get("_id")))
    for field_path, direction in reversed(sort_spec):
        ordered.sort(key=lambda doc: sort_key(get_path(doc, field_path)[1]),
                     reverse=direction < 0)
    return ordered


def _merge_key(sort_spec: list[tuple[str, int]]) -> Callable[[dict[str, Any]], tuple]:
    def key(document: dict[str, Any]) -> tuple:
        parts = [sort_key(get_path(document, field_path)[1])
                 for field_path, __ in sort_spec]
        parts.append(str(document.get("_id")))
        return tuple(parts)
    return key


# -- grouping ----------------------------------------------------------------------


def accumulate_groups(stream: Iterable[dict[str, Any]],
                      spec: GroupSpec) -> dict[tuple, tuple[Any, dict[str, Any]]]:
    """Consume ``stream`` into ``token -> (key value, accumulator states)``."""
    groups: dict[tuple, tuple[Any, dict[str, Any]]] = {}
    for document in stream:
        found, key_value = spec.key_expr.evaluate(document)
        if not found:
            key_value = None
        token = group_token(key_value)
        entry = groups.get(token)
        if entry is None:
            entry = (key_value,
                     {name: accumulator.initial()
                      for name, accumulator, __ in spec.fields})
            groups[token] = entry
        states = entry[1]
        for name, accumulator, operand in spec.fields:
            operand_found, value = operand.evaluate(document)
            states[name] = accumulator.update(states[name], operand_found, value)
    return groups


def finalize_groups(groups: dict[tuple, tuple[Any, dict[str, Any]]],
                    spec: GroupSpec) -> list[dict[str, Any]]:
    """Finalise accumulator states into group documents, in token order."""
    documents: list[dict[str, Any]] = []
    for token in sorted(groups):
        key_value, states = groups[token]
        document: dict[str, Any] = {"_id": key_value}
        for name, accumulator, __ in spec.fields:
            document[name] = accumulator.finalize(states[name])
        documents.append(document)
    return documents


def combine_partial_groups(row_lists: Iterable[list[dict[str, Any]]],
                           group_spec: dict[str, Any]) -> list[dict[str, Any]]:
    """Router-side merge: combine per-shard partial rows and finalise.

    Each row is ``{"_id": key value, "_states": {field: state}}`` as emitted
    by :func:`execute_partial`; equal keys are recognised by
    :func:`group_token`, so shards never need to agree on a representative.
    """
    spec = parse_group_spec(group_spec)
    groups: dict[tuple, tuple[Any, dict[str, Any]]] = {}
    for rows in row_lists:
        for row in rows:
            token = group_token(row["_id"])
            entry = groups.get(token)
            if entry is None:
                groups[token] = (row["_id"], dict(row["_states"]))
                continue
            states = entry[1]
            for name, accumulator, __ in spec.fields:
                states[name] = accumulator.combine(states[name],
                                                   row["_states"][name])
    return finalize_groups(groups, spec)


# -- the streaming executor --------------------------------------------------------


class _CostTracker:
    """Accrues read cost during streaming; lookup cost is read lazily at the
    end so lazy plans (index walks) charge exactly what they traversed.

    Also carries the profiler-facing execution facts the source discovered
    while opening (winning access path, plan-cache state) and counts the
    documents the stream examined, so a profiled ``aggregate`` span reports
    the same access path ``explain_pipeline`` would.
    """

    __slots__ = ("read_cost", "_lookup", "access_path", "cache_state",
                 "examined")

    def __init__(self) -> None:
        self.read_cost = 0.0
        self._lookup: Callable[[], float] | None = None
        self.access_path: str | None = None
        self.cache_state: str | None = None
        self.examined = 0

    def set_lookup(self, lookup: Callable[[], float]) -> None:
        self._lookup = lookup

    def total(self) -> float:
        lookup = self._lookup() if self._lookup is not None else 0.0
        return self.read_cost + lookup


@dataclass
class SourcePlan:
    """How the executor feeds documents into the stage chain.

    ``mode`` is ``"planner"`` (leading ``$match`` handed to the query
    planner, optional limit pushdown), ``"index_walk"`` (a covering
    ordered index satisfies the first ``$sort``; the walk filters with the
    leading match's compiled matcher and stops at ``limit`` matches) or
    ``"bulk_scan"`` (no selective leading match: the engine's bulk scan
    streams every stored document once, skipping the planner's candidate
    materialisation and the per-candidate re-read it would entail).
    ``remaining`` is the stage suffix still applied to the stream;
    ``sort_index`` / ``limit_index`` locate the satisfied stages for
    ``explain``.
    """

    mode: str
    query: dict[str, Any]
    limit: int | None
    sort_field: str | None
    remaining: list[Stage] = field(default_factory=list)
    match_consumed: bool = False
    sort_index: int | None = None
    limit_index: int | None = None


def _pushable_limit(stages: list[Stage], start: int) -> tuple[int | None, int | None]:
    """The first ``$limit`` the source may stop at, looking from ``start``.

    Only ``$project`` stages may sit in between: they never change the
    document count, so the limit commutes with them.  Anything else (a
    filter, a reorder, a group) makes the limit non-pushable.
    """
    for index in range(start, len(stages)):
        kind = stages[index].kind
        if kind == "project":
            continue
        if kind == "limit":
            return stages[index].limit, index
        break
    return None, None


def _walk_covers(collection: "Collection", field_path: str) -> bool:
    """Whether an ordered index walk over ``field_path`` sees every document.

    The B-tree only holds scalar values, so the walk is a valid sort source
    exactly when every live document contributed one scalar entry
    (``ordered_records == count``): a missing, array or subdocument value
    would silently drop its document from the result.
    """
    index = collection.index_for(field_path)
    return (isinstance(index, OrderedSecondaryIndex)
            and index.ordered_records() == collection.engine.count())


def plan_source(collection: "Collection", stages: list[Stage]) -> SourcePlan:
    """Decide the pushdown shape of a pipeline's document source."""
    match_consumed = bool(stages) and stages[0].kind == "match"
    query = stages[0].query if match_consumed else {}
    base = 1 if match_consumed else 0
    if len(stages) > base and stages[base].kind == "sort":
        sort_spec = stages[base].sort_spec
        if (len(sort_spec) == 1 and sort_spec[0][1] == 1
                and _walk_covers(collection, sort_spec[0][0])):
            limit, limit_index = _pushable_limit(stages, base + 1)
            return SourcePlan("index_walk", query, limit, sort_spec[0][0],
                              remaining=stages[base + 1:],
                              match_consumed=match_consumed,
                              sort_index=base, limit_index=limit_index)
    limit, limit_index = _pushable_limit(stages, base)
    mode = "planner" if query else "bulk_scan"
    return SourcePlan(mode, query, limit, None,
                      remaining=stages[base:], match_consumed=match_consumed,
                      limit_index=limit_index)


def _walk_interval(source: SourcePlan) -> Any:
    """The single interval the leading match pins the sort field to, if any.

    Lets the ordered walk seek into ``iter_range`` instead of starting at
    the tree's smallest key.  ``False`` signals a provably empty result.
    """
    if not source.query:
        return None
    interval_set = query_intervals(source.query).get(source.sort_field)
    if interval_set is None or interval_set.is_full:
        return None
    if interval_set.is_empty:
        return False
    intervals = list(interval_set)
    if len(intervals) == 1 and intervals[0].rank is not None:
        return intervals[0]
    return None


def _open_source(collection: "Collection", source: SourcePlan,
                 tracker: _CostTracker) -> Iterator[dict[str, Any]]:
    read = collection.engine.read
    if source.mode == "index_walk":
        tracker.access_path = ORDERED_INDEX_WALK
        index = collection.index_for(source.sort_field)
        matcher = compile_query(source.query) if source.query else None
        node_access = collection.engine.parameters.node_access
        accesses_before = index.tree_node_accesses()
        tracker.set_lookup(
            lambda: (index.tree_node_accesses() - accesses_before) * node_access)
        interval = _walk_interval(source)
        if interval is False:
            return iter(())
        candidates = (index.iter_range(interval) if interval is not None
                      else index.iter_ordered())

        def walk() -> Iterator[dict[str, Any]]:
            emitted = 0
            for record_id in candidates:
                tracker.examined += 1
                document, cost = read(record_id)  # latch-free
                tracker.read_cost += cost
                if document is None or (matcher is not None
                                        and not matcher(document)):
                    continue
                yield document
                emitted += 1
                if source.limit is not None and emitted >= source.limit:
                    return

        return walk()

    if source.mode == "bulk_scan":
        # Full-collection source: one streaming pass over the engine's bulk
        # scan.  Going through the planner here would pre-scan the engine to
        # materialise candidate ids and then re-read every candidate -- a
        # second tree descent and a cache probe per document.  The simulated
        # cost keeps the same shape as that plan (per-document scan charge
        # plus a point-read estimate) but is accumulated once for the whole
        # pass, in the generator's ``finally`` -- the executor closes the
        # stream before reading the tracker, so a truncated pass charges
        # exactly what it consumed.
        engine = collection.engine
        tracker.access_path = BULK_SCAN
        per_document = (engine.scan_cost_per_document()
                        + engine.point_read_cost_estimate())

        def bulk() -> Iterator[dict[str, Any]]:
            emitted = 0
            try:
                for __, document in engine.scan_uncharged():
                    tracker.examined += 1
                    yield document
                    emitted += 1
                    if source.limit is not None and emitted >= source.limit:
                        return
            finally:
                if emitted:
                    tracker.read_cost += engine.costs.charge_many(
                        "scan", per_document * emitted, emitted)

        return bulk()

    plan = collection.planner.plan(source.query, limit=source.limit)
    tracker.access_path = plan.access_path
    tracker.cache_state = plan.cache_state
    matcher = plan.matcher
    tracker.set_lookup(plan.current_lookup_cost)

    def scan() -> Iterator[dict[str, Any]]:
        emitted = 0
        for record_id in plan.iter_candidates():
            tracker.examined += 1
            document, cost = read(record_id)  # latch-free
            tracker.read_cost += cost
            if document is not None and (matcher is None or matcher(document)):
                yield document
                emitted += 1
                if source.limit is not None and emitted >= source.limit:
                    return

    return scan()


def _apply_stages(stream: Iterator[dict[str, Any]],
                  stages: list[Stage]) -> Iterator[dict[str, Any]]:
    for stage in stages:
        if stage.kind == "match":
            matcher = stage.matcher
            if matcher is not None:
                stream = (document for document in stream if matcher(document))
        elif stage.kind == "project":
            projection = stage.projection
            stream = (project_document(document, projection)
                      for document in stream)
        elif stage.kind == "limit":
            stream = itertools.islice(stream, stage.limit)
        elif stage.kind == "group":
            spec = stage.group
            stream = iter(finalize_groups(accumulate_groups(stream, spec), spec))
        else:  # sort: the one stage that must see everything
            stream = iter(sort_documents(stream, stage.sort_spec))
    return stream


def execute_pipeline(collection: "Collection", pipeline: Any,
                     span: Any = None) -> "OperationResult":
    """Run ``pipeline`` against a single collection.

    Returns an :class:`~repro.docstore.collection.OperationResult` whose
    documents follow the internal copy-on-write contract: pass-through
    stages emit the frozen stored objects, so callers must treat them as
    immutable (the client surface clones).  ``span``, when given, receives
    the source's access path, plan-cache state and examined-document count.
    """
    from repro.docstore.collection import OperationResult

    stages = parse_pipeline(pipeline)
    source = plan_source(collection, stages)
    tracker = _CostTracker()
    stream = _open_source(collection, source, tracker)
    documents = list(_apply_stages(stream, source.remaining))
    # A downstream stage (a non-pushable $limit) may leave the source
    # suspended; close it so its deferred cost accounting lands in the
    # tracker before the total is read.
    close = getattr(stream, "close", None)
    if close is not None:
        close()
    if span is not None:
        _fill_span(span, tracker)
    return OperationResult(documents=documents,
                           simulated_seconds=tracker.total(),
                           matched_count=len(documents))


def _fill_span(span: Any, tracker: _CostTracker) -> None:
    if tracker.access_path is not None:
        span.note_plan(tracker.access_path, tracker.cache_state)
    span.docs_examined += tracker.examined


def execute_partial(collection: "Collection", prefix: Any,
                    group_spec: dict[str, Any], span: Any = None) -> "OperationResult":
    """Shard-side half of a distributed ``$group``.

    Runs the ``$match``/``$project`` prefix with full planner pushdown, then
    accumulates *partial* states and returns one
    ``{"_id": key value, "_states": {...}}`` row per group -- what crosses
    the wire instead of every matching document.
    """
    from repro.docstore.collection import OperationResult

    stages = parse_pipeline(prefix)
    for stage in stages:
        if stage.kind in ("sort", "group"):
            raise DocumentStoreError(
                f"a partial-aggregation prefix cannot contain ${stage.kind}"
            )
    spec = parse_group_spec(group_spec)
    source = plan_source(collection, stages)
    tracker = _CostTracker()
    raw = _open_source(collection, source, tracker)
    stream = _apply_stages(raw, source.remaining)
    groups = accumulate_groups(stream, spec)
    close = getattr(raw, "close", None)
    if close is not None:
        close()
    if span is not None:
        _fill_span(span, tracker)
    rows = [{"_id": key_value, "_states": states}
            for key_value, states in groups.values()]
    return OperationResult(documents=rows,
                           simulated_seconds=tracker.total(),
                           matched_count=len(rows))


def apply_raw_stages(documents: list[dict[str, Any]],
                     pipeline: Any) -> list[dict[str, Any]]:
    """Run a (router-side) stage list over already-materialised documents."""
    stages = parse_pipeline(pipeline)
    if not stages:
        return documents
    return list(_apply_stages(iter(documents), stages))


# -- distinct ----------------------------------------------------------------------


def distinct_values(collection: "Collection", field_path: str,
                    query: dict[str, Any] | None = None) -> list[Any]:
    """The degenerate ``$group``: distinct values of ``field_path``.

    MongoDB semantics: documents missing the field contribute nothing,
    explicit nulls contribute ``None``, and array values contribute their
    elements.  Values are deduplicated and ordered by their canonical
    :func:`group_token`, so a sharded union reproduces this list exactly.
    The leading query rides the planner like any ``find``.
    """
    plan = collection.planner.plan(query or {})
    matcher = plan.matcher
    read = collection.engine.read
    seen: dict[tuple, Any] = {}
    for record_id in plan.iter_candidates():
        document, __ = read(record_id)
        if document is None or (matcher is not None and not matcher(document)):
            continue
        found, value = get_path(document, field_path)
        if not found:
            continue
        for item in (value if isinstance(value, list) else [value]):
            seen.setdefault(group_token(item), item)
    return [seen[token] for token in sorted(seen)]


# -- the shard split ---------------------------------------------------------------


@dataclass
class PipelineSplit:
    """A pipeline rewritten into a per-shard part and a router part.

    ``mode`` is:

    * ``"group"``  -- shards run ``shard_stages`` + partial ``$group``
      (``group_spec``); the router combines states, finalises and applies
      ``router_stages``.
    * ``"sort"``   -- shards run ``shard_stages`` (ending in the ``$sort``
      and an immediately following ``$limit``, when present); the router
      ordered-merges the pre-sorted streams (``sort_spec``), deduplicates,
      re-applies ``merge_limit`` and runs ``router_stages``.
    * ``"stream"`` -- no global reorder needed: shards run ``shard_stages``,
      the router concatenates, deduplicates, applies ``merge_limit`` (when a
      ``$limit`` was pushed) and runs ``router_stages``.
    """

    mode: str
    leading_query: dict[str, Any]
    shard_stages: list[dict[str, Any]]
    router_stages: list[dict[str, Any]]
    group_spec: dict[str, Any] | None = None
    sort_spec: list[tuple[str, int]] | None = None
    merge_limit: int | None = None


def split_pipeline(pipeline: Any) -> PipelineSplit:
    """Decide the scatter--partial--merge shape of ``pipeline``.

    A ``$group`` is pushed down only when no ``$sort``/``$limit`` precedes
    it (those are global operations: a per-shard top-k feeding a group would
    group the wrong documents).  When a barrier precedes the first group,
    the split happens at the barrier instead and the group runs router-side.
    """
    stages = parse_pipeline(pipeline)  # validates before anything ships
    raw = [stage.raw for stage in stages]
    kinds = [stage.kind for stage in stages]
    leading_query = stages[0].query if kinds[:1] == ["match"] else {}

    group_index = kinds.index("group") if "group" in kinds else None
    sort_index = kinds.index("sort") if "sort" in kinds else None
    limit_index = kinds.index("limit") if "limit" in kinds else None
    barriers = [index for index in (sort_index, limit_index) if index is not None]
    barrier = min(barriers) if barriers else None

    if group_index is not None and (barrier is None or group_index < barrier):
        return PipelineSplit("group", leading_query,
                             shard_stages=raw[:group_index],
                             router_stages=raw[group_index + 1:],
                             group_spec=stages[group_index].group.raw)
    if sort_index is not None and sort_index == barrier:
        stop = sort_index + 1
        merge_limit = None
        if stop < len(stages) and kinds[stop] == "limit":
            merge_limit = stages[stop].limit
            stop += 1
        return PipelineSplit("sort", leading_query,
                             shard_stages=raw[:stop],
                             router_stages=raw[stop:],
                             sort_spec=stages[sort_index].sort_spec,
                             merge_limit=merge_limit)
    if limit_index is not None:
        return PipelineSplit("stream", leading_query,
                             shard_stages=raw[:limit_index + 1],
                             router_stages=raw[limit_index + 1:],
                             merge_limit=stages[limit_index].limit)
    return PipelineSplit("stream", leading_query, shard_stages=raw,
                         router_stages=[])


def dedup_by_id(documents: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Drop later duplicates of the same ``_id`` (migration dual-residence).

    Documents without an ``_id`` (a projection removed it) pass through:
    they cannot be identified, exactly as on the find path.
    """
    seen: set[str] = set()
    unique: list[dict[str, Any]] = []
    for document in documents:
        if "_id" in document:
            identity = str(document["_id"])
            if identity in seen:
                continue
            seen.add(identity)
        unique.append(document)
    return unique


def merge_shard_streams(shard_documents: list[list[dict[str, Any]]],
                        sort_spec: list[tuple[str, int]] | None,
                        merge_limit: int | None) -> list[dict[str, Any]]:
    """Merge per-shard result streams at the router.

    With an all-ascending sort spec this is a true ordered k-way merge
    (:func:`heapq.merge`) of the pre-sorted shard streams; descending or
    mixed-direction specs fall back to one re-sort with the identical total
    order.  Always deduplicates by ``_id`` and re-applies the pushed limit
    (each shard returned its local top-k; the merge keeps the global one).
    """
    if sort_spec is None:
        merged = [document for documents in shard_documents
                  for document in documents]
    elif all(direction == 1 for __, direction in sort_spec):
        merged = list(heapq.merge(*shard_documents, key=_merge_key(sort_spec)))
    else:
        merged = sort_documents(
            (document for documents in shard_documents for document in documents),
            sort_spec)
    merged = dedup_by_id(merged)
    if merge_limit is not None:
        merged = merged[:merge_limit]
    return merged


# -- explain -----------------------------------------------------------------------


def explain_pipeline(collection: "Collection", pipeline: Any) -> dict[str, Any]:
    """Per-stage pushdown report plus the source's winning access path.

    For a planner-fed source, ``winning_plan`` is the planner's own explain
    output for the leading match (``ID_LOOKUP`` / ``INDEX_EQ`` /
    ``INDEX_RANGE`` / ``FULL_SCAN``); for an ordered index walk it reports
    :data:`ORDERED_INDEX_WALK` with the walk's limit pushdown.
    """
    stages = parse_pipeline(pipeline)
    source = plan_source(collection, stages)
    if source.mode == "index_walk":
        winning = {
            "access_path": ORDERED_INDEX_WALK,
            "field": source.sort_field,
            "limit_pushdown": source.limit,
            "filtered_by_match": bool(source.query),
        }
    elif source.mode == "bulk_scan":
        winning = {
            "access_path": BULK_SCAN,
            "documents": collection.engine.count(),
            "limit_pushdown": source.limit,
        }
    else:
        winning = collection.planner.explain(source.query,
                                             limit=source.limit)["winning_plan"]
    reports = []
    for index, stage in enumerate(stages):
        disposition = "in_memory"
        if stage.kind == "match":
            if index == 0 and source.match_consumed:
                disposition = ("index_walk_filter" if source.mode == "index_walk"
                               else source.mode)
        elif stage.kind == "sort":
            if source.sort_index == index:
                disposition = "ordered_index_walk"
        elif stage.kind == "limit":
            if source.limit_index == index:
                disposition = "source_limit"
        elif stage.kind == "project":
            disposition = "streaming"
        reports.append({"stage": "$" + stage.kind, "pushdown": disposition})
    return {
        "collection": collection.name,
        "documents": collection.engine.count(),
        "pipeline": [stage.raw for stage in stages],
        "source": {"mode": source.mode, "query": source.query,
                   "limit_pushdown": source.limit},
        "winning_plan": winning,
        "stages": reports,
    }
