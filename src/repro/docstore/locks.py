"""Lock manager modelling the concurrency-control difference between engines.

The demo's central comparison hinges on lock granularity:

* ``mmapv1`` takes a *collection-level* lock for writes -- concurrent writers
  to the same collection serialise.
* ``wiredTiger`` uses *document-level* concurrency -- writers only conflict
  when they touch the same document.

The :class:`LockManager` implements both granularities for functional
correctness (used when agents drive the store from multiple threads), and
additionally keeps contention counters that the cost model uses to translate
blocking into simulated latency for the analytic concurrency model.

Hot-path design: this layer is entered twice per document operation, so it is
built to cost two plain method calls and two counter increments per
acquisition.  Document-granularity locking uses a fixed array of *lock
stripes* (record ids hash onto one of :data:`_STRIPE_COUNT` reader/writer
locks) instead of a per-record lock registry -- no allocation, no registry
lock, bounded memory, and the same correctness guarantee (two operations on
the same record always share a stripe; distinct records rarely do).  Guard
objects are pre-created per stripe and mode, and the reader/writer lock only
notifies waiters when someone is actually waiting.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum

_STRIPE_COUNT = 64


class LockGranularity(Enum):
    """Granularity at which an engine serialises writers."""

    COLLECTION = "collection"
    DOCUMENT = "document"


class LockMode(Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class LockStats:
    """Counters describing how much contention the lock manager observed."""

    acquisitions: int = 0
    contentions: int = 0
    exclusive_acquisitions: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "acquisitions": self.acquisitions,
            "contentions": self.contentions,
            "exclusive_acquisitions": self.exclusive_acquisitions,
        }


class _RWLock:
    """A simple reader/writer lock (writer preference not required here)."""

    __slots__ = ("_condition", "_readers", "_writer", "_waiting")

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting = 0

    def acquire(self, mode: LockMode) -> bool:
        """Acquire the lock; returns True if it had to wait (contention)."""
        contended = False
        with self._condition:
            if mode is LockMode.SHARED:
                while self._writer:
                    contended = True
                    self._waiting += 1
                    self._condition.wait()
                    self._waiting -= 1
                self._readers += 1
            else:
                while self._writer or self._readers:
                    contended = True
                    self._waiting += 1
                    self._condition.wait()
                    self._waiting -= 1
                self._writer = True
        return contended

    def release(self, mode: LockMode) -> None:
        with self._condition:
            if mode is LockMode.SHARED:
                self._readers -= 1
            else:
                self._writer = False
            if self._waiting:
                self._condition.notify_all()


class _BatchWriteGuard:
    """Exclusive access for a whole batch in one acquisition round.

    Document-granularity engines serialise per stripe, so a batch touching
    many records must hold *every* stripe (plus the collection lock) to
    exclude concurrent per-document readers and writers.  Stripes are always
    taken in index order and single-document operations only ever hold one
    stripe at a time, so no cycle -- hence no deadlock -- is possible.
    """

    __slots__ = ("_manager", "_locks")

    def __init__(self, manager: "LockManager", locks: list[_RWLock]):
        self._manager = manager
        self._locks = locks

    def __enter__(self) -> "_BatchWriteGuard":
        contended = False
        for lock in self._locks:
            contended = lock.acquire(LockMode.EXCLUSIVE) or contended
        self._manager._record(contended, exclusive=True)
        return self

    def __exit__(self, *exc_info) -> None:
        for lock in reversed(self._locks):
            lock.release(LockMode.EXCLUSIVE)


class _LockGuard:
    """A pre-created context manager: two plain method calls per acquisition
    (``@contextmanager`` generators cost a frame switch each way).  Guards are
    stateless, so one shared instance per (lock, mode) serves every thread."""

    __slots__ = ("_manager", "_lock", "_mode", "_exclusive")

    def __init__(self, manager: "LockManager", lock: _RWLock, mode: LockMode):
        self._manager = manager
        self._lock = lock
        self._mode = mode
        self._exclusive = mode is LockMode.EXCLUSIVE

    def __enter__(self) -> "_LockGuard":
        contended = self._lock.acquire(self._mode)
        self._manager._record(contended, exclusive=self._exclusive)
        return self

    def __exit__(self, *exc_info) -> None:
        self._lock.release(self._mode)


@dataclass
class LockManager:
    """Grants shared/exclusive locks at the engine's granularity."""

    granularity: LockGranularity
    stats: LockStats = field(default_factory=LockStats)

    def __post_init__(self) -> None:
        self._collection_lock = _RWLock()
        self._collection_read = _LockGuard(self, self._collection_lock,
                                           LockMode.SHARED)
        self._collection_write = _LockGuard(self, self._collection_lock,
                                            LockMode.EXCLUSIVE)
        if self.granularity is LockGranularity.DOCUMENT:
            stripes = [_RWLock() for __ in range(_STRIPE_COUNT)]
            self._stripe_read = [_LockGuard(self, lock, LockMode.SHARED)
                                 for lock in stripes]
            self._stripe_write = [_LockGuard(self, lock, LockMode.EXCLUSIVE)
                                  for lock in stripes]
            self._batch_write = _BatchWriteGuard(
                self, [self._collection_lock, *stripes])
        else:
            self._stripe_read = None
            self._stripe_write = None
            self._batch_write = _BatchWriteGuard(self, [self._collection_lock])

    def read(self, document_id: str | None = None) -> _LockGuard:
        """Acquire a shared lock for a read (use as a context manager)."""
        if self._stripe_read is None or document_id is None:
            return self._collection_read
        return self._stripe_read[hash(document_id) % _STRIPE_COUNT]

    def write(self, document_id: str | None = None) -> _LockGuard:
        """Acquire an exclusive lock for a write at the engine's granularity."""
        if self._stripe_write is None or document_id is None:
            return self._collection_write
        return self._stripe_write[hash(document_id) % _STRIPE_COUNT]

    def write_batch(self) -> _BatchWriteGuard:
        """One exclusive acquisition round covering every document at once
        (batch inserts): excludes the collection lock and all stripes."""
        return self._batch_write

    def _record(self, contended: bool, exclusive: bool) -> None:
        stats = self.stats
        stats.acquisitions += 1
        if exclusive:
            stats.exclusive_acquisitions += 1
        if contended:
            stats.contentions += 1
