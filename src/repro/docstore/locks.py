"""Lock manager modelling the concurrency-control difference between engines.

The demo's central comparison hinges on lock granularity:

* ``mmapv1`` takes a *collection-level* lock for writes -- concurrent writers
  to the same collection serialise.
* ``wiredTiger`` uses *document-level* concurrency -- writers only conflict
  when they touch the same document.

The :class:`LockManager` implements both granularities for functional
correctness (used when client threads drive the store concurrently), and
additionally keeps contention counters -- including real wall-clock wait
time -- that the concurrency benchmark (E14) reports as the contended
hot-path profile.

**Latch hierarchy and lock ordering (PR 6).**  Locks form an explicit
two-level hierarchy per collection and are always acquired top-down:

1. the *collection* reader/writer lock, then
2. one of :data:`_STRIPE_COUNT` *stripe* reader/writer locks (record ids
   hash onto stripes).

Acquisition shapes:

* **document-granularity write** (wiredTiger): collection SHARED + the
  record's stripe EXCLUSIVE.  Writers to different documents overlap; the
  shared collection hold keeps batch/DDL writers out.
* **collection-granularity write** (mmapv1): collection EXCLUSIVE only.
* **batch write** (``write_batch``, both granularities): collection
  EXCLUSIVE only.  Single-document writers hold the collection lock SHARED,
  so a batch excludes every one of them without touching any stripe.
* **read**: collection SHARED (collection granularity) or stripe SHARED
  (document granularity).  The engines' *point-read* paths are latch-free
  (immutable copy-on-write documents and a copy-on-write B-tree make torn
  reads impossible), so the hot read path never enters this layer at all;
  ``read()`` remains for callers that want explicit read stability.

No acquisition ever takes a second stripe while holding one, and stripes
are only ever taken *after* the collection lock -- the hierarchy is acyclic,
hence deadlock-free.  Layers above may nest further latches strictly inside
a held stripe/collection lock (collection -> stripe -> index latch ->
engine-internal mutation latch), preserving the total order.

Hot-path design: guard objects are pre-created per stripe and mode, the
reader/writer lock only notifies waiters when someone is actually waiting,
and wait time is measured only on the contended path (the uncontended
acquisition pays two plain method calls and a few counter updates).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum

_STRIPE_COUNT = 64


class LockGranularity(Enum):
    """Granularity at which an engine serialises writers."""

    COLLECTION = "collection"
    DOCUMENT = "document"


@dataclass
class LockStats:
    """Counters describing how much contention the lock manager observed.

    ``wait_seconds`` is real wall-clock time spent blocked on contended
    acquisitions -- the direct measure of serialisation the concurrency
    benchmark profiles.  Updates go through :meth:`record` under an internal
    lock so concurrent acquisitions never lose counts.
    """

    acquisitions: int = 0
    contentions: int = 0
    exclusive_acquisitions: int = 0
    wait_seconds: float = 0.0

    def __post_init__(self) -> None:
        self._mutex = threading.Lock()
        self._thread_wait = threading.local()

    def record(self, waited: float, exclusive: bool) -> None:
        with self._mutex:
            self.acquisitions += 1
            if exclusive:
                self.exclusive_acquisitions += 1
            if waited:
                self.contentions += 1
                self.wait_seconds += waited
        if waited:
            local = self._thread_wait
            local.total = getattr(local, "total", 0.0) + waited

    def thread_wait_seconds(self) -> float:
        """Cumulative wall-clock wait recorded by the *calling* thread.

        The profiler diffs this around an operation to attribute exactly the
        lock wait its own thread incurred, without racing other threads'
        contentions into the span.
        """
        return getattr(self._thread_wait, "total", 0.0)

    def snapshot(self) -> dict[str, float]:
        with self._mutex:
            return {
                "acquisitions": self.acquisitions,
                "contentions": self.contentions,
                "exclusive_acquisitions": self.exclusive_acquisitions,
                "wait_seconds": self.wait_seconds,
            }


class LockMode(Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class _RWLock:
    """A simple reader/writer lock (writer preference not required here)."""

    __slots__ = ("_condition", "_readers", "_writer", "_waiting")

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting = 0

    def acquire(self, mode: LockMode) -> float:
        """Acquire the lock; returns the seconds spent waiting (0.0 when
        the acquisition was uncontended)."""
        started = 0.0
        with self._condition:
            if mode is LockMode.SHARED:
                while self._writer:
                    if not started:
                        started = time.perf_counter()
                    self._waiting += 1
                    self._condition.wait()
                    self._waiting -= 1
                self._readers += 1
            else:
                while self._writer or self._readers:
                    if not started:
                        started = time.perf_counter()
                    self._waiting += 1
                    self._condition.wait()
                    self._waiting -= 1
                self._writer = True
        return time.perf_counter() - started if started else 0.0

    def release(self, mode: LockMode) -> None:
        with self._condition:
            if mode is LockMode.SHARED:
                self._readers -= 1
            else:
                self._writer = False
            if self._waiting:
                self._condition.notify_all()


class _LockGuard:
    """A pre-created context manager: two plain method calls per acquisition
    (``@contextmanager`` generators cost a frame switch each way).  Guards are
    stateless, so one shared instance per (lock, mode) serves every thread."""

    __slots__ = ("_manager", "_lock", "_mode", "_exclusive")

    def __init__(self, manager: "LockManager", lock: _RWLock, mode: LockMode):
        self._manager = manager
        self._lock = lock
        self._mode = mode
        self._exclusive = mode is LockMode.EXCLUSIVE

    def __enter__(self) -> "_LockGuard":
        waited = self._lock.acquire(self._mode)
        self._manager.stats.record(waited, exclusive=self._exclusive)
        return self

    def __exit__(self, *exc_info) -> None:
        self._lock.release(self._mode)


class _DocumentWriteGuard:
    """Collection SHARED + one stripe EXCLUSIVE, in hierarchy order.

    The single-document write shape for document-granularity engines: the
    shared collection hold lets disjoint writers overlap while excluding
    batch/DDL writers (who take the collection lock exclusively), and the
    exclusive stripe serialises writers of the same record.  Stateless, so
    one pre-created instance per stripe serves every thread.
    """

    __slots__ = ("_manager", "_collection_lock", "_stripe_lock")

    def __init__(self, manager: "LockManager", collection_lock: _RWLock,
                 stripe_lock: _RWLock):
        self._manager = manager
        self._collection_lock = collection_lock
        self._stripe_lock = stripe_lock

    def __enter__(self) -> "_DocumentWriteGuard":
        waited = self._collection_lock.acquire(LockMode.SHARED)
        waited += self._stripe_lock.acquire(LockMode.EXCLUSIVE)
        self._manager.stats.record(waited, exclusive=True)
        return self

    def __exit__(self, *exc_info) -> None:
        self._stripe_lock.release(LockMode.EXCLUSIVE)
        self._collection_lock.release(LockMode.SHARED)


@dataclass
class LockManager:
    """Grants shared/exclusive locks at the engine's granularity."""

    granularity: LockGranularity
    stats: LockStats = field(default_factory=LockStats)

    def __post_init__(self) -> None:
        self._collection_lock = _RWLock()
        self._collection_read = _LockGuard(self, self._collection_lock,
                                           LockMode.SHARED)
        self._collection_write = _LockGuard(self, self._collection_lock,
                                            LockMode.EXCLUSIVE)
        # The batch shape is collection EXCLUSIVE for both granularities:
        # document-granularity single-doc writers hold the collection lock
        # SHARED, so exclusivity over the collection lock alone excludes all
        # of them -- no stripe sweep needed.
        self._batch_write = self._collection_write
        if self.granularity is LockGranularity.DOCUMENT:
            stripes = [_RWLock() for __ in range(_STRIPE_COUNT)]
            self._stripe_read = [_LockGuard(self, lock, LockMode.SHARED)
                                 for lock in stripes]
            self._doc_write = [
                _DocumentWriteGuard(self, self._collection_lock, lock)
                for lock in stripes
            ]
        else:
            self._stripe_read = None
            self._doc_write = None

    def read(self, document_id: str | None = None) -> _LockGuard:
        """Acquire a shared lock for a read (use as a context manager).

        The engines' point-read hot path is latch-free and does not call
        this; it exists for callers that need explicit read stability
        against collection-exclusive phases.
        """
        if self._stripe_read is None or document_id is None:
            return self._collection_read
        return self._stripe_read[hash(document_id) % _STRIPE_COUNT]

    def write(self, document_id: str | None = None):
        """Exclusive access for one document write at the engine's granularity.

        Document granularity returns the collection-SHARED + stripe-EXCLUSIVE
        pair; collection granularity (or no document id) the collection
        EXCLUSIVE lock.
        """
        if self._doc_write is None or document_id is None:
            return self._collection_write
        return self._doc_write[hash(document_id) % _STRIPE_COUNT]

    def write_batch(self) -> _LockGuard:
        """One exclusive acquisition covering every document at once (batch
        inserts, DDL): the collection lock EXCLUSIVE, which excludes readers,
        single-document writers (they hold it SHARED) and other batches."""
        return self._batch_write
