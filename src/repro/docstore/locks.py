"""Lock manager modelling the concurrency-control difference between engines.

The demo's central comparison hinges on lock granularity:

* ``mmapv1`` takes a *collection-level* lock for writes -- concurrent writers
  to the same collection serialise.
* ``wiredTiger`` uses *document-level* concurrency -- writers only conflict
  when they touch the same document.

The :class:`LockManager` implements both granularities for functional
correctness (used when agents drive the store from multiple threads), and
additionally keeps contention counters that the cost model uses to translate
blocking into simulated latency for the analytic concurrency model.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum


class LockGranularity(Enum):
    """Granularity at which an engine serialises writers."""

    COLLECTION = "collection"
    DOCUMENT = "document"


class LockMode(Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class LockStats:
    """Counters describing how much contention the lock manager observed."""

    acquisitions: int = 0
    contentions: int = 0
    exclusive_acquisitions: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "acquisitions": self.acquisitions,
            "contentions": self.contentions,
            "exclusive_acquisitions": self.exclusive_acquisitions,
        }


class _RWLock:
    """A simple reader/writer lock (writer preference not required here)."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False

    def acquire(self, mode: LockMode) -> bool:
        """Acquire the lock; returns True if it had to wait (contention)."""
        contended = False
        with self._condition:
            if mode is LockMode.SHARED:
                while self._writer:
                    contended = True
                    self._condition.wait()
                self._readers += 1
            else:
                while self._writer or self._readers:
                    contended = True
                    self._condition.wait()
                self._writer = True
        return contended

    def release(self, mode: LockMode) -> None:
        with self._condition:
            if mode is LockMode.SHARED:
                self._readers -= 1
            else:
                self._writer = False
            self._condition.notify_all()


@dataclass
class LockManager:
    """Grants shared/exclusive locks at the engine's granularity."""

    granularity: LockGranularity
    stats: LockStats = field(default_factory=LockStats)

    def __post_init__(self) -> None:
        self._collection_lock = _RWLock()
        self._document_locks: dict[str, _RWLock] = {}
        self._registry_lock = threading.Lock()

    @contextmanager
    def read(self, document_id: str | None = None):
        """Acquire a shared lock for a read."""
        lock = self._select_lock(document_id)
        contended = lock.acquire(LockMode.SHARED)
        self._record(contended, exclusive=False)
        try:
            yield
        finally:
            lock.release(LockMode.SHARED)

    @contextmanager
    def write(self, document_id: str | None = None):
        """Acquire an exclusive lock for a write at the engine's granularity."""
        lock = self._select_lock(document_id)
        contended = lock.acquire(LockMode.EXCLUSIVE)
        self._record(contended, exclusive=True)
        try:
            yield
        finally:
            lock.release(LockMode.EXCLUSIVE)

    def _select_lock(self, document_id: str | None) -> _RWLock:
        if self.granularity is LockGranularity.COLLECTION or document_id is None:
            return self._collection_lock
        with self._registry_lock:
            return self._document_locks.setdefault(document_id, _RWLock())

    def _record(self, contended: bool, exclusive: bool) -> None:
        self.stats.acquisitions += 1
        if exclusive:
            self.stats.exclusive_acquisitions += 1
        if contended:
            self.stats.contentions += 1
