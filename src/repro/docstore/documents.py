"""Document validation, identifier handling and size accounting.

Documents are plain dictionaries restricted to JSON-compatible values (the
subset of BSON the benchmarks use).  Every document carries an ``_id`` field
which is generated when absent.  :func:`document_size` approximates the BSON
wire size; both storage engines use it to drive their space and I/O cost
accounting.

Hot-path helpers (the copy-on-write write/read boundary):

* :func:`freeze_document` validates, deep-copies and sizes a document in a
  *single* recursive walk.  The collection write boundary calls it once per
  write to produce the canonical stored document -- engines store that object
  directly and never copy again.
* :func:`measure_document` validates and sizes a document the caller already
  owns exclusively (the update path: :func:`~repro.docstore.update_ops.apply_update`
  returns a fresh, unaliased document, so re-copying it would be waste).
* :func:`clone_document` is the defensive copy the *client surface* hands
  out -- a fast recursive copy specialised to JSON-like values (no ``copy``
  module dispatch or memoisation), applied exactly once per returned
  document.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

from repro.errors import DocumentStoreError

_COUNTER = itertools.count(1)
_COUNTER_LOCK = threading.Lock()


def new_object_id() -> str:
    """Return a new unique document identifier.

    Identifiers are sequential (``oid-1``, ``oid-2`` ...) rather than random
    so that test fixtures and workload traces are reproducible.
    """
    with _COUNTER_LOCK:
        value = next(_COUNTER)
    return f"oid-{value}"


def validate_document(document: Any) -> dict[str, Any]:
    """Validate a document: a dict with string keys and JSON-compatible values."""
    if not isinstance(document, dict):
        raise DocumentStoreError(
            f"documents must be dictionaries, got {type(document).__name__}"
        )
    _validate_value(document, path="")
    return document


def _validate_value(value: Any, path: str) -> None:
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, list):
        for position, item in enumerate(value):
            _validate_value(item, f"{path}[{position}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise DocumentStoreError(
                    f"document keys must be strings (at {path or '<root>'}), got {key!r}"
                )
            if key.startswith("$"):
                raise DocumentStoreError(
                    f"field names may not start with '$' (at {path}.{key})"
                )
            _validate_value(item, f"{path}.{key}" if path else key)
        return
    raise DocumentStoreError(
        f"unsupported value type {type(value).__name__} at {path or '<root>'}"
    )


def with_id(document: dict[str, Any]) -> dict[str, Any]:
    """Return a shallow copy of ``document`` guaranteed to carry an ``_id``."""
    if "_id" in document:
        return dict(document)
    copied = dict(document)
    copied["_id"] = new_object_id()
    return copied


def document_size(document: Any) -> int:
    """Approximate the serialised size of ``document`` in bytes."""
    if document is None:
        return 1
    if isinstance(document, bool):
        return 1
    if isinstance(document, int):
        return 8
    if isinstance(document, float):
        return 8
    if isinstance(document, str):
        return len(document.encode("utf-8")) + 5
    if isinstance(document, list):
        return 5 + sum(document_size(item) + 2 for item in document)
    if isinstance(document, dict):
        return 5 + sum(
            len(key.encode("utf-8")) + 2 + document_size(value)
            for key, value in document.items()
        )
    raise DocumentStoreError(f"cannot size value of type {type(document).__name__}")


def freeze_document(document: dict[str, Any]) -> tuple[dict[str, Any], int]:
    """Validate, deep-copy and size ``document`` in one recursive walk.

    Returns ``(frozen, size)`` where ``frozen`` is the canonical stored copy
    (sharing nothing mutable with the input) and ``size`` equals
    ``document_size(frozen)``.  This is the write boundary of the
    copy-on-write document protocol: the frozen object is stored by the
    engine as-is, indexed as-is and captured by the oplog as-is, and is
    never mutated in place afterwards.
    """
    if not isinstance(document, dict):
        raise DocumentStoreError(
            f"documents must be dictionaries, got {type(document).__name__}"
        )
    return _freeze_dict(document, "")


def _freeze_dict(value: dict[str, Any], path: str) -> tuple[dict[str, Any], int]:
    copied: dict[str, Any] = {}
    size = 5
    for key, item in value.items():
        if not isinstance(key, str):
            raise DocumentStoreError(
                f"document keys must be strings (at {path or '<root>'}), got {key!r}"
            )
        if key.startswith("$"):
            raise DocumentStoreError(
                f"field names may not start with '$' (at {path}.{key})"
            )
        child, child_size = _freeze_value(item, f"{path}.{key}" if path else key)
        copied[key] = child
        size += len(key.encode("utf-8")) + 2 + child_size
    return copied, size


def _freeze_value(value: Any, path: str) -> tuple[Any, int]:
    if value is None or value is True or value is False:
        return value, 1
    if isinstance(value, str):
        return value, len(value.encode("utf-8")) + 5
    if isinstance(value, (int, float)):
        return value, 8
    if isinstance(value, list):
        copied_list: list[Any] = []
        size = 5
        for position, item in enumerate(value):
            child, child_size = _freeze_value(item, f"{path}[{position}]")
            copied_list.append(child)
            size += child_size + 2
        return copied_list, size
    if isinstance(value, dict):
        return _freeze_dict(value, path)
    raise DocumentStoreError(
        f"unsupported value type {type(value).__name__} at {path or '<root>'}"
    )


def measure_document(document: dict[str, Any]) -> int:
    """Validate and size a document the caller exclusively owns (one walk).

    Used by the update path: :func:`~repro.docstore.update_ops.apply_update`
    already returns a fresh, unaliased document, so freezing it again would
    copy for nothing.  Raises on invalid documents exactly like
    :func:`validate_document`.
    """
    if not isinstance(document, dict):
        raise DocumentStoreError(
            f"documents must be dictionaries, got {type(document).__name__}"
        )
    return _measure_dict(document, "")


def _measure_dict(value: dict[str, Any], path: str) -> int:
    size = 5
    for key, item in value.items():
        if not isinstance(key, str):
            raise DocumentStoreError(
                f"document keys must be strings (at {path or '<root>'}), got {key!r}"
            )
        if key.startswith("$"):
            raise DocumentStoreError(
                f"field names may not start with '$' (at {path}.{key})"
            )
        size += len(key.encode("utf-8")) + 2 + _measure_value(
            item, f"{path}.{key}" if path else key)
    return size


def _measure_value(value: Any, path: str) -> int:
    if value is None or value is True or value is False:
        return 1
    if isinstance(value, str):
        return len(value.encode("utf-8")) + 5
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, list):
        size = 5
        for position, item in enumerate(value):
            size += _measure_value(item, f"{path}[{position}]") + 2
        return size
    if isinstance(value, dict):
        return _measure_dict(value, path)
    raise DocumentStoreError(
        f"unsupported value type {type(value).__name__} at {path or '<root>'}"
    )


def clone_document(value: Any) -> Any:
    """Fast deep copy specialised to validated JSON-like document values.

    This is the single defensive copy the client surface applies to every
    document it returns; scalars are immutable and shared.  Frozen documents
    contain only plain ``dict``/``list`` containers (``freeze_document``
    rebuilds them), so exact ``type`` checks inlined at each level are safe
    and markedly faster than ``isinstance`` dispatch per scalar.
    """
    tp = type(value)
    if tp is dict:
        return {
            key: (item if type(item) is not dict and type(item) is not list
                  else clone_document(item))
            for key, item in value.items()
        }
    if tp is list:
        return [item if type(item) is not dict and type(item) is not list
                else clone_document(item)
                for item in value]
    return value


def get_path(document: dict[str, Any], path: str) -> tuple[bool, Any]:
    """Resolve a dotted ``path`` in ``document``.

    Returns ``(found, value)``; ``found`` is False when any intermediate
    segment is missing or not a dictionary/list.
    """
    current: Any = document
    for segment in path.split("."):
        if isinstance(current, dict):
            if segment not in current:
                return False, None
            current = current[segment]
        elif isinstance(current, list):
            if not segment.isdigit() or int(segment) >= len(current):
                return False, None
            current = current[int(segment)]
        else:
            return False, None
    return True, current


def set_path(document: dict[str, Any], path: str, value: Any) -> None:
    """Set ``value`` at dotted ``path``, creating intermediate objects."""
    segments = path.split(".")
    current: Any = document
    for segment in segments[:-1]:
        if isinstance(current, list) and segment.isdigit():
            index = int(segment)
            while len(current) <= index:
                current.append({})
            current = current[index]
            continue
        if not isinstance(current, dict):
            raise DocumentStoreError(f"cannot descend into {segment!r} on {path!r}")
        if segment not in current:
            current[segment] = {}
        elif not isinstance(current[segment], (dict, list)):
            raise DocumentStoreError(
                f"cannot set {path!r}: {segment!r} is not a document or array"
            )
        current = current[segment]
    last = segments[-1]
    if isinstance(current, list) and last.isdigit():
        index = int(last)
        while len(current) <= index:
            current.append(None)
        current[index] = value
    elif isinstance(current, dict):
        current[last] = value
    else:
        raise DocumentStoreError(f"cannot set {path!r} on a scalar value")


def unset_path(document: dict[str, Any], path: str) -> bool:
    """Remove the value at dotted ``path``; returns True if something was removed."""
    segments = path.split(".")
    current: Any = document
    for segment in segments[:-1]:
        if isinstance(current, dict) and segment in current:
            current = current[segment]
        elif isinstance(current, list) and segment.isdigit() and int(segment) < len(current):
            current = current[int(segment)]
        else:
            return False
    last = segments[-1]
    if isinstance(current, dict) and last in current:
        del current[last]
        return True
    return False
