"""A sharded document-store cluster with a ``mongos``-style query router.

This package scales the single-server document store of
:mod:`repro.docstore` out to a cluster, the way MongoDB scales ``mongod``
processes behind ``mongos``:

* :mod:`~repro.docstore.sharding.cluster` --
  :class:`~repro.docstore.sharding.cluster.ShardedCluster` owns N
  :class:`~repro.docstore.server.DocumentServer` shards and mirrors the
  server surface, so ``DocumentClient(ShardedCluster(shards=4))`` works
  wherever ``DocumentClient(DocumentServer())`` did.
* :mod:`~repro.docstore.sharding.router` --
  :class:`~repro.docstore.sharding.router.QueryRouter` targets operations
  that pin the shard key to one shard and scatter-gathers everything else,
  merging per-shard simulated costs into ``OperationResult.shard_costs``.
* :mod:`~repro.docstore.sharding.executor` --
  :class:`~repro.docstore.sharding.executor.ShardExecutor` gives the router
  a persistent per-shard worker pool (mongos-connection-pool style), so
  fan-outs really run concurrently and multi-shard wall-clock tracks the
  slowest shard instead of the sum.
* :mod:`~repro.docstore.sharding.chunks` --
  :class:`~repro.docstore.sharding.chunks.ChunkManager` partitions the key
  space into chunks (``hash`` or ``range`` strategy) and splits chunks that
  grow past a document threshold.
* :mod:`~repro.docstore.sharding.balancer` --
  :class:`~repro.docstore.sharding.balancer.Balancer` migrates chunks (and
  their documents) between shards until chunk ownership is even.

Shard-aware workload parameters: :class:`~repro.workloads.runner.WorkloadSpec`
gains ``shards``, ``shard_key`` and ``shard_strategy``;
``DocumentBenchmark.for_spec`` builds a single server or a cluster from the
spec, so every YCSB core workload (A-F) runs unchanged against clusters.
"""

from repro.docstore.sharding.balancer import Balancer, Migration
from repro.docstore.sharding.chunks import (
    STRATEGIES,
    STRATEGY_HASH,
    STRATEGY_RANGE,
    Chunk,
    ChunkManager,
    hash_shard_key,
)
from repro.docstore.sharding.cluster import (
    RoutedCollection,
    ShardedCluster,
    ShardedDatabase,
    ShardingState,
)
from repro.docstore.sharding.executor import ShardExecutor
from repro.docstore.sharding.router import QueryRouter

__all__ = [
    "Balancer",
    "Migration",
    "Chunk",
    "ChunkManager",
    "hash_shard_key",
    "STRATEGIES",
    "STRATEGY_HASH",
    "STRATEGY_RANGE",
    "QueryRouter",
    "RoutedCollection",
    "ShardExecutor",
    "ShardedCluster",
    "ShardedDatabase",
    "ShardingState",
]
