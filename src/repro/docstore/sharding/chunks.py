"""Chunk bookkeeping for sharded namespaces.

A sharded collection's key space is partitioned into *chunks*, each owned by
exactly one shard.  Chunks live in a *routing space*:

* ``hash`` strategy: the routing point of a document is a deterministic
  64-bit hash of its shard-key value, so consecutive keys spread evenly
  across shards from the first insert (MongoDB's hashed shard keys).
* ``range`` strategy: the routing point is the raw shard-key value itself,
  which keeps key ranges together (range scans stay local) at the price of
  starting as one chunk that only spreads after splits and migrations.

The :class:`ChunkManager` owns the ordered chunk list of one namespace and
enforces the core invariant: chunks are contiguous, non-overlapping and
cover the whole routing space, so every key is owned by exactly one chunk.
Splitting is data driven -- callers hand the manager the routing points
actually present and oversized chunks are split at their median point, the
same shape as MongoDB's ``splitVector``.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterable

from repro.docstore.predicates import Interval
from repro.errors import DocumentStoreError

HASH_SPACE_BITS = 64
HASH_SPACE_SIZE = 1 << HASH_SPACE_BITS

STRATEGY_HASH = "hash"
STRATEGY_RANGE = "range"
STRATEGIES = (STRATEGY_HASH, STRATEGY_RANGE)


def hash_shard_key(value: Any) -> int:
    """Deterministic 64-bit routing hash of a shard-key value.

    ``repr`` plus md5 keeps the mapping stable across processes and runs
    (Python's built-in ``hash`` is salted for strings), which the seeded
    equivalence tests rely on.
    """
    digest = hashlib.md5(repr(value).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(eq=False)
class Chunk:
    """One contiguous slice ``[lower, upper)`` of the routing space.

    ``None`` bounds are the open ends of the space (minus/plus infinity).
    Chunks compare (and hash) by identity: the manager owns the single
    authoritative instance of every chunk.
    """

    lower: Any
    upper: Any
    shard_id: int

    def covers(self, point: Any) -> bool:
        """True when ``point`` falls inside this chunk's half-open range."""
        if self.lower is not None and point < self.lower:
            return False
        if self.upper is not None and point >= self.upper:
            return False
        return True

    def describe(self) -> dict[str, Any]:
        return {"lower": self.lower, "upper": self.upper, "shard": self.shard_id}


def _overlaps(chunk: Chunk, interval: Interval) -> bool:
    """True when the half-open chunk ``[lower, upper)`` intersects ``interval``."""
    if interval.high is not None and chunk.lower is not None:
        if interval.high < chunk.lower:
            return False
        if interval.high == chunk.lower and not interval.high_inclusive:
            return False
    if interval.low is not None and chunk.upper is not None:
        if interval.low >= chunk.upper:  # upper bound is exclusive
            return False
    return True


class ChunkManager:
    """The chunk map of one sharded namespace.

    Args:
        shard_count: number of shards in the cluster (used for the initial
            hash pre-split and to validate migration targets).
        strategy: ``"hash"`` or ``"range"``.
        split_threshold: a chunk holding more than this many documents is
            split during maintenance.
    """

    def __init__(self, shard_count: int, strategy: str = STRATEGY_HASH,
                 split_threshold: int = 64):
        if strategy not in STRATEGIES:
            raise DocumentStoreError(
                f"unknown sharding strategy {strategy!r}; supported: {STRATEGIES}"
            )
        if shard_count <= 0:
            raise DocumentStoreError("shard_count must be positive")
        if split_threshold <= 1:
            raise DocumentStoreError("split_threshold must be greater than 1")
        self.strategy = strategy
        self.shard_count = shard_count
        self.split_threshold = split_threshold
        self.splits_performed = 0
        # The chunk map is published as one immutable snapshot: a tuple of
        # ``(chunks, lower bounds)`` where the bounds are the lower bounds of
        # every chunk after the first (all non-None), kept in step so point
        # lookups bisect instead of scanning.  Readers load ``_snapshot``
        # once and can never observe a half-applied split; mutations build
        # fresh tuples under ``_mutation_lock`` and publish them with a
        # single atomic assignment.
        initial = tuple(self._initial_chunks())
        self._snapshot: tuple[tuple[Chunk, ...], tuple[Any, ...]] = (
            initial, tuple(chunk.lower for chunk in initial[1:])
        )
        self._mutation_lock = threading.Lock()

    @property
    def _chunks(self) -> tuple["Chunk", ...]:
        """The current chunk tuple (one consistent snapshot read)."""
        return self._snapshot[0]

    # -- routing -----------------------------------------------------------------

    def routing_point(self, shard_key_value: Any) -> Any:
        """Map a shard-key value into the routing space."""
        if self.strategy == STRATEGY_HASH:
            return hash_shard_key(shard_key_value)
        return shard_key_value

    def chunk_for(self, shard_key_value: Any) -> Chunk:
        """The unique chunk owning ``shard_key_value``."""
        point = self.routing_point(shard_key_value)
        # One snapshot load covers both the chunk tuple and its bounds --
        # reading them as separate attributes could mix two generations of
        # the map during a concurrent split.
        chunks, lower_bounds = self._snapshot
        chunk = chunks[bisect_right(lower_bounds, point)]
        if not chunk.covers(point):
            raise DocumentStoreError(
                f"no chunk covers routing point {point!r} (broken chunk map)"
            )
        return chunk

    def shard_for(self, shard_key_value: Any) -> int:
        """The shard owning ``shard_key_value``."""
        return self.chunk_for(shard_key_value).shard_id

    def shards_for_interval(self, interval: Interval) -> set[int] | None:
        """Shards owning chunks that overlap ``interval`` of shard-key values.

        Only the ``range`` strategy can target intervals (its routing points
        *are* the key values, so chunk bounds and interval bounds live in the
        same space); for hashed namespaces -- or when the interval bounds are
        not comparable with the chunk bounds -- the method returns ``None``
        and the caller falls back to scatter-gather.
        """
        if self.strategy != STRATEGY_RANGE:
            return None
        shards: set[int] = set()
        try:
            for chunk in self._chunks:
                if _overlaps(chunk, interval):
                    shards.add(chunk.shard_id)
        except TypeError:
            return None
        return shards

    def chunks(self) -> list[Chunk]:
        """All chunks ordered by lower bound."""
        return list(self._chunks)

    def chunks_on(self, shard_id: int) -> list[Chunk]:
        return [chunk for chunk in self._chunks if chunk.shard_id == shard_id]

    def chunk_counts(self) -> dict[int, int]:
        """Number of chunks per shard (including chunk-less shards)."""
        counts = {shard_id: 0 for shard_id in range(self.shard_count)}
        for chunk in self._chunks:
            counts[chunk.shard_id] += 1
        return counts

    # -- splitting ------------------------------------------------------------------

    def split_oversized(self, points_by_chunk: dict[int, list[Any]]) -> int:
        """Split every chunk holding more than ``split_threshold`` points.

        ``points_by_chunk`` maps chunk list indexes (as returned by
        :meth:`chunks`) to the routing points currently stored in that
        chunk.  Splits repeat until no splittable chunk is oversized;
        both halves stay on the parent's shard (the balancer moves them
        later, as in MongoDB).  Returns the number of splits performed.
        """
        pending = [(self._chunks[index], points)
                   for index, points in points_by_chunk.items()]
        performed = 0
        while pending:
            chunk, points = pending.pop()
            if len(points) <= self.split_threshold:
                continue
            midpoint = self._median_split_point(points)
            if midpoint is None:
                continue  # all points equal: the chunk cannot be divided
            left, right = self._split_at(chunk, midpoint)
            performed += 1
            lower_points = [point for point in points if point < midpoint]
            upper_points = [point for point in points if point >= midpoint]
            pending.append((left, lower_points))
            pending.append((right, upper_points))
        self.splits_performed += performed
        return performed

    def _split_at(self, chunk: Chunk, midpoint: Any) -> tuple[Chunk, Chunk]:
        if not chunk.covers(midpoint) or midpoint == chunk.lower:
            raise DocumentStoreError(
                f"split point {midpoint!r} does not divide chunk "
                f"[{chunk.lower!r}, {chunk.upper!r})"
            )
        with self._mutation_lock:
            chunks, lower_bounds = self._snapshot
            index = chunks.index(chunk)
            left = Chunk(chunk.lower, midpoint, chunk.shard_id)
            right = Chunk(midpoint, chunk.upper, chunk.shard_id)
            self._snapshot = (
                chunks[:index] + (left, right) + chunks[index + 1:],
                lower_bounds[:index] + (midpoint,) + lower_bounds[index:],
            )
        return left, right

    @staticmethod
    def _median_split_point(points: list[Any]) -> Any | None:
        """The median routing point, or None when the points cannot be divided.

        The split point must be strictly greater than the smallest point so
        that both halves end up non-empty.
        """
        ordered = sorted(points)
        median = ordered[len(ordered) // 2]
        if median > ordered[0]:
            return median
        for point in ordered:
            if point > ordered[0]:
                return point
        return None

    # -- migrations -----------------------------------------------------------------

    def assign(self, chunk: Chunk, shard_id: int) -> None:
        """Record that ``chunk`` now lives on ``shard_id`` (used by the balancer).

        The in-place ``shard_id`` write is a single atomic attribute store,
        visible through every published snapshot that contains the chunk.
        """
        if not 0 <= shard_id < self.shard_count:
            raise DocumentStoreError(f"shard {shard_id} does not exist")
        if chunk not in self._chunks:
            raise DocumentStoreError("cannot assign a chunk this manager does not own")
        chunk.shard_id = shard_id

    # -- invariants ----------------------------------------------------------------

    def validate(self) -> None:
        """Assert the chunk map is contiguous and covers the whole space."""
        if not self._chunks:
            raise DocumentStoreError("chunk map is empty")
        if self._chunks[0].lower is not None or self._chunks[-1].upper is not None:
            raise DocumentStoreError("chunk map does not cover the open ends")
        for previous, current in zip(self._chunks, self._chunks[1:]):
            if previous.upper != current.lower:
                raise DocumentStoreError(
                    f"chunk map has a gap/overlap between {previous.upper!r} "
                    f"and {current.lower!r}"
                )

    def owners_of(self, shard_key_values: Iterable[Any]) -> dict[Any, list[Chunk]]:
        """Map each value to every chunk covering it (exactly one when valid)."""
        owners: dict[Any, list[Chunk]] = {}
        for value in shard_key_values:
            point = self.routing_point(value)
            owners[value] = [chunk for chunk in self._chunks if chunk.covers(point)]
        return owners

    def describe(self) -> list[dict[str, Any]]:
        """JSON-compatible chunk table (for stats and the CLI)."""
        return [chunk.describe() for chunk in self._chunks]

    # -- internals --------------------------------------------------------------------

    def _initial_chunks(self) -> list[Chunk]:
        if self.strategy == STRATEGY_RANGE or self.shard_count == 1:
            return [Chunk(None, None, 0)]
        # Hashed namespaces are pre-split into one even slice per shard so
        # load spreads before any maintenance has run.
        width = HASH_SPACE_SIZE // self.shard_count
        bounds = [index * width for index in range(1, self.shard_count)]
        chunks = []
        lower: Any = None
        for shard_id, upper in enumerate(bounds + [None]):
            chunks.append(Chunk(lower, upper, shard_id))
            lower = upper
        return chunks
