"""The sharded document-store cluster.

A :class:`ShardedCluster` owns N :class:`~repro.docstore.server.DocumentServer`
shards plus, per sharded namespace, a chunk map
(:class:`~repro.docstore.sharding.chunks.ChunkManager`) and a
:class:`~repro.docstore.sharding.balancer.Balancer`.  All data access flows
through the cluster's :class:`~repro.docstore.sharding.router.QueryRouter`.

The cluster deliberately mirrors the :class:`DocumentServer` surface
(``database()`` / ``run_command()`` / ``drop_database()`` /
``server_status()``) so a :class:`~repro.docstore.client.DocumentClient` can
be handed a cluster wherever it previously took a server -- evaluation
clients, benchmarks and agents gain sharding without code changes.

Concurrency model: each shard has independent locks, so client threads
spread across shards contend far less than on one server.  The cluster's
:meth:`speedup` distributes the thread count over the shards and applies the
storage engine's Amdahl-style :class:`~repro.docstore.cost.ConcurrencyProfile`
per shard, capping the total at the thread count.
"""

from __future__ import annotations

import math
import threading
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field as dataclass_field
from typing import Any

from repro.docstore.collection import Collection, OperationResult
from repro.docstore.cost import CostParameters
from repro.docstore.documents import clone_document, get_path
from repro.docstore.observability import (
    MetricsRegistry,
    Profiler,
    merge_top,
    render_query_shape,
)
from repro.docstore.replication.replica_set import READ_PRIMARY, ReplicaSet
from repro.docstore.server import _ENGINE_FACTORIES, DocumentServer
from repro.docstore.sharding.balancer import Balancer, Migration
from repro.docstore.sharding.chunks import STRATEGIES, STRATEGY_HASH, ChunkManager
from repro.docstore.sharding.executor import ShardExecutor
from repro.docstore.sharding.router import QueryRouter
from repro.errors import DocumentStoreError, NotFoundError, NotPrimaryError


@dataclass
class ShardingState:
    """Routing metadata of one sharded namespace."""

    key: str
    manager: ChunkManager
    balancer: Balancer = dataclass_field(default_factory=Balancer)
    inserts_since_maintenance: int = 0
    documents_routed: int = 0

    def __post_init__(self) -> None:
        # ``+=`` on the insert counters is a read-modify-write; concurrent
        # router threads interleaving it would under-count and starve the
        # maintenance trigger.
        self._counter_lock = threading.Lock()
        # Held for the duration of a maintenance round.  ``auto_maintain``
        # only *tries* to take it: when another thread is already splitting
        # and balancing the namespace there is no point queueing a second
        # round behind it (it would rescan the same documents), so the
        # trigger is simply skipped.  Explicit ``maintain()`` calls block.
        self.maintenance_lock = threading.Lock()

    def note_insert(self) -> None:
        with self._counter_lock:
            self.inserts_since_maintenance += 1
            self.documents_routed += 1


class RoutedCollection:
    """The router-backed stand-in for a :class:`Collection`.

    Exposes the operation surface :class:`~repro.docstore.client.CollectionHandle`
    expects from its target, delegating every call to the cluster's router.
    """

    def __init__(self, cluster: "ShardedCluster", database: str, collection: str):
        self.cluster = cluster
        self.database = database
        self.name = collection

    # -- profiling --------------------------------------------------------------

    @contextmanager
    def _profiled(self, op: str, query: Any = None):
        """Router-level span for one routed operation.

        Only entered when the *cluster's* profiler is enabled; shard-side
        spans are recorded independently by each shard's own profiler (the
        mongos/mongod split).
        """
        shape = render_query_shape(query) if query is not None else None
        namespace = f"{self.database}.{self.name}"
        with self.cluster.profiler.operation(op, namespace, shape) as span:
            yield span

    def _finish_span(self, span: Any, result: OperationResult,
                     parallel: bool) -> None:
        """Fill a router span from the merged result: per-shard child spans
        (from ``shard_costs``, with measured ``wall_ms`` when the fan-out
        really dispatched), the straggler for parallel fan-outs, and the
        scatter/targeted classification."""
        span.note_result(result)
        if result.shard_costs:
            span.add_shard_children(result.shard_costs, parallel,
                                    wall_seconds=result.shard_wall_seconds or None)
            shard_children = sum(1 for child in span.children
                                 if child["shard"] != "balancer")
            span.targeting = ("scatter"
                              if shard_children == self.cluster.shard_count
                              and self.cluster.shard_count > 1
                              else "targeted")

    # -- writes -----------------------------------------------------------------

    def insert_one(self, document: dict[str, Any]) -> OperationResult:
        if not self.cluster.profiler.enabled:
            return self._router.insert_one(self.database, self.name, document)
        with self._profiled("insert") as span:
            result = self._router.insert_one(self.database, self.name, document)
            self._finish_span(span, result, parallel=False)
            return result

    def insert_many(self, documents: list[dict[str, Any]]) -> OperationResult:
        if not self.cluster.profiler.enabled:
            return self._router.insert_many(self.database, self.name, documents)
        with self._profiled("insert") as span:
            result = self._router.insert_many(self.database, self.name, documents)
            self._finish_span(span, result, parallel=False)
            return result

    def update_one(self, query: dict[str, Any], update: dict[str, Any]) -> OperationResult:
        if not self.cluster.profiler.enabled:
            return self._router.update_one(self.database, self.name, query, update)
        with self._profiled("update", query) as span:
            result = self._router.update_one(self.database, self.name, query, update)
            self._finish_span(span, result, parallel=False)
            return result

    def update_many(self, query: dict[str, Any], update: dict[str, Any]) -> OperationResult:
        if not self.cluster.profiler.enabled:
            return self._router.update_many(self.database, self.name, query, update)
        with self._profiled("update", query) as span:
            result = self._router.update_many(self.database, self.name, query, update)
            self._finish_span(span, result, parallel=True)
            return result

    def delete_one(self, query: dict[str, Any]) -> OperationResult:
        if not self.cluster.profiler.enabled:
            return self._router.delete_one(self.database, self.name, query)
        with self._profiled("delete", query) as span:
            result = self._router.delete_one(self.database, self.name, query)
            self._finish_span(span, result, parallel=False)
            return result

    def delete_many(self, query: dict[str, Any]) -> OperationResult:
        if not self.cluster.profiler.enabled:
            return self._router.delete_many(self.database, self.name, query)
        with self._profiled("delete", query) as span:
            result = self._router.delete_many(self.database, self.name, query)
            self._finish_span(span, result, parallel=True)
            return result

    # -- reads ----------------------------------------------------------------------

    def find_with_cost(self, query: dict[str, Any] | None = None,
                       limit: int | None = None) -> OperationResult:
        if not self.cluster.profiler.enabled:
            return self._router.find_with_cost(self.database, self.name,
                                               query or {}, limit=limit)
        with self._profiled("query", query or {}) as span:
            result = self._router.find_with_cost(self.database, self.name,
                                                 query or {}, limit=limit)
            self._finish_span(span, result, parallel=True)
            return result

    def find_one(self, query: dict[str, Any] | None = None) -> dict[str, Any] | None:
        result = self.find_with_cost(query or {}, limit=1)
        if not result.documents:
            return None
        return clone_document(result.documents[0])

    def count_documents(self, query: dict[str, Any] | None = None) -> int:
        if not self.cluster.profiler.enabled:
            return self._router.count_documents(self.database, self.name,
                                                query or {})
        with self._profiled("count", query or {}) as span:
            count = self._router.count_documents(self.database, self.name,
                                                 query or {})
            span.docs_returned = count
            return count

    def aggregate(self, pipeline: list[dict[str, Any]] | None = None) -> OperationResult:
        """Run an aggregation pipeline with shard pushdown (see the router)."""
        if not self.cluster.profiler.enabled:
            return self._router.aggregate(self.database, self.name, pipeline)
        with self._profiled("aggregate", pipeline or []) as span:
            result = self._router.aggregate(self.database, self.name, pipeline)
            self._finish_span(span, result, parallel=True)
            return result

    def distinct(self, field_path: str,
                 query: dict[str, Any] | None = None) -> list[Any]:
        """Distinct values of ``field_path`` across the targeted shards."""
        if not self.cluster.profiler.enabled:
            return self._router.distinct(self.database, self.name, field_path,
                                         query)
        with self._profiled("distinct", query or {}) as span:
            values = self._router.distinct(self.database, self.name, field_path,
                                           query)
            span.docs_returned = len(values)
            return values

    def explain(self, query: dict[str, Any] | list[dict[str, Any]] | None = None,
                limit: int | None = None) -> dict[str, Any]:
        """Routing decision plus the per-shard query plans.

        A pipeline (list of stages) reports the shard/router split and every
        shard's pushdown decisions instead of a single query plan.
        """
        if isinstance(query, list):
            return self._router.explain_pipeline(self.database, self.name, query)
        return self._router.explain(self.database, self.name, query or {},
                                    limit=limit)

    # -- index management ---------------------------------------------------------------

    def create_index(self, field_path: str, unique: bool = False) -> str:
        return self._router.create_index(self.database, self.name, field_path,
                                         unique=unique)

    def drop_index(self, field_path: str) -> bool:
        return self._router.drop_index(self.database, self.name, field_path)

    # -- statistics ----------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Merged ``collStats`` across shards plus routing metadata."""
        return self.cluster.collection_stats(self.database, self.name)

    @property
    def engine(self):
        """A representative engine (shard 0's) for concurrency/name lookups."""
        return self.cluster.shard_collection_on(0, self.database, self.name).engine

    def __len__(self) -> int:
        return self.count_documents({})

    def __repr__(self) -> str:
        return (f"RoutedCollection({self.database}.{self.name}, "
                f"shards={self.cluster.shard_count})")

    @property
    def _router(self) -> QueryRouter:
        return self.cluster.router


class ShardedDatabase:
    """A named database spanning every shard of the cluster."""

    def __init__(self, cluster: "ShardedCluster", name: str):
        self.cluster = cluster
        self.name = name

    def collection(self, name: str) -> RoutedCollection:
        """Return the routed handle for ``name`` (shards it on first use)."""
        self.cluster.sharding_state(self.name, name)
        return RoutedCollection(self.cluster, self.name, name)

    def drop_collection(self, name: str) -> bool:
        return self.cluster.drop_sharded_collection(self.name, name)

    def collection_names(self) -> list[str]:
        return self.cluster.collection_names(self.name)

    def stats(self) -> dict[str, Any]:
        """Merged ``dbStats`` across every shard."""
        merged = {"db": self.name, "collections": 0, "documents": 0, "storage_bytes": 0}
        seen: set[str] = set()
        for server in self.cluster.shards:
            if self.name not in server.database_names():
                continue
            stats = server.database(self.name).stats()
            merged["documents"] += stats["documents"]
            merged["storage_bytes"] += stats["storage_bytes"]
            seen.update(server.database(self.name).collection_names())
        merged["collections"] = len(seen)
        merged["shards"] = self.cluster.shard_count
        return merged

    def __getitem__(self, name: str) -> RoutedCollection:
        return self.collection(name)


class ShardedCluster:
    """N document servers behind one ``mongos``-style query router.

    Args:
        shards: number of shard servers to start.
        storage_engine: engine every shard runs (``"wiredtiger"``/``"mmapv1"``).
        shard_key: default shard key for namespaces not explicitly sharded.
        strategy: default placement strategy, ``"hash"`` or ``"range"``.
        split_threshold: chunk size (documents) that triggers a split.
        auto_maintenance: when True, chunk splitting and balancing run
            automatically after every ``split_threshold`` inserts into a
            namespace; when False, call :meth:`maintain` explicitly.
        replicas: members per shard; ``1`` (the default) runs plain
            :class:`DocumentServer` shards, larger values run each shard as
            a :class:`~repro.docstore.replication.replica_set.ReplicaSet`
            (with the router driving elections and retrying on failover).
        write_concern / read_preference / replication_lag: replica-set
            configuration applied to every shard (ignored for replicas=1).
        parallel_fanout: when True (the default) multi-shard fan-outs
            dispatch concurrently through the cluster's per-shard
            :class:`~repro.docstore.sharding.executor.ShardExecutor`; when
            False the router falls back to the serial shard loop (the
            measured baseline of benchmark E17).
        fanout_workers: worker threads per shard in the executor pool
            (spawned lazily on a shard's first fan-out).
        cost_parameters / engine_options: forwarded to every shard server.
    """

    def __init__(
        self,
        shards: int = 2,
        storage_engine: str = "wiredtiger",
        shard_key: str = "_id",
        strategy: str = STRATEGY_HASH,
        split_threshold: int = 64,
        auto_maintenance: bool = True,
        replicas: int = 1,
        write_concern: int | str = 1,
        read_preference: str = READ_PRIMARY,
        replication_lag: int = 0,
        parallel_fanout: bool = True,
        fanout_workers: int = 2,
        cost_parameters: CostParameters | None = None,
        **engine_options: Any,
    ):
        if shards <= 0:
            raise DocumentStoreError("a cluster needs at least one shard")
        if replicas <= 0:
            raise DocumentStoreError("a shard needs at least one replica")
        if strategy not in STRATEGIES:
            raise DocumentStoreError(
                f"unknown sharding strategy {strategy!r}; supported: {STRATEGIES}"
            )
        if replicas == 1:
            self.shards: list[DocumentServer | ReplicaSet] = [
                DocumentServer(storage_engine, cost_parameters=cost_parameters,
                               **engine_options)
                for __ in range(shards)
            ]
        else:
            # auto_elect is off: failover inside a cluster is the *router's*
            # job, which elects and retries (counting failover_retries).
            self.shards = [
                ReplicaSet(members=replicas, storage_engine=storage_engine,
                           set_name=f"shard{index}", write_concern=write_concern,
                           read_preference=read_preference,
                           replication_lag=replication_lag, auto_elect=False,
                           cost_parameters=cost_parameters, **engine_options)
                for index in range(shards)
            ]
        self.replicas = replicas
        self.storage_engine = storage_engine
        self.default_shard_key = shard_key
        self.default_strategy = strategy
        self.split_threshold = split_threshold
        self.auto_maintenance = auto_maintenance
        self.parallel_fanout = parallel_fanout
        # The cluster's parallel dispatch layer: one queue + worker pool per
        # shard, created with the cluster and shut down with it.  The
        # finalizer holds only the executor (via the bound method), never
        # the cluster, so the router<->cluster reference cycle still
        # collects; ``close()`` runs it early and is idempotent.
        self.executor = ShardExecutor(shards, workers_per_shard=fanout_workers)
        self._executor_finalizer = weakref.finalize(self, self.executor.close)
        self.router = QueryRouter(self)
        self._states: dict[tuple[str, str], ShardingState] = {}
        # Guards get-or-create on ``_states``: two threads first touching a
        # namespace concurrently must agree on one ShardingState (two chunk
        # maps for the same namespace would route the same key to different
        # shards).  Reentrant because ``sharding_state`` holds it across its
        # call into ``shard_collection``, which takes it again to publish.
        self._states_lock = threading.RLock()
        self._commands_executed = 0
        # Router-level observability (the mongos side): router spans carry
        # per-shard child spans; each shard keeps its own registry/profiler.
        self.metrics = MetricsRegistry()
        self.profiler = Profiler(self.metrics)

    # -- DocumentServer-compatible surface ----------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def database(self, name: str) -> ShardedDatabase:
        """Return the routed database called ``name``."""
        return ShardedDatabase(self, name)

    def drop_database(self, name: str) -> bool:
        # Drops fan out to every shard directly (not through the router's
        # per-operation retry), so heal dead shard primaries first.
        self.ensure_primaries()
        dropped = False
        for server in self.shards:
            dropped = server.drop_database(name) or dropped
        with self._states_lock:
            for key in [key for key in self._states if key[0] == name]:
                del self._states[key]
        return dropped

    def database_names(self) -> list[str]:
        names: set[str] = set()
        for server in self.shards:
            names.update(server.database_names())
        return sorted(names)

    def run_command(self, command: dict[str, Any]) -> dict[str, Any]:
        """Cluster-level commands: the server subset plus sharding commands.

        Extra commands over :meth:`DocumentServer.run_command`:
        ``listShards``, ``shardCollection`` (with ``key``/``strategy``
        fields) and ``balancerStatus``.
        """
        self._commands_executed += 1
        if "ping" in command:
            return {"ok": 1}
        if "buildInfo" in command:
            return {"ok": 1, "version": "4.0-sim", "sharded": True,
                    "shards": self.shard_count,
                    "storageEngines": sorted(_ENGINE_FACTORIES)}
        if "listShards" in command:
            return {"ok": 1, "shards": [
                {"id": f"shard{index}", "engine": server.storage_engine,
                 "databases": len(server.database_names())}
                for index, server in enumerate(self.shards)
            ]}
        if "shardCollection" in command:
            namespace = command["shardCollection"]
            db_name, __, coll_name = namespace.partition(".")
            state = self.shard_collection(
                db_name, coll_name,
                key=command.get("key", self.default_shard_key),
                strategy=command.get("strategy", self.default_strategy),
            )
            return {"ok": 1, "collectionsharded": namespace, "key": state.key,
                    "strategy": state.manager.strategy}
        if "balancerStatus" in command:
            return {"ok": 1, "migrations": sum(
                len(state.balancer.migrations) for state in self._states.values()
            )}
        if "replSetGetStatus" in command:
            if not self.replicated:
                return {"ok": 1, "set": None, "role": "standalone", "members": []}
            return {"ok": 1, "shards": {
                f"shard{index}": self.replica_set(index).replica_set_status()
                for index in range(self.shard_count)
            }}
        if "serverStatus" in command:
            return {"ok": 1, **self.server_status()}
        if "profile" in command:
            level = command["profile"]
            if level == -1:
                return {"ok": 1, "was": self.profiler.level,
                        "level": self.profiler.level,
                        "slowms": self.profiler.slow_ms}
            return {"ok": 1, **self.set_profiling(level,
                                                  slow_ms=command.get("slowms"))}
        if "currentOp" in command:
            return {"ok": 1, "inprog": self.current_ops()}
        if "top" in command:
            return {"ok": 1, "totals": self.top()}
        if "dbStats" in command:
            name = command["dbStats"]
            if name not in self.database_names():
                raise NotFoundError(f"database {name!r} does not exist")
            return {"ok": 1, **self.database(name).stats()}
        if "collStats" in command:
            namespace = command["collStats"]
            db_name, __, coll_name = namespace.partition(".")
            if (db_name, coll_name) not in self._states:
                raise NotFoundError(f"collection {namespace!r} does not exist")
            return {"ok": 1, **self.collection_stats(db_name, coll_name)}
        raise DocumentStoreError(f"unsupported command {sorted(command)!r}")

    def server_status(self) -> dict[str, Any]:
        """Cluster-wide status merging every shard's ``serverStatus``."""
        per_shard = [server.server_status() for server in self.shards]
        status = {
            "storageEngine": {"name": self.storage_engine},
            "sharded": True,
            "shards": self.shard_count,
            "replicas": self.replicas,
            "parallel_fanout": self.parallel_fanout,
            "fanout": {
                "workers": self.executor.active_workers(),
                "fanouts": self.executor.fanouts,
                "tasks_dispatched": self.executor.tasks_dispatched,
            },
            "commands": self._commands_executed,
            "databases": len(self.database_names()),
            "totalDocuments": sum(status["totalDocuments"] for status in per_shard),
            "chunks": sum(len(state.manager.chunks()) for state in self._states.values()),
            "migrations": sum(
                len(state.balancer.migrations) for state in self._states.values()
            ),
        }
        if self.replicated:
            replica_sets = [self.replica_set(index)
                            for index in range(self.shard_count)]
            status["failovers"] = sum(rs.failovers for rs in replica_sets)
            status["rolled_back_entries"] = sum(
                rs.rolled_back_entries for rs in replica_sets)
        status["metrics"] = self.metrics_snapshot()
        status["locks"] = self.locks_report()
        return status

    def __getitem__(self, name: str) -> ShardedDatabase:
        return self.database(name)

    # -- observability -----------------------------------------------------------------

    def set_profiling(self, level: int, slow_ms: float | None = None,
                      capacity: int | None = None) -> dict[str, Any]:
        """Set the profiling level on the router *and* every shard (and, for
        replicated shards, every member)."""
        result = self.profiler.set_profiling(level, slow_ms=slow_ms,
                                             capacity=capacity)
        for shard in self.shards:
            shard.set_profiling(level, slow_ms=slow_ms, capacity=capacity)
        return result

    def get_slow_ops(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Router and shard slow-op logs merged, ordered by start time.

        Router entries carry ``source: "router"`` (with per-shard child
        spans inline); shard entries carry ``source: "shardN"`` or
        ``"shardN/<member>"`` for replicated shards.
        """
        merged = [dict(entry, source="router")
                  for entry in self.profiler.slow_ops()]
        for index, shard in enumerate(self.shards):
            if isinstance(shard, ReplicaSet):
                # Member names already embed the shard ("shardN/memberM").
                merged.extend(shard.get_slow_ops())
            else:
                for entry in shard.get_slow_ops():
                    merged.append(dict(entry, source=f"shard{index}"))
        merged.sort(key=lambda entry: entry.get("started", 0.0))
        if limit is not None:
            merged = merged[-limit:]
        return merged

    def current_ops(self) -> list[dict[str, Any]]:
        ops = [dict(entry, source="router")
               for entry in self.profiler.current_ops()]
        for index, shard in enumerate(self.shards):
            for entry in shard.current_ops():
                tagged = dict(entry)
                if "source" not in tagged:  # plain server shard
                    tagged["source"] = f"shard{index}"
                ops.append(tagged)
        return ops

    def top(self) -> dict[str, Any]:
        """Per-namespace usage totals merged across the router and shards."""
        return merge_top([self.profiler.top()]
                         + [shard.top() for shard in self.shards])

    def metrics_snapshot(self) -> dict[str, Any]:
        """Router + shard registries merged.

        Counters intentionally layer (a routed query counts once at the
        router and once per contacted shard, exactly as mongos and mongod
        each count it); the planner rollup sums shard-side plan caches.
        """
        shard_snaps = [shard.metrics_snapshot() for shard in self.shards]
        merged = MetricsRegistry.merge([self.metrics.snapshot()] + shard_snaps)
        planner = {"entries": 0, "hits": 0, "misses": 0, "fast_id_plans": 0,
                   "collections": 0}
        recorded = self.profiler.slow_ops_recorded
        dropped = self.profiler.slow_ops_dropped
        for snap in shard_snaps:
            for key in planner:
                planner[key] += snap["planner"][key]
            recorded += snap["profiler"]["slow_ops_recorded"]
            dropped += snap["profiler"]["slow_ops_dropped"]
        merged["planner"] = planner
        merged["profiler"] = {
            "level": self.profiler.level,
            "slowms": self.profiler.slow_ms,
            "slow_ops_recorded": recorded,
            "slow_ops_dropped": dropped,
            "shards": self.shard_count,
        }
        return merged

    def locks_report(self) -> dict[str, dict[str, float]]:
        """Per-namespace lock statistics summed across every shard."""
        report: dict[str, dict[str, float]] = {}
        for shard in self.shards:
            for namespace, stats in shard.locks_report().items():
                slot = report.setdefault(namespace, {})
                for key, value in stats.items():
                    slot[key] = slot.get(key, 0) + value
        return report

    # -- sharding management -----------------------------------------------------------

    def shard_collection(self, database: str, collection: str, key: str | None = None,
                         strategy: str | None = None) -> ShardingState:
        """Explicitly shard ``database.collection`` with ``key``/``strategy``.

        Must happen before the namespace holds documents; re-sharding a
        populated namespace would orphan its chunk bookkeeping.
        """
        existing = self._states.get((database, collection))
        if existing is not None:
            populated = any(
                len(server.database(database).collection(collection)) > 0
                for server in self.shards
                if database in server.database_names()
                and collection in server.database(database).collection_names()
            )
            if populated:
                raise DocumentStoreError(
                    f"{database}.{collection} is already sharded and populated"
                )
        state = ShardingState(
            key=key or self.default_shard_key,
            manager=ChunkManager(self.shard_count,
                                 strategy=strategy or self.default_strategy,
                                 split_threshold=self.split_threshold),
        )
        with self._states_lock:
            self._states[(database, collection)] = state
        return state

    def sharding_state(self, database: str, collection: str) -> ShardingState:
        """The routing state of a namespace (sharded with defaults on first use)."""
        state = self._states.get((database, collection))
        if state is None:
            # Get-or-create under the lock: two threads racing the first
            # access of a namespace must not each build a chunk map.
            with self._states_lock:
                state = self._states.get((database, collection))
                if state is None:
                    state = self.shard_collection(database, collection)
        return state

    def shard_collection_on(self, shard_id: int, database: str,
                            collection: str) -> Collection:
        """The physical collection of one shard (router/balancer plumbing).

        With replicated shards this is the shard's
        :class:`~repro.docstore.replication.replica_set.ReplicatedCollection`,
        which speaks the same operation protocol.
        """
        return self.shards[shard_id].database(database).collection(collection)

    # -- replication management --------------------------------------------------------

    @property
    def replicated(self) -> bool:
        return self.replicas > 1

    def replica_set(self, shard_id: int) -> ReplicaSet:
        """The replica set backing one shard (replicated clusters only)."""
        shard = self.shards[shard_id]
        if not isinstance(shard, ReplicaSet):
            raise DocumentStoreError(
                f"shard {shard_id} is not replicated (replicas={self.replicas})"
            )
        return shard

    def ensure_shard_primary(self, shard_id: int) -> None:
        """Elect a new primary on one shard (router failover path)."""
        shard = self.shards[shard_id]
        if isinstance(shard, ReplicaSet):
            shard.elect()

    def drop_sharded_collection(self, database: str, collection: str) -> bool:
        self.ensure_primaries()
        dropped = False
        for server in self.shards:
            if database in server.database_names():
                dropped = server.database(database).drop_collection(collection) or dropped
        with self._states_lock:
            self._states.pop((database, collection), None)
        return dropped

    def collection_names(self, database: str) -> list[str]:
        names: set[str] = set()
        for server in self.shards:
            if database in server.database_names():
                names.update(server.database(database).collection_names())
        return sorted(names)

    # -- maintenance: splits and balancing ---------------------------------------------

    def ensure_primaries(self) -> None:
        """Make every replicated shard's primary usable (electing if needed).

        Maintenance scans and migrations touch every shard directly (not
        through the router's per-operation retry), so they heal first.
        """
        if not self.replicated:
            return
        for shard_id in range(self.shard_count):
            replica_set = self.replica_set(shard_id)
            try:
                replica_set.require_primary()
            except NotPrimaryError:
                replica_set.elect()

    def maintain(self, database: str, collection: str) -> dict[str, Any]:
        """Run one maintenance round: split oversized chunks, then balance.

        Returns a summary with the splits performed, the migrations run and
        their total ``simulated_seconds`` (each migration physically inserts
        and deletes its documents, so the time is real and callers must
        charge it -- the router bills it to the insert that triggered the
        round, the benchmark's load phase to the load total).
        """
        state = self.sharding_state(database, collection)
        with state.maintenance_lock:
            return self._maintain_locked(database, collection, state)

    def _maintain_locked(self, database: str, collection: str,
                         state: ShardingState) -> dict[str, Any]:
        """One maintenance round; caller holds ``state.maintenance_lock``."""
        self.ensure_primaries()
        splits = self.split_chunks(database, collection)
        migrations = self.balance(database, collection)
        with state._counter_lock:
            state.inserts_since_maintenance = 0
        return {
            "splits": splits,
            "migrations": [m.as_dict() for m in migrations],
            "simulated_seconds": sum(m.simulated_seconds for m in migrations),
        }

    def split_chunks(self, database: str, collection: str) -> int:
        """Split every oversized chunk of a namespace; returns the split count."""
        state = self.sharding_state(database, collection)
        chunks = state.manager.chunks()
        points_by_chunk: dict[int, list[Any]] = {}
        for point in self._routing_points(database, collection, state):
            for index, chunk in enumerate(chunks):
                if chunk.covers(point):
                    points_by_chunk.setdefault(index, []).append(point)
                    break
        return state.manager.split_oversized(points_by_chunk)

    def balance(self, database: str, collection: str) -> list[Migration]:
        """Run the balancer for a namespace; returns the migrations performed."""
        state = self.sharding_state(database, collection)
        collections = [
            self.shard_collection_on(shard_id, database, collection)
            for shard_id in range(self.shard_count)
        ]
        return state.balancer.balance(f"{database}.{collection}", state.key,
                                      state.manager, collections)

    def auto_maintain(self, database: str, collection: str) -> float:
        """Maintenance trigger the router fires after inserts.

        Each maintenance round scans the namespace, so the trigger backs
        off geometrically with the routed document count: rounds run after
        ``split_threshold`` inserts at first, then only once the namespace
        has grown by another ~50%.  That keeps the total maintenance cost
        O(N log N) over a load of N documents instead of O(N^2 / threshold).

        Returns the simulated seconds the round's chunk migrations cost
        (0.0 when no round ran), which the router charges to the insert
        that triggered it.
        """
        if not self.auto_maintenance:
            return 0.0
        state = self.sharding_state(database, collection)
        trigger = max(self.split_threshold, state.documents_routed // 2)
        if state.inserts_since_maintenance < trigger:
            return 0.0
        # Non-blocking: when another thread is already running a round for
        # this namespace, a second round queued behind it would rescan the
        # same documents for nothing -- skip and let the next insert retry.
        if not state.maintenance_lock.acquire(blocking=False):
            return 0.0
        try:
            round_summary = self._maintain_locked(database, collection, state)
        finally:
            state.maintenance_lock.release()
        return round_summary["simulated_seconds"]

    # -- statistics ---------------------------------------------------------------------

    def collection_stats(self, database: str, collection: str) -> dict[str, Any]:
        """Merged per-shard ``collStats`` plus chunk/balancer metadata."""
        state = self.sharding_state(database, collection)
        per_shard = []
        for shard_id in range(self.shard_count):
            stats = self.shard_collection_on(shard_id, database, collection).stats()
            stats["shard"] = f"shard{shard_id}"
            per_shard.append(stats)
        merged: dict[str, Any] = {
            "collection": collection,
            "engine": self.storage_engine,
            "sharded": True,
            "shard_key": state.key,
            "strategy": state.manager.strategy,
            "documents": sum(stats["documents"] for stats in per_shard),
            "storage_bytes": sum(stats["storage_bytes"] for stats in per_shard),
            "simulated_seconds": sum(stats["simulated_seconds"] for stats in per_shard),
            "chunks": len(state.manager.chunks()),
            # JSON-friendly keys: results carrying these stats are uploaded
            # to the control plane, where object keys must be strings.
            "chunk_distribution": {
                f"shard{shard_id}": count
                for shard_id, count in state.manager.chunk_counts().items()
            },
            "splits": state.manager.splits_performed,
            "migrations": len(state.balancer.migrations),
            "migration_seconds": sum(
                m.simulated_seconds for m in state.balancer.migrations
            ),
            "indexes": per_shard[0]["indexes"] if per_shard else [],
            "per_shard": per_shard,
        }
        return merged

    def chunk_map(self, database: str, collection: str) -> list[dict[str, Any]]:
        """The namespace's chunk table (for the CLI and the demo)."""
        return self.sharding_state(database, collection).manager.describe()

    # -- concurrency model ----------------------------------------------------------------

    def speedup(self, threads: int, write_ratio: float) -> float:
        """Cluster-level throughput speedup for ``threads`` client threads.

        Threads spread evenly over the shards; each shard applies its
        engine's concurrency profile to its slice of the threads, and the
        total is capped by the thread count (a thread can only keep one
        operation in flight).
        """
        if threads <= 1:
            return 1.0
        profile = _ENGINE_FACTORIES[self.storage_engine].concurrency
        threads_per_shard = max(1, math.ceil(threads / self.shard_count))
        per_shard = profile.speedup(threads_per_shard, write_ratio)
        return min(float(threads), per_shard * min(self.shard_count, threads))

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the fan-out worker pool.

        Optional -- the pool's daemon workers also stop when the cluster is
        garbage-collected (via the finalizer) or the process exits.  After
        closing, routed operations keep working with serial fan-out.
        """
        self._executor_finalizer()

    # -- internals -------------------------------------------------------------------------

    def _routing_points(self, database: str, collection: str,
                        state: ShardingState) -> list[Any]:
        points = []
        for shard_id in range(self.shard_count):
            engine = self.shard_collection_on(shard_id, database, collection).engine
            for __, document, __cost in engine.scan():
                found, value = get_path(document, state.key)
                if found:
                    points.append(state.manager.routing_point(value))
        return points

    def __repr__(self) -> str:
        return (f"ShardedCluster(shards={self.shard_count}, "
                f"engine={self.storage_engine!r})")
