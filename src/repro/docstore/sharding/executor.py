"""Per-shard worker pool: the cluster's real parallel dispatch layer.

A :class:`ShardExecutor` owns one dispatch queue (plus a small pool of
worker threads) per shard, mirroring how mongos keeps a connection pool
per downstream host.  The pool is created together with the cluster and
shut down with it; workers are spun up lazily the first time their shard
participates in a fan-out, so single-shard topologies never pay for
threads they cannot use.

``scatter(shard_ids, fn)`` dispatches ``fn(shard_id)`` to every listed
shard concurrently and returns the per-shard results *in the order the
shard ids were given* — callers pass them sorted, which is what keeps
sharded results merging deterministically (shard_id order) and therefore
document-for-document equal to a standalone server.  The calling thread
executes the first shard's task inline while workers run the rest, so a
fan-out costs at most ``len(shard_ids) - 1`` queue hand-offs.

Exception contract: every shard's task runs to completion even when a
sibling fails (matching a real scatter, where in-flight sub-operations
cannot be recalled).  Once all tasks have finished, the exception from
the **lowest-indexed failing shard** is re-raised on the calling thread,
so error surfacing is deterministic and the router's
``NotPrimaryError`` catch → elect → retry path (which runs *inside* the
per-shard task) behaves identically under parallel and serial dispatch.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Sequence

__all__ = ["ShardExecutor"]


class _Fanout:
    """Completion state for one scatter: a slot per shard for the result,
    measured wall-clock, and error, plus a latch the caller waits on."""

    __slots__ = ("results", "walls", "errors", "_remaining", "_lock", "_done")

    def __init__(self, count: int) -> None:
        self.results: list[Any] = [None] * count
        self.walls: list[float] = [0.0] * count
        self.errors: list[BaseException | None] = [None] * count
        self._remaining = count
        self._lock = threading.Lock()
        self._done = threading.Event()

    def run(self, slot: int, fn: Callable[[int], Any], shard_id: int) -> None:
        started = time.perf_counter()
        try:
            self.results[slot] = fn(shard_id)
        except BaseException as error:  # re-raised on the calling thread
            self.errors[slot] = error
        finally:
            self.walls[slot] = time.perf_counter() - started
            with self._lock:
                self._remaining -= 1
                if self._remaining == 0:
                    self._done.set()

    def wait(self) -> None:
        self._done.wait()


class ShardExecutor:
    """Persistent per-shard dispatch queues with daemon worker threads.

    ``workers_per_shard`` > 1 only matters when several client threads
    scatter at once: a single fan-out enqueues at most one task per
    shard, so one worker per shard already yields full parallelism for
    one caller, and extra workers let concurrent callers overlap their
    fan-outs instead of queueing behind each other.
    """

    def __init__(self, shard_count: int, workers_per_shard: int = 2) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        if workers_per_shard < 1:
            raise ValueError("workers_per_shard must be at least 1")
        self.shard_count = shard_count
        self.workers_per_shard = workers_per_shard
        self._queues = [queue.SimpleQueue() for _ in range(shard_count)]
        self._started = [0] * shard_count
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._closed = False
        self.fanouts = 0
        self.tasks_dispatched = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def active_workers(self) -> int:
        """Number of worker threads spawned so far (lazily grown)."""
        return sum(self._started)

    def scatter(
        self, shard_ids: Sequence[int], fn: Callable[[int], Any]
    ) -> tuple[list[Any], list[float]]:
        """Run ``fn(shard_id)`` on every shard concurrently.

        Returns ``(results, wall_seconds)``, both aligned with the given
        ``shard_ids`` order.  Falls back to serial inline execution when
        the pool is closed or only one shard is addressed.
        """
        if len(shard_ids) <= 1 or self._closed:
            return self.run_serial(shard_ids, fn)
        fanout = _Fanout(len(shard_ids))
        with self._lock:
            if self._closed:  # closed while we waited for the lock
                return self.run_serial(shard_ids, fn)
            self.fanouts += 1
            self.tasks_dispatched += len(shard_ids)
            for slot, shard_id in enumerate(shard_ids):
                if slot == 0:
                    continue  # the caller runs the first shard inline
                if self._started[shard_id] == 0:
                    self._spawn_workers(shard_id)
                self._queues[shard_id].put((fanout, slot, fn))
        fanout.run(0, fn, shard_ids[0])
        fanout.wait()
        for error in fanout.errors:  # lowest failing shard wins, deterministically
            if error is not None:
                raise error
        return fanout.results, fanout.walls

    def run_serial(
        self, shard_ids: Sequence[int], fn: Callable[[int], Any]
    ) -> tuple[list[Any], list[float]]:
        """Serial fallback with the same (results, walls) shape as scatter."""
        results: list[Any] = []
        walls: list[float] = []
        for shard_id in shard_ids:
            started = time.perf_counter()
            results.append(fn(shard_id))
            walls.append(time.perf_counter() - started)
        return results, walls

    def close(self) -> None:
        """Shut the pool down; later scatters run serially inline."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for shard_id, started in enumerate(self._started):
                for _ in range(started):
                    self._queues[shard_id].put(None)

    def _spawn_workers(self, shard_id: int) -> None:
        """Start the shard's workers on first use; caller holds the lock."""
        for index in range(self.workers_per_shard):
            thread = threading.Thread(
                target=self._worker,
                args=(shard_id,),
                name=f"shard{shard_id}-fanout-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._started[shard_id] = self.workers_per_shard

    def _worker(self, shard_id: int) -> None:
        tasks = self._queues[shard_id]
        while True:
            task = tasks.get()
            if task is None:
                return
            fanout, slot, fn = task
            fanout.run(slot, fn, shard_id)
