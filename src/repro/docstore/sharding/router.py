"""The query router: the ``mongos`` of the sharded cluster.

The router exposes the same operation surface as a
:class:`~repro.docstore.collection.Collection`, which lets the existing
:class:`~repro.docstore.client.DocumentClient` /
:class:`~repro.docstore.client.CollectionHandle` pair talk to a
:class:`~repro.docstore.sharding.cluster.ShardedCluster` exactly as it talks
to a single :class:`~repro.docstore.server.DocumentServer`.

Routing rules (the MongoDB ones, simplified).  The router shares the query
planner's predicate analysis (:mod:`repro.docstore.predicates`) to decide the
fan-out of every operation:

* the shard key pinned to one value (``$eq``) -> *targeted*: exactly the one
  shard owning that key's chunk;
* the shard key constrained to a point set (``$in``) -> targeted to the
  owning shards of those points;
* the shard key range-constrained on a **range-sharded** namespace ->
  targeted to the shards owning chunks overlapping the interval
  (:meth:`~repro.docstore.sharding.chunks.ChunkManager.shards_for_interval`);
* everything else (no shard-key constraint, or a range on a hashed key) ->
  *scatter-gather* across every shard.

Operations whose fan-out the analysis narrowed count as
``targeted_operations``; full fan-outs count as ``scatter_operations``.

Equivalence caveat (as on real ``mongos``): a single-document write that
does not pin the shard key (``update_one``/``delete_one`` on a non-key
predicate) affects exactly one matching document, but *which* one is
shard-probe order, which may differ from a single server's insertion-order
choice when several documents match.

Cost accounting and execution model: all multi-shard latency merging goes
through :func:`combine_shard_costs` -- fan-outs cost the slowest shard,
sequential probes accumulate every probed shard.  The execution matches the
model: every fan-out dispatches its shards concurrently through the
cluster's per-shard :class:`~repro.docstore.sharding.executor.ShardExecutor`
(a serial loop remains available behind ``parallel_fanout=False``), and the
determinism rule is that per-shard results are always merged in shard_id
order, which keeps sharded output reproducible and document-for-document
equal to a standalone server in either mode.  The per-shard breakdown flows
into ``OperationResult.shard_costs`` (simulated) and
``OperationResult.shard_wall_seconds`` (measured wall-clock per shard).

Failover handling: when shards are replica sets
(``ShardedCluster(replicas=M)``) the sets do not elect on their own -- a
shard whose primary died raises
:class:`~repro.errors.NotPrimaryError` and the *router* reacts, exactly once
per operation: it triggers the shard's election
(:meth:`ShardedCluster.ensure_shard_primary`) and retries the operation on
the new primary, counting the event in ``failover_retries``.  If no majority
is reachable the election raises :class:`~repro.errors.NoPrimaryError` and
the operation fails loudly instead of silently dropping writes.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Mapping

from repro.docstore.aggregation import (
    apply_raw_stages,
    combine_partial_groups,
    group_token,
    merge_shard_streams,
    split_pipeline,
)
from repro.docstore.collection import OperationResult
from repro.docstore.cursor import sort_key
from repro.docstore.documents import get_path, with_id
from repro.docstore.matching import equality_value
from repro.docstore.predicates import query_intervals
from repro.docstore.update_ops import is_update_document
from repro.errors import DocumentStoreError, NotPrimaryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docstore.collection import Collection
    from repro.docstore.sharding.cluster import ShardedCluster, ShardingState


def combine_shard_costs(shard_costs: Mapping[str, float], parallel: bool) -> float:
    """The single latency model for every multi-shard operation.

    Fan-out operations (scatter/targeted-subset reads, broadcast writes)
    contact their shards concurrently -- really, through the cluster's
    :class:`~repro.docstore.sharding.executor.ShardExecutor` -- so the
    merged simulated time is the *slowest* shard's cost (max).  Serial probes (``update_one`` /
    ``delete_one`` without a resolvable shard key stop at the first matching
    shard) visit shards one after another, so their merged time is the *sum*
    of every shard actually probed.  Routing both shapes through this one
    helper keeps the asymmetry deliberate rather than accidental.
    """
    if not shard_costs:
        return 0.0
    values = shard_costs.values()
    return sum(values) if not parallel else max(values)


class QueryRouter:
    """Routes collection operations of one cluster to its shards."""

    def __init__(self, cluster: "ShardedCluster"):
        self.cluster = cluster
        self.targeted_operations = 0
        self.scatter_operations = 0
        self.failover_retries = 0
        self.maintenance_seconds = 0.0
        # Guards the four counters above: they are read-modify-writes on
        # state shared by every client thread of the cluster.
        self._stats_lock = threading.Lock()

    # -- writes -----------------------------------------------------------------

    def insert_one(self, database: str, collection: str,
                   document: dict[str, Any]) -> OperationResult:
        state = self.cluster.sharding_state(database, collection)
        stored = with_id(document)
        found, value = get_path(stored, state.key)
        if not found:
            raise DocumentStoreError(
                f"document is missing the shard key {state.key!r} "
                f"of {database}.{collection}"
            )
        shard_id = state.manager.shard_for(value)
        result = self._run_on_shard(database, collection, shard_id,
                                    "insert_one", stored)
        with self._stats_lock:
            self.targeted_operations += 1
        result.shard_costs = {self._shard_name(shard_id): result.simulated_seconds}
        state.note_insert()
        maintenance_seconds = self.cluster.auto_maintain(database, collection)
        if maintenance_seconds:
            # The insert that pushed a chunk past its threshold pays for the
            # migrations of the maintenance round it triggered -- balancing
            # during a measured phase is not free.
            result.simulated_seconds += maintenance_seconds
            result.shard_costs["balancer"] = maintenance_seconds
            with self._stats_lock:
                self.maintenance_seconds += maintenance_seconds
        return result

    def insert_many(self, database: str, collection: str,
                    documents: list[dict[str, Any]]) -> OperationResult:
        combined = OperationResult()
        for document in documents:
            result = self.insert_one(database, collection, document)
            combined.inserted_ids.extend(result.inserted_ids)
            combined.simulated_seconds += result.simulated_seconds
            _merge_shard_costs(combined, result.shard_costs)
        return combined

    def update_one(self, database: str, collection: str, query: dict[str, Any],
                   update: dict[str, Any]) -> OperationResult:
        state = self.cluster.sharding_state(database, collection)
        self._check_shard_key_immutable(state.key, query, update)
        shard_ids, targeted = self._shards_for_query(state, query)
        self._note(targeted)
        if len(shard_ids) == 1:
            return self._single_shard(database, collection, shard_ids[0],
                                      "update_one", query, update)
        return self._probe_shards(database, collection, shard_ids,
                                  "update_one", query, update)

    def update_many(self, database: str, collection: str, query: dict[str, Any],
                    update: dict[str, Any]) -> OperationResult:
        state = self.cluster.sharding_state(database, collection)
        self._check_shard_key_immutable(state.key, query, update)
        shard_ids, targeted = self._shards_for_query(state, query)
        self._note(targeted)
        if len(shard_ids) == 1:
            return self._single_shard(database, collection, shard_ids[0],
                                      "update_many", query, update)
        return self._broadcast(database, collection, shard_ids,
                               "update_many", query, update)

    def delete_one(self, database: str, collection: str,
                   query: dict[str, Any]) -> OperationResult:
        state = self.cluster.sharding_state(database, collection)
        shard_ids, targeted = self._shards_for_query(state, query)
        self._note(targeted)
        if len(shard_ids) == 1:
            return self._single_shard(database, collection, shard_ids[0],
                                      "delete_one", query)
        return self._probe_shards(database, collection, shard_ids,
                                  "delete_one", query)

    def delete_many(self, database: str, collection: str,
                    query: dict[str, Any]) -> OperationResult:
        state = self.cluster.sharding_state(database, collection)
        shard_ids, targeted = self._shards_for_query(state, query)
        self._note(targeted)
        if len(shard_ids) == 1:
            return self._single_shard(database, collection, shard_ids[0],
                                      "delete_many", query)
        return self._broadcast(database, collection, shard_ids,
                               "delete_many", query)

    # -- reads ----------------------------------------------------------------------

    def find_with_cost(self, database: str, collection: str, query: dict[str, Any],
                       limit: int | None = None) -> OperationResult:
        state = self.cluster.sharding_state(database, collection)
        shard_ids, targeted = self._shards_for_query(state, query)
        self._note(targeted)
        merged = OperationResult()
        results, walls = self._fanout(database, collection, shard_ids,
                                      "find_with_cost", query, limit=limit)
        multi_shard = len(shard_ids) > 1
        for shard_id, result, wall in zip(shard_ids, results, walls):
            name = self._shard_name(shard_id)
            merged.documents.extend(result.documents)
            merged.shard_costs[name] = result.simulated_seconds
            if multi_shard:  # walls only describe real fan-out dispatches
                merged.shard_wall_seconds[name] = wall
        if len(shard_ids) > 1:
            # During an in-flight migration a document exists on donor and
            # recipient for a moment; a multi-shard read deduplicates by
            # ``_id`` so that window can never surface the same document
            # twice (single-shard targeted reads cannot see duplicates).
            # Identity is the type-tagged ``group_token``, the same identity
            # aggregation grouping uses -- ``str()`` would conflate ids of
            # different types such as ``1`` and ``"1"``.
            seen_ids: set[tuple] = set()
            unique: list[dict[str, Any]] = []
            for document in merged.documents:
                identity = group_token(document.get("_id"))
                if identity not in seen_ids:
                    seen_ids.add(identity)
                    unique.append(document)
            merged.documents = unique
        merged.simulated_seconds = combine_shard_costs(merged.shard_costs,
                                                       parallel=True)
        if limit is not None and len(shard_ids) > 1:
            merged.documents = _merge_limited(merged.documents, query, limit)
        merged.matched_count = len(merged.documents)
        return merged

    def aggregate(self, database: str, collection: str,
                  pipeline: list[dict[str, Any]] | None = None) -> OperationResult:
        """Run an aggregation pipeline with shard pushdown.

        The pipeline is rewritten by
        :func:`~repro.docstore.aggregation.split_pipeline` into a per-shard
        stage and a router merge stage (scatter--partial--merge): a pushed
        ``$group`` ships one partial accumulator-state row per group per
        shard, and a pushed ``$sort``/``$limit`` ships pre-sorted limited
        streams the router ordered-merges.  A leading ``$match`` drives
        shard targeting exactly like a ``find``.  Shards are contacted in
        parallel -- one dispatch per shard through the cluster's
        :class:`~repro.docstore.sharding.executor.ShardExecutor` (serial
        when ``parallel_fanout=False``) -- so the merged cost is the
        slowest shard's, and wall-clock tracks it under
        ``real_service_scale``.  Determinism rule: whatever order shard
        replies arrive in, partial rows and pre-sorted streams are merged
        in shard_id order, so the output equals a single server's exactly.
        """
        split = split_pipeline(pipeline)
        state = self.cluster.sharding_state(database, collection)
        shard_ids, targeted = self._shards_for_query(state, split.leading_query or {})
        self._note(targeted)
        merged = OperationResult()
        if not shard_ids:
            return merged  # contradictory leading match: nothing can match
        if len(shard_ids) == 1:
            # One owning shard sees every matching document: run the whole
            # pipeline there, merge-free (its group/sort order is already
            # the canonical one).
            return self._single_shard(database, collection, shard_ids[0],
                                      "aggregate", pipeline)
        if split.mode == "group":
            results, walls = self._fanout(database, collection, shard_ids,
                                          "aggregate_partial",
                                          split.shard_stages, split.group_spec)
            row_lists = [result.documents for result in results]
            documents = combine_partial_groups(row_lists, split.group_spec)
        else:
            results, walls = self._fanout(database, collection, shard_ids,
                                          "aggregate", split.shard_stages)
            shard_documents = [result.documents for result in results]
            documents = merge_shard_streams(shard_documents, split.sort_spec,
                                            split.merge_limit)
        for shard_id, result, wall in zip(shard_ids, results, walls):
            name = self._shard_name(shard_id)
            merged.shard_costs[name] = result.simulated_seconds
            merged.shard_wall_seconds[name] = wall
        merged.documents = apply_raw_stages(documents, split.router_stages)
        merged.matched_count = len(merged.documents)
        merged.simulated_seconds = combine_shard_costs(merged.shard_costs,
                                                       parallel=True)
        return merged

    def distinct(self, database: str, collection: str, field_path: str,
                 query: dict[str, Any] | None = None) -> list[Any]:
        """Distinct values across the targeted shards (degenerate ``$group``).

        Each shard returns its local deduplicated value list; the router
        unions them by canonical group token and re-sorts, so the result is
        identical to a single server's.
        """
        state = self.cluster.sharding_state(database, collection)
        query = query or {}
        shard_ids, targeted = self._shards_for_query(state, query)
        self._note(targeted)
        value_lists, _walls = self._fanout(database, collection, shard_ids,
                                           "distinct", field_path, query)
        seen: dict[tuple, Any] = {}
        for values in value_lists:  # union in shard_id order: deterministic
            for value in values:
                seen.setdefault(group_token(value), value)
        return [seen[token] for token in sorted(seen)]

    def count_documents(self, database: str, collection: str,
                        query: dict[str, Any]) -> int:
        state = self.cluster.sharding_state(database, collection)
        shard_ids, targeted = self._shards_for_query(state, query)
        self._note(targeted)
        counts, _walls = self._fanout(database, collection, shard_ids,
                                      "count_documents", query)
        return sum(counts)

    def explain(self, database: str, collection: str, query: dict[str, Any],
                limit: int | None = None) -> dict[str, Any]:
        """Cluster-level explain: routing decision plus every shard's plan."""
        state = self.cluster.sharding_state(database, collection)
        shard_ids, targeted = self._shards_for_query(state, query)
        shard_plans = {
            self._shard_name(shard_id): self._run_on_shard(
                database, collection, shard_id, "explain", query, limit=limit)
            for shard_id in shard_ids
        }
        return {
            "sharded": True,
            "collection": collection,
            "query": query,
            "shard_key": state.key,
            "strategy": state.manager.strategy,
            "targeting": "targeted" if targeted else "scatter",
            "shards": [self._shard_name(shard_id) for shard_id in shard_ids],
            "shard_count": self.cluster.shard_count,
            "shard_plans": shard_plans,
        }

    def explain_pipeline(self, database: str, collection: str,
                         pipeline: list[dict[str, Any]] | None = None) -> dict[str, Any]:
        """Cluster-level pipeline explain: the shard/router split plus every
        shard's per-stage pushdown report for its part of the pipeline."""
        split = split_pipeline(pipeline)
        state = self.cluster.sharding_state(database, collection)
        shard_ids, targeted = self._shards_for_query(state, split.leading_query or {})
        shard_pipeline = list(split.shard_stages)
        if split.mode == "group":
            shard_pipeline = shard_pipeline + [{"$group": split.group_spec}]
        shard_plans = {
            self._shard_name(shard_id): self._run_on_shard(
                database, collection, shard_id, "explain", shard_pipeline)
            for shard_id in shard_ids
        }
        return {
            "sharded": True,
            "collection": collection,
            "pipeline": list(pipeline or []),
            "shard_key": state.key,
            "strategy": state.manager.strategy,
            "targeting": "targeted" if targeted else "scatter",
            "shards": [self._shard_name(shard_id) for shard_id in shard_ids],
            "shard_count": self.cluster.shard_count,
            "split": {
                "mode": split.mode,
                "shard_stages": split.shard_stages,
                "partial_group": split.group_spec,
                "router_stages": split.router_stages,
                "merge_limit": split.merge_limit,
            },
            "shard_plans": shard_plans,
        }

    # -- index management ---------------------------------------------------------------

    def create_index(self, database: str, collection: str, field_path: str,
                     unique: bool = False) -> str:
        """Broadcast index creation to every shard.

        A unique index is only enforceable when it is prefixed by the shard
        key (each shard can only see its own documents), mirroring the
        MongoDB restriction.
        """
        state = self.cluster.sharding_state(database, collection)
        if unique and field_path != state.key:
            raise DocumentStoreError(
                f"unique index on {field_path!r} cannot be enforced across "
                f"shards; the shard key is {state.key!r}"
            )
        self._fanout(database, collection, list(range(self.cluster.shard_count)),
                     "create_index", field_path, unique=unique)
        return field_path

    def drop_index(self, database: str, collection: str, field_path: str) -> bool:
        dropped, _walls = self._fanout(database, collection,
                                       list(range(self.cluster.shard_count)),
                                       "drop_index", field_path)
        return any(dropped)

    # -- internals -------------------------------------------------------------------------

    def _run_on_shard(self, database: str, collection: str, shard_id: int,
                      operation: str, *arguments: Any, **keywords: Any) -> Any:
        """Run one collection operation on one shard, with failover retry.

        On a replicated shard whose primary died, the first attempt raises
        ``NotPrimaryError``; the router elects a new primary and retries the
        operation exactly once (oplog replay made member state idempotent,
        and the failed attempt never reached a primary, so the retry is
        safe).
        """
        target = self._collection(database, collection, shard_id)
        try:
            return getattr(target, operation)(*arguments, **keywords)
        except NotPrimaryError:
            with self._stats_lock:
                self.failover_retries += 1
            self.cluster.ensure_shard_primary(shard_id)
            return getattr(target, operation)(*arguments, **keywords)

    def _fanout(self, database: str, collection: str, shard_ids: list[int],
                operation: str, *arguments: Any, **keywords: Any
                ) -> tuple[list[Any], list[float]]:
        """Dispatch one operation to every listed shard, in parallel.

        Returns per-shard results and measured wall-clock seconds, both
        aligned with ``shard_ids`` -- callers pass the ids sorted, so every
        merge downstream happens in shard_id order (the determinism rule).
        The failover retry lives *inside* the per-shard task
        (:meth:`_run_on_shard`), so a ``NotPrimaryError`` raised mid-fan-out
        elects and retries on the dispatching worker thread exactly as it
        would inline; an unrecoverable error surfaces on the calling
        thread, deterministically from the lowest failing shard.  With
        ``parallel_fanout=False`` (or a single shard) the loop runs
        serially inline, preserving the pre-executor behaviour.
        """
        def run(shard_id: int) -> Any:
            return self._run_on_shard(database, collection, shard_id,
                                      operation, *arguments, **keywords)
        if len(shard_ids) > 1 and self.cluster.parallel_fanout:
            return self.cluster.executor.scatter(shard_ids, run)
        return self.cluster.executor.run_serial(shard_ids, run)

    def _shards_for_query(self, state: "ShardingState",
                          query: dict[str, Any]) -> tuple[list[int], bool]:
        """The shards an operation must contact, plus whether it is targeted.

        Targeted means the shard-key analysis narrowed the fan-out: a pinned
        key, a point set (``$in``), or -- on a range-sharded namespace -- an
        interval overlapping only some chunks.  An unconstrained key (or a
        range on a hashed key) falls back to the full shard list.
        """
        every = list(range(self.cluster.shard_count))
        pinned, value = equality_value(query, state.key)
        if pinned:
            try:
                return [state.manager.shard_for(value)], True
            except (DocumentStoreError, TypeError):
                # The pinned value does not compare with the chunk bounds
                # (e.g. an int key on a string-range-sharded namespace): the
                # query cannot be placed, so fall back to scatter-gather.
                return every, False
        interval_set = query_intervals(query).get(state.key)
        if interval_set is None or interval_set.is_full:
            return every, False
        if interval_set.is_empty:
            return [], True  # contradictory constraints: nothing can match
        points = interval_set.point_values()
        if points is not None:
            try:
                shards = {state.manager.shard_for(point) for point in points}
            except (DocumentStoreError, TypeError):
                return every, False
            return sorted(shards), len(shards) < len(every)
        shards = set()
        for interval in interval_set:
            owners = state.manager.shards_for_interval(interval)
            if owners is None:
                return every, False  # hashed key or incomparable bounds
            shards |= owners
        # A range that overlaps every chunk did not narrow anything: count it
        # as scatter so the targeting stats stay honest.
        return sorted(shards), len(shards) < len(every)

    def _note(self, targeted: bool) -> None:
        with self._stats_lock:
            if targeted:
                self.targeted_operations += 1
            else:
                self.scatter_operations += 1

    def _single_shard(self, database: str, collection: str, shard_id: int,
                      operation: str, *arguments: Any) -> OperationResult:
        """Run ``operation`` on exactly one shard, keeping its cost unchanged."""
        result = self._run_on_shard(database, collection, shard_id,
                                    operation, *arguments)
        result.shard_costs = {self._shard_name(shard_id): result.simulated_seconds}
        return result

    def _probe_shards(self, database: str, collection: str, shard_ids: list[int],
                      operation: str, *arguments: Any) -> OperationResult:
        """Run a single-document write shard by shard until one matches."""
        merged = OperationResult()
        for shard_id in shard_ids:
            result = self._run_on_shard(database, collection, shard_id,
                                        operation, *arguments)
            merged.shard_costs[self._shard_name(shard_id)] = result.simulated_seconds
            if result.matched_count or result.deleted_count:
                merged.matched_count = result.matched_count
                merged.modified_count = result.modified_count
                merged.deleted_count = result.deleted_count
                break
        merged.simulated_seconds = combine_shard_costs(merged.shard_costs,
                                                       parallel=False)
        return merged

    def _broadcast(self, database: str, collection: str, shard_ids: list[int],
                   operation: str, *arguments: Any) -> OperationResult:
        """Run a multi-document write on the shards in parallel and merge."""
        merged = OperationResult()
        results, walls = self._fanout(database, collection, shard_ids,
                                      operation, *arguments)
        for shard_id, result, wall in zip(shard_ids, results, walls):
            name = self._shard_name(shard_id)
            merged.matched_count += result.matched_count
            merged.modified_count += result.modified_count
            merged.deleted_count += result.deleted_count
            merged.shard_costs[name] = result.simulated_seconds
            merged.shard_wall_seconds[name] = wall
        merged.simulated_seconds = combine_shard_costs(merged.shard_costs,
                                                       parallel=True)
        return merged

    def _collection(self, database: str, collection: str, shard_id: int) -> "Collection":
        return self.cluster.shard_collection_on(shard_id, database, collection)

    @staticmethod
    def _shard_name(shard_id: int) -> str:
        return f"shard{shard_id}"

    @staticmethod
    def _check_shard_key_immutable(key: str, query: dict[str, Any],
                                   update: dict[str, Any]) -> None:
        """Reject updates that could change a document's shard key."""
        if is_update_document(update):
            for spec in update.values():
                if not isinstance(spec, dict):
                    continue
                for field_path in spec:
                    touched = (field_path == key or field_path.startswith(key + ".")
                               or key.startswith(field_path + "."))
                    if touched and key != "_id":
                        raise DocumentStoreError(
                            f"the shard key {key!r} is immutable"
                        )
            return
        if key == "_id":
            return  # replacement updates always preserve _id
        found, value = get_path(update, key)
        if not found:
            raise DocumentStoreError(
                f"replacement documents must carry the shard key {key!r}"
            )
        pinned, pinned_value = equality_value(query, key)
        if not pinned:
            # Without a pinned key we cannot compare the replacement against
            # the matched document, so the write could silently re-key a
            # document in place on the wrong shard.
            raise DocumentStoreError(
                f"replacement updates must pin the shard key {key!r} in their query"
            )
        if value != pinned_value:
            raise DocumentStoreError(f"the shard key {key!r} is immutable")


def _merge_limited(documents: list[dict[str, Any]], query: dict[str, Any],
                   limit: int) -> list[dict[str, Any]]:
    """Cut a multi-shard result down to ``limit`` documents.

    When exactly one field carries an interval constraint, the merged
    documents are put into the order a single server's executor emits for
    that query shape -- ``(field value, record id)`` for a range (the
    ordered index scan order), plain record-id order for equality / ``$in``
    (the hash-lookup order) -- so the cluster returns the same ``limit``
    documents a single server would when that field is indexed.  Queries
    without a single constrained field are cut in shard order (their limited
    result is execution-order-dependent, as in MongoDB without a sort).
    """
    constraints = {field_path: interval_set for field_path, interval_set
                   in query_intervals(query).items() if not interval_set.is_full}
    if len(constraints) == 1:
        ((field_path, interval_set),) = constraints.items()
        if interval_set.point_values() is not None:
            # Equality / $in: a single server's INDEX_EQ path emits matches
            # in record-id order.
            documents = sorted(documents, key=lambda doc: str(doc.get("_id")))
        else:
            documents = sorted(
                documents,
                key=lambda doc: (sort_key(get_path(doc, field_path)[1]),
                                 str(doc.get("_id"))))
    return documents[:limit]


def _merge_shard_costs(result: OperationResult, costs: dict[str, float]) -> None:
    for shard, cost in costs.items():
        result.shard_costs[shard] = result.shard_costs.get(shard, 0.0) + cost
