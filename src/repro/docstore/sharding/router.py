"""The query router: the ``mongos`` of the sharded cluster.

The router exposes the same operation surface as a
:class:`~repro.docstore.collection.Collection`, which lets the existing
:class:`~repro.docstore.client.DocumentClient` /
:class:`~repro.docstore.client.CollectionHandle` pair talk to a
:class:`~repro.docstore.sharding.cluster.ShardedCluster` exactly as it talks
to a single :class:`~repro.docstore.server.DocumentServer`.

Routing rules (the MongoDB ones, simplified):

* a write or query that pins the shard key to a single value is *targeted*:
  it runs on exactly the one shard owning that key's chunk;
* everything else is *scatter-gather*: the router fans out to every shard
  and merges the per-shard results.

Equivalence caveat (as on real ``mongos``): a single-document write that
does not pin the shard key (``update_one``/``delete_one`` on a non-key
predicate) affects exactly one matching document, but *which* one is
shard-probe order, which may differ from a single server's insertion-order
choice when several documents match.

Cost accounting: targeted operations carry the owning shard's simulated
cost unchanged.  Scatter-gather reads and broadcast writes fan out in
parallel, so the merged ``simulated_seconds`` is the *slowest* shard's cost;
sequential probes (``update_one``/``delete_one`` without a shard key stop at
the first matching shard) accumulate the cost of every shard actually
probed.  The per-shard breakdown always flows into
``OperationResult.shard_costs``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.docstore.collection import OperationResult
from repro.docstore.documents import get_path, with_id
from repro.docstore.matching import equality_value
from repro.docstore.update_ops import is_update_document
from repro.errors import DocumentStoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docstore.collection import Collection
    from repro.docstore.sharding.cluster import ShardedCluster


class QueryRouter:
    """Routes collection operations of one cluster to its shards."""

    def __init__(self, cluster: "ShardedCluster"):
        self.cluster = cluster
        self.targeted_operations = 0
        self.scatter_operations = 0

    # -- writes -----------------------------------------------------------------

    def insert_one(self, database: str, collection: str,
                   document: dict[str, Any]) -> OperationResult:
        state = self.cluster.sharding_state(database, collection)
        stored = with_id(document)
        found, value = get_path(stored, state.key)
        if not found:
            raise DocumentStoreError(
                f"document is missing the shard key {state.key!r} "
                f"of {database}.{collection}"
            )
        shard_id = state.manager.shard_for(value)
        result = self._collection(database, collection, shard_id).insert_one(stored)
        self.targeted_operations += 1
        result.shard_costs = {self._shard_name(shard_id): result.simulated_seconds}
        state.note_insert()
        self.cluster.auto_maintain(database, collection)
        return result

    def insert_many(self, database: str, collection: str,
                    documents: list[dict[str, Any]]) -> OperationResult:
        combined = OperationResult()
        for document in documents:
            result = self.insert_one(database, collection, document)
            combined.inserted_ids.extend(result.inserted_ids)
            combined.simulated_seconds += result.simulated_seconds
            _merge_shard_costs(combined, result.shard_costs)
        return combined

    def update_one(self, database: str, collection: str, query: dict[str, Any],
                   update: dict[str, Any]) -> OperationResult:
        state = self.cluster.sharding_state(database, collection)
        self._check_shard_key_immutable(state.key, query, update)
        result = self._targeted(database, collection, "update_one", query, update)
        if result is not None:
            return result
        return self._probe_shards(database, collection, "update_one", query, update)

    def update_many(self, database: str, collection: str, query: dict[str, Any],
                    update: dict[str, Any]) -> OperationResult:
        state = self.cluster.sharding_state(database, collection)
        self._check_shard_key_immutable(state.key, query, update)
        result = self._targeted(database, collection, "update_many", query, update)
        if result is not None:
            return result
        return self._broadcast(database, collection, "update_many", query, update)

    def delete_one(self, database: str, collection: str,
                   query: dict[str, Any]) -> OperationResult:
        result = self._targeted(database, collection, "delete_one", query)
        if result is not None:
            return result
        return self._probe_shards(database, collection, "delete_one", query)

    def delete_many(self, database: str, collection: str,
                    query: dict[str, Any]) -> OperationResult:
        result = self._targeted(database, collection, "delete_many", query)
        if result is not None:
            return result
        return self._broadcast(database, collection, "delete_many", query)

    # -- reads ----------------------------------------------------------------------

    def find_with_cost(self, database: str, collection: str,
                       query: dict[str, Any]) -> OperationResult:
        result = self._targeted(database, collection, "find_with_cost", query)
        if result is not None:
            return result
        # Scatter-gather: fan out to every shard, merge in shard order.
        self.scatter_operations += 1
        merged = OperationResult()
        for shard_id in range(self.cluster.shard_count):
            result = self._collection(database, collection, shard_id).find_with_cost(query)
            merged.documents.extend(result.documents)
            merged.shard_costs[self._shard_name(shard_id)] = result.simulated_seconds
        merged.matched_count = len(merged.documents)
        merged.simulated_seconds = max(merged.shard_costs.values(), default=0.0)
        return merged

    def count_documents(self, database: str, collection: str,
                        query: dict[str, Any]) -> int:
        state = self.cluster.sharding_state(database, collection)
        shard_id = self._target_shard(state, query)
        if shard_id is not None:
            self.targeted_operations += 1
            return self._collection(database, collection, shard_id).count_documents(query)
        self.scatter_operations += 1
        return sum(
            self._collection(database, collection, shard_id).count_documents(query)
            for shard_id in range(self.cluster.shard_count)
        )

    # -- index management ---------------------------------------------------------------

    def create_index(self, database: str, collection: str, field_path: str,
                     unique: bool = False) -> str:
        """Broadcast index creation to every shard.

        A unique index is only enforceable when it is prefixed by the shard
        key (each shard can only see its own documents), mirroring the
        MongoDB restriction.
        """
        state = self.cluster.sharding_state(database, collection)
        if unique and field_path != state.key:
            raise DocumentStoreError(
                f"unique index on {field_path!r} cannot be enforced across "
                f"shards; the shard key is {state.key!r}"
            )
        for shard_id in range(self.cluster.shard_count):
            self._collection(database, collection, shard_id).create_index(
                field_path, unique=unique
            )
        return field_path

    def drop_index(self, database: str, collection: str, field_path: str) -> bool:
        dropped = False
        for shard_id in range(self.cluster.shard_count):
            if self._collection(database, collection, shard_id).drop_index(field_path):
                dropped = True
        return dropped

    # -- internals -------------------------------------------------------------------------

    def _target_shard(self, state, query: dict[str, Any]) -> int | None:
        """The single shard a query targets, or None for scatter-gather."""
        pinned, value = equality_value(query, state.key)
        if pinned:
            return state.manager.shard_for(value)
        return None

    def _targeted(self, database: str, collection: str, operation: str,
                  query: dict[str, Any], *arguments: Any) -> OperationResult | None:
        """Run ``operation`` on the one shard ``query`` pins, or return None."""
        state = self.cluster.sharding_state(database, collection)
        shard_id = self._target_shard(state, query)
        if shard_id is None:
            return None
        self.targeted_operations += 1
        target = self._collection(database, collection, shard_id)
        result = getattr(target, operation)(query, *arguments)
        result.shard_costs = {self._shard_name(shard_id): result.simulated_seconds}
        return result

    def _probe_shards(self, database: str, collection: str, operation: str,
                      *arguments: Any) -> OperationResult:
        """Run a single-document write shard by shard until one matches."""
        self.scatter_operations += 1
        merged = OperationResult()
        for shard_id in range(self.cluster.shard_count):
            target = self._collection(database, collection, shard_id)
            result = getattr(target, operation)(*arguments)
            merged.shard_costs[self._shard_name(shard_id)] = result.simulated_seconds
            merged.simulated_seconds += result.simulated_seconds
            if result.matched_count or result.deleted_count:
                merged.matched_count = result.matched_count
                merged.modified_count = result.modified_count
                merged.deleted_count = result.deleted_count
                break
        return merged

    def _broadcast(self, database: str, collection: str, operation: str,
                   *arguments: Any) -> OperationResult:
        """Run a multi-document write on every shard in parallel and merge."""
        self.scatter_operations += 1
        merged = OperationResult()
        for shard_id in range(self.cluster.shard_count):
            target = self._collection(database, collection, shard_id)
            result = getattr(target, operation)(*arguments)
            merged.matched_count += result.matched_count
            merged.modified_count += result.modified_count
            merged.deleted_count += result.deleted_count
            merged.shard_costs[self._shard_name(shard_id)] = result.simulated_seconds
        merged.simulated_seconds = max(merged.shard_costs.values(), default=0.0)
        return merged

    def _collection(self, database: str, collection: str, shard_id: int) -> "Collection":
        return self.cluster.shard_collection_on(shard_id, database, collection)

    @staticmethod
    def _shard_name(shard_id: int) -> str:
        return f"shard{shard_id}"

    @staticmethod
    def _check_shard_key_immutable(key: str, query: dict[str, Any],
                                   update: dict[str, Any]) -> None:
        """Reject updates that could change a document's shard key."""
        if is_update_document(update):
            for spec in update.values():
                if not isinstance(spec, dict):
                    continue
                for field_path in spec:
                    touched = (field_path == key or field_path.startswith(key + ".")
                               or key.startswith(field_path + "."))
                    if touched and key != "_id":
                        raise DocumentStoreError(
                            f"the shard key {key!r} is immutable"
                        )
            return
        if key == "_id":
            return  # replacement updates always preserve _id
        found, value = get_path(update, key)
        if not found:
            raise DocumentStoreError(
                f"replacement documents must carry the shard key {key!r}"
            )
        pinned, pinned_value = equality_value(query, key)
        if not pinned:
            # Without a pinned key we cannot compare the replacement against
            # the matched document, so the write could silently re-key a
            # document in place on the wrong shard.
            raise DocumentStoreError(
                f"replacement updates must pin the shard key {key!r} in their query"
            )
        if value != pinned_value:
            raise DocumentStoreError(f"the shard key {key!r} is immutable")


def _merge_shard_costs(result: OperationResult, costs: dict[str, float]) -> None:
    for shard, cost in costs.items():
        result.shard_costs[shard] = result.shard_costs.get(shard, 0.0) + cost
