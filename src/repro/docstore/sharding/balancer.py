"""The chunk balancer: evens out chunk ownership across shards.

MongoDB's balancer moves chunks between shards until every shard owns
roughly the same number of chunks; this reproduction implements the same
policy.  A migration physically moves the chunk's documents -- each document
is inserted on the recipient and then deleted from the donor, so no document
is ever lost or duplicated mid-migration (the recipient holds a copy before
the donor forgets it).

Balancing operates on the physical per-shard :class:`~repro.docstore.collection.Collection`
objects of one namespace plus its :class:`~repro.docstore.sharding.chunks.ChunkManager`;
it is invoked by :meth:`ShardedCluster.balance` and by the router's
auto-maintenance hook after bursts of inserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.docstore.collection import Collection
from repro.docstore.documents import get_path
from repro.docstore.sharding.chunks import Chunk, ChunkManager
from repro.errors import DuplicateKeyError


@dataclass
class Migration:
    """Record of one chunk migration (for stats, tests and the demo output)."""

    namespace: str
    lower: Any
    upper: Any
    source_shard: int
    target_shard: int
    documents_moved: int
    simulated_seconds: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "namespace": self.namespace,
            "lower": self.lower,
            "upper": self.upper,
            "from_shard": self.source_shard,
            "to_shard": self.target_shard,
            "documents_moved": self.documents_moved,
            "simulated_seconds": self.simulated_seconds,
        }


@dataclass
class Balancer:
    """Chunk-count balancing policy.

    Attributes:
        imbalance_threshold: migrations run while the difference between the
            most and least loaded shard exceeds this many chunks (1 mirrors
            MongoDB's steady-state goal).
        migrations: every migration performed, in order.
    """

    imbalance_threshold: int = 1
    migrations: list[Migration] = field(default_factory=list)

    def balance(self, namespace: str, shard_key: str, manager: ChunkManager,
                collections: list[Collection]) -> list[Migration]:
        """Migrate chunks until shard chunk counts are within the threshold.

        ``collections[i]`` must be the physical collection of shard ``i``
        for ``namespace``.  Returns the migrations performed this round.
        """
        performed: list[Migration] = []
        while True:
            counts = manager.chunk_counts()
            donor = max(counts, key=lambda shard: (counts[shard], shard))
            recipient = min(counts, key=lambda shard: (counts[shard], shard))
            if counts[donor] - counts[recipient] <= self.imbalance_threshold:
                break
            # One donor scan yields every chunk's documents; the chunk with
            # the fewest documents is the cheapest to move.
            documents_by_chunk = _documents_by_chunk(
                collections[donor], shard_key, manager, manager.chunks_on(donor))
            chunk = min(documents_by_chunk,
                        key=lambda c: (len(documents_by_chunk[c]), str(c.lower)))
            migration = self.migrate_chunk(namespace, manager, chunk, recipient,
                                           collections, documents_by_chunk[chunk],
                                           shard_key=shard_key)
            performed.append(migration)
        return performed

    def migrate_chunk(self, namespace: str, manager: ChunkManager, chunk: Chunk,
                      target_shard: int, collections: list[Collection],
                      documents: list[dict[str, Any]],
                      shard_key: str = "_id") -> Migration:
        """Move one chunk (its ``documents`` snapshot) to ``target_shard``.

        Ownership is reassigned *first*, then the snapshot's documents are
        moved, then the donor is rescanned for stragglers.  With concurrent
        clients the order matters: if documents moved before the assignment
        flipped, an insert routed to the donor during the copy would be
        stranded there forever (a permanent orphan invisible to targeted
        reads).  Assign-first narrows the race to the *snapshot* being stale,
        which the final donor rescan closes -- any chunk-range document that
        landed on the donor before the flip is swept over too.  During the
        sweep a document can briefly exist on both shards; the router
        deduplicates scatter reads by ``_id`` so clients never observe the
        dual residence.
        """
        source = collections[chunk.shard_id]
        target = collections[target_shard]
        source_shard = chunk.shard_id
        manager.assign(chunk, target_shard)
        cost = 0.0
        moved = 0
        for document in documents:
            cost += _move_document(source, target, document)
            moved += 1
        # Straggler sweep: writes that reached the donor between the snapshot
        # scan and the ownership flip.
        for document in _chunk_documents(source, shard_key, manager, chunk):
            cost += _move_document(source, target, document)
            moved += 1
        migration = Migration(
            namespace=namespace,
            lower=chunk.lower,
            upper=chunk.upper,
            source_shard=source_shard,
            target_shard=target_shard,
            documents_moved=moved,
            simulated_seconds=cost,
        )
        self.migrations.append(migration)
        return migration


def _move_document(source: Collection, target: Collection,
                   document: dict[str, Any]) -> float:
    """Copy one document to the recipient, then delete it from the donor.

    Tolerates races with concurrent clients: the recipient may already hold
    the ``_id`` (a client insert routed there after the ownership flip), and
    the donor copy may already be gone (a client delete).  Either way the
    recipient's copy is authoritative and the donor ends up clean.
    """
    cost = 0.0
    try:
        cost += target.insert_one(document).simulated_seconds
    except DuplicateKeyError:
        pass
    cost += source.delete_one({"_id": document["_id"]}).simulated_seconds
    return cost


def _chunk_documents(collection: Collection, shard_key: str,
                     manager: ChunkManager,
                     chunk: Chunk) -> list[dict[str, Any]]:
    """Every document on ``collection`` whose routing point ``chunk`` covers."""
    matching: list[dict[str, Any]] = []
    for __, document, __cost in collection.engine.scan():
        found, value = get_path(document, shard_key)
        if not found:
            continue
        if chunk.covers(manager.routing_point(value)):
            matching.append(document)
    return matching


def _documents_by_chunk(collection: Collection, shard_key: str,
                        manager: ChunkManager,
                        chunks: list[Chunk]) -> dict[Chunk, list[dict[str, Any]]]:
    """Partition a shard's documents over ``chunks`` in a single scan."""
    documents: dict[Chunk, list[dict[str, Any]]] = {chunk: [] for chunk in chunks}
    for __, document, __cost in collection.engine.scan():
        found, value = get_path(document, shard_key)
        if not found:
            continue
        point = manager.routing_point(value)
        for chunk in chunks:
            if chunk.covers(point):
                documents[chunk].append(document)
                break
    return documents
